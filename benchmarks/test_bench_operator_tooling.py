"""E5: emulation-as-a-model fits the network operator tooling flow.

Paper: a mistakenly IOS-styled IS-IS line made verification report
missing reachability; the authors SSH'd to the emulated router and used
the standard CLI (`show isis database`, `show ip route`) to find it.
This bench measures the full debug loop: verify -> SSH -> diagnose ->
fix -> re-verify.
"""

from repro.core.pipeline import ModelFreeBackend
from repro.protocols.timers import FAST_TIMERS
from repro.topo.builder import TopologyBuilder
from repro.verify.reachability import pairwise_matrix

from benchmarks.conftest import run_once
from tests.test_integration_operator import BROKEN_R1, FIXED_R1, GOOD_R2


def build(r1_config):
    builder = TopologyBuilder("operator-debug")
    builder.node("r1", config=r1_config)
    builder.node("r2", config=GOOD_R2)
    builder.link("r1", "r2", a_int="Ethernet1", z_int="Ethernet1")
    return builder.build()


def debug_loop():
    """The whole operator workflow, returning its observations."""
    observations = {}
    backend = ModelFreeBackend(
        build(BROKEN_R1), timers=FAST_TIMERS, quiet_period=5.0
    )
    snapshot = backend.run()
    matrix = pairwise_matrix(snapshot.dataplane)
    observations["verification_flags_problem"] = not matrix[("r2", "r1")]

    ssh = backend.last_run.deployment.ssh("r1")
    observations["database"] = ssh.execute("show isis database")
    observations["routes"] = ssh.execute("show ip route")
    observations["neighbors"] = ssh.execute("show isis neighbors")
    observations["diagnostics"] = ssh.execute(
        "show running-config diagnostics"
    )

    fixed_backend = ModelFreeBackend(
        build(FIXED_R1), timers=FAST_TIMERS, quiet_period=5.0
    )
    fixed = fixed_backend.run()
    observations["fixed_full_mesh"] = all(
        pairwise_matrix(fixed.dataplane).values()
    )
    return observations


def test_e5_operator_debug_loop(benchmark, report):
    observations = run_once(benchmark, debug_loop)

    assert observations["verification_flags_problem"]
    report.add(
        "E5", "verification reports missing reachability", "yes", "yes"
    )

    # The CLI shows what an operator needs: no adjacency, the rejected
    # line, and the missing route.
    assert "0000.0000.0002" not in observations["neighbors"]
    assert "2.2.2.2/32" not in observations["routes"]
    assert "ip router isis" in observations["diagnostics"]
    report.add(
        "E5", "SSH + `show isis database`/`show ip route` reveal cause",
        "yes", "yes (bad line surfaced via CLI)",
    )

    assert observations["fixed_full_mesh"]
    report.add("E5", "fix restores reachability", "yes", "yes")


def test_e5_same_commands_as_production(benchmark, report):
    """The interface is the point: the emulated router answers the same
    commands operators run against hardware."""
    run_once(benchmark, lambda: None)
    backend = ModelFreeBackend(
        build(FIXED_R1), timers=FAST_TIMERS, quiet_period=5.0
    )
    backend.run()
    ssh = backend.last_run.deployment.ssh("r1")
    answered = []
    for command in (
        "show version",
        "show ip route",
        "show ip interface brief",
        "show isis neighbors",
        "show isis database",
        "show running-config",
    ):
        output = ssh.execute(command)
        assert output and "Invalid input" not in output, command
        answered.append(command)
    report.add(
        "E5", "standard EOS commands answered",
        "production interfaces preserved", f"{len(answered)} commands",
    )
