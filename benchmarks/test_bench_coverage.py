"""E2: model-based verification struggles with feature coverage.

Paper: feeding the (working) Fig. 2 configurations to native Batfish,
"Batfish's network model generation failed to recognize between 38 and
42 of lines in each configuration" — management daemons, management
services (gRPC, gNMI, SSL), and MPLS / MPLS-TE.
"""

from repro.batfish_model.parser import parse_with_model
from repro.corpus.fig2 import fig2_scenario
from repro.vendors.arista.config_parser import parse_arista_config

from benchmarks.conftest import run_once


def run_experiment():
    scenario = fig2_scenario()
    model_results = {
        name: parse_with_model(config)
        for name, config in scenario.configs.items()
    }
    emulation_results = {
        name: parse_arista_config(config)
        for name, config in scenario.configs.items()
    }
    return scenario, model_results, emulation_results


def test_e2_unrecognized_line_band(benchmark, report):
    _scenario, model_results, emulation_results = run_once(
        benchmark, run_experiment
    )
    counts = sorted(r.unrecognized_count for r in model_results.values())
    report.add(
        "E2", "model-unrecognized lines per config", "38-42",
        f"{counts[0]}-{counts[-1]}",
    )
    assert 38 <= counts[0] and counts[-1] <= 42

    # The same configurations load cleanly on the emulated vendor OS.
    diagnostics = sum(len(d) for _, d in emulation_results.values())
    report.add(
        "E2", "emulation rejected lines", "0 (configs run on cEOS)",
        str(diagnostics),
    )
    assert diagnostics == 0


def test_e2_unrecognized_categories(benchmark, report):
    run_once(benchmark, lambda: None)
    scenario, model_results, _ = run_experiment()
    del scenario
    reasons = [
        u.text
        for result in model_results.values()
        for u in result.unrecognized
    ]
    blob = " ".join(reasons)
    categories = {
        "management daemons": ["PowerManager", "LedPolicy", "Thermostat"],
        "management services": ["gnmi", "http-commands", "ssl"],
        "MPLS / MPLS-TE": ["mpls", "traffic-engineering"],
    }
    found = []
    for label, markers in categories.items():
        assert any(marker in blob for marker in markers), label
        found.append(label)
    report.add(
        "E2", "unparsed categories",
        "mgmt daemons, mgmt services, MPLS(-TE)",
        ", ".join(found),
    )


def test_e2_materially_relevant_lines_among_misses(benchmark, report):
    """Some unrecognized lines are materially relevant (MPLS), not just
    management fluff — the paper's trust argument."""
    run_once(benchmark, lambda: None)
    scenario, model_results, _ = run_experiment()
    del scenario
    result = next(iter(model_results.values()))
    mpls_misses = [
        u for u in result.unrecognized if "mpls" in u.text.lower()
        or "traffic-engineering" in u.text.lower()
    ]
    assert mpls_misses
    report.add(
        "E2", "materially relevant misses", "MPLS & MPLS-TE enablement",
        f"{len(mpls_misses)} MPLS lines missed",
    )
