"""Resilience plane: durability is cheap, crashes lose nothing.

Three measured claims behind the service's crash-safety story:

* **Journal overhead** — running the PR-4 mixed workload with the
  write-ahead journal enabled costs at most 1.05x the un-journaled
  wall time (fsync batching keeps the durability window off the
  critical path);
* **Zero loss under crashes** — a seeded
  :func:`~repro.chaos.sampled_service_plan` SIGKILLing supervised
  process workers mid-job loses zero accepted jobs: every submission
  settles with an answer (redelivered, never dropped) and the
  dead-letter list stays empty;
* **Recovery scales with the log** — ``VerificationService.recover``
  replay time is measured against journal size (records and bytes), so
  the restart cost of a churning service is a curve, not a guess.

Emits ``BENCH_resilience.json``.

Scale: ``MFV_BENCH_SMOKE=1`` shrinks the corpus for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.chaos import ServiceChaos, sampled_service_plan
from repro.service import JobJournal, QuestionSpec, VerificationService
from repro.verify.engine import clear_engine_cache

from benchmarks.conftest import run_once
from benchmarks.test_bench_service import _build_snapshots, _workload

SMOKE = bool(os.environ.get("MFV_BENCH_SMOKE"))
#: Journal sizes (submit records) for the recovery-time curve.
RECOVERY_SIZES = (10, 50) if SMOKE else (10, 100, 500)
#: Jobs submitted into the seeded-crash schedule (distinct specs).
CRASH_JOBS = 6 if SMOKE else 8

#: The gate the tentpole promises, plus a small absolute slack so a
#: sub-second smoke corpus does not fail on scheduler jitter alone.
OVERHEAD_GATE = 1.05
OVERHEAD_SLACK_S = 0.25


def _run_workload(workload, baseline, variant, journal_dir=None):
    """One service pass over the mixed workload; returns (wall, stats)."""
    clear_engine_cache()
    started = time.perf_counter()
    with VerificationService(workers=2, journal_dir=journal_dir) as svc:
        svc.register_snapshot(baseline, name="baseline")
        svc.register_snapshot(variant, name="variant")
        jobs = [
            svc.submit(question, params, snapshot=name)
            for question, params, name in workload
        ]
        for job in jobs:
            assert job.result(timeout=120).value is not None
        stats = svc.stats()
    return time.perf_counter() - started, stats


def _crash_run(workload, baseline, variant, journal_dir):
    """Distinct questions through supervised process workers while a
    seeded plan SIGKILLs them mid-job; returns the loss accounting."""
    specs, seen = [], set()
    for spec in workload:
        key = str(spec)
        if key not in seen:
            seen.add(key)
            specs.append(spec)
        if len(specs) == CRASH_JOBS:
            break
    plan = sampled_service_plan(
        seed=11, crashes=2, dispatch_span=max(4, CRASH_JOBS - 2)
    )
    svc = VerificationService(
        workers=2,
        worker_mode="process",
        journal_dir=journal_dir,
        # Dead workers are detected via is_alive() within milliseconds
        # regardless of this interval; it only sets the hang budget
        # (heartbeat_s * max_missed). Generous, so a loaded CI box
        # building engines in the children never trips a spurious
        # missed-heartbeat kill.
        heartbeat_s=1.0,
    )
    svc.start()
    try:
        svc.register_snapshot(baseline, name="baseline")
        svc.register_snapshot(variant, name="variant")
        with ServiceChaos(svc, plan) as chaos:
            jobs = [
                svc.submit(question, params, snapshot=name)
                for question, params, name in specs
            ]
            answered = sum(
                1 for job in jobs
                if job.result(timeout=300).value is not None
            )
        stats = svc.stats()
        return {
            "plan": plan.describe(),
            "faults_fired": len(chaos.fired),
            "jobs_submitted": len(jobs),
            "jobs_answered": answered,
            "jobs_lost": len(jobs) - answered,
            "dead_letters": len(svc.dead_letters),
            "redeliveries": stats["pool"]["redeliveries"],
            "worker_respawns": stats["pool"]["respawns"],
        }
    finally:
        svc.stop(timeout=10.0)


def _recovery_curve(tmp_path):
    """recover() wall time vs journal size: N pending submit records
    (crash before anything ran) replayed into a requeued backlog."""
    curve = []
    for size in RECOVERY_SIZES:
        journal_dir = tmp_path / f"journal-{size}"
        journal = JobJournal(journal_dir, fsync_batch=8)
        for n in range(size):
            journal.record_submit(
                QuestionSpec(
                    question="reachability",
                    params=(("dst", f"10.0.{n // 256}.{n % 256}/32"),),
                    snapshot="net",
                    fingerprint=0x5EED + n,
                ),
                priority="interactive",
                timeout=None,
            )
        journal.close()
        journal_bytes = (journal_dir / "journal.jsonl").stat().st_size
        started = time.perf_counter()
        service, recovery = VerificationService.recover(
            journal_dir, workers=1
        )
        wall = time.perf_counter() - started
        assert recovery.jobs_requeued == size
        service.stop(timeout=1.0, drain=False)
        curve.append(
            {
                "records": size,
                "journal_bytes": journal_bytes,
                "wall_seconds": wall,
                "records_per_second": size / max(1e-9, recovery.wall_seconds),
            }
        )
    return curve


def test_resilience_costs_and_loses_nothing(
    benchmark, report, tmp_path
):
    scenario, baseline, variant = _build_snapshots()
    workload = _workload(scenario)

    plain_wall, _ = _run_workload(workload, baseline, variant)

    def journaled():
        return _run_workload(
            workload, baseline, variant,
            journal_dir=tmp_path / "journal-overhead",
        )

    journal_wall, journal_stats = run_once(benchmark, journaled)
    overhead = journal_wall / max(1e-9, plain_wall)

    crash = _crash_run(workload, baseline, variant, tmp_path / "crash")
    curve = _recovery_curve(tmp_path)

    payload = {
        "smoke": SMOKE,
        "workload_requests": len(workload),
        "journal_overhead": {
            "plain_wall_seconds": plain_wall,
            "journal_wall_seconds": journal_wall,
            "overhead_ratio": overhead,
            "gate": OVERHEAD_GATE,
            "journal": journal_stats["journal"],
        },
        "crash_schedule": crash,
        "recovery_curve": curve,
    }
    Path("BENCH_resilience.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    report.add(
        "resilience", "journal overhead (mixed workload)",
        f"<= {OVERHEAD_GATE}x",
        f"{plain_wall:.2f}s -> {journal_wall:.2f}s ({overhead:.3f}x)",
    )
    report.add(
        "resilience", "seeded worker crashes",
        "zero accepted jobs lost",
        f"{crash['jobs_answered']}/{crash['jobs_submitted']} answered, "
        f"{crash['worker_respawns']} respawns, "
        f"{crash['dead_letters']} dead-lettered",
    )
    report.add(
        "resilience", "journal recovery",
        "replay time scales with log size",
        ", ".join(
            f"{point['records']} rec/{point['wall_seconds'] * 1e3:.1f}ms"
            for point in curve
        ),
    )

    assert journal_wall <= plain_wall * OVERHEAD_GATE + OVERHEAD_SLACK_S, (
        f"journal overhead {overhead:.3f}x exceeds the {OVERHEAD_GATE}x gate"
    )
    assert crash["jobs_lost"] == 0
    assert crash["dead_letters"] == 0
    assert crash["faults_fired"] >= 1
    # Replay is linear and fast: even the largest journal recovers in
    # well under a second of pure log folding.
    assert all(point["wall_seconds"] < 5.0 for point in curve)
