"""Chaos: fault survival and graceful degradation, measured.

The robustness claim behind ``repro.chaos``: the extract/verify
pipeline survives a production corpus run under transient gNMI faults
plus a pod crash — no unhandled exception, the crashed node lands in
the partial snapshot's ``degraded_nodes`` manifest, its destinations
answer ``UNKNOWN_DEGRADED``, and retries are visible as ``gnmi.retry``
counters. The regression gate rides along: an *empty* fault plan must
produce verdicts byte-identical to a build that never heard of chaos.
Emits ``BENCH_chaos.json`` with the fault survival rate, per-node retry
counts, and the degraded-verdict fraction.

Scale: ``MFV_BENCH_SMOKE=1`` shrinks the corpus for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.chaos import FaultPlan, acceptance_plan, run_chaos, sampled_plan
from repro.chaos.runner import pairwise_verdicts
from repro.core.context import ScenarioContext
from repro.core.pipeline import ModelFreeBackend
from repro.corpus.production import production_scenario, scaled_timers
from repro.obs import tracing

from benchmarks.conftest import run_once

SMOKE = bool(os.environ.get("MFV_BENCH_SMOKE"))
NODES = 5 if SMOKE else 8
PEERS = 1 if SMOKE else 2
ROUTES = 50 if SMOKE else 200
SAMPLED_PLANS = 1 if SMOKE else 3
CRASH_AT = 900.0


def _corpus():
    scenario_set = production_scenario(
        NODES, peers=PEERS, routes_per_peer=ROUTES, seed=7
    )
    context = ScenarioContext(
        name="prod", injectors=tuple(scenario_set.injectors)
    )
    return scenario_set.topology, context, scaled_timers(ROUTES)


def test_chaos_survival_and_degradation(benchmark, report):
    topology, context, timers = _corpus()
    names = sorted(spec.name for spec in topology.nodes)
    plan = acceptance_plan(names, crash_at=CRASH_AT)
    crashed = next(f.target for f in plan.faults if f.kind == "pod-crash")

    def run_acceptance():
        started = time.perf_counter()
        with tracing() as tracer:
            result = run_chaos(
                topology, plan, context=context, seed=0, timers=timers
            )
        return result, dict(tracer.counters), time.perf_counter() - started

    result, counters, wall = run_once(benchmark, run_acceptance)

    # The acceptance scenario: completes, retried visibly, degraded the
    # crashed node explicitly, and answers about it are UNKNOWN — never
    # a fabricated NO_ROUTE.
    assert result.survived
    assert counters.get("gnmi.retry", 0) >= 1
    assert counters.get("chaos.faults", 0) >= len(plan)
    assert crashed in result.degraded_nodes
    assert result.total_retries >= 1
    assert result.degraded_verdict_fraction > 0.0

    # Survival across a sampled plan family (each run catches nothing:
    # an unhandled exception is a bench failure by construction).
    backend = ModelFreeBackend(topology, timers=timers)
    survived = 1  # the acceptance run above
    attempted = 1
    sampled_degraded = []
    for plan_seed in range(SAMPLED_PLANS):
        attempted += 1
        extra = sampled_plan(
            names, seed=plan_seed, intensity=3, crash=False
        )
        snapshot = backend.run(
            context,
            seed=0,
            snapshot_name=f"chaos-sampled-{plan_seed}",
            chaos=extra,
        )
        survived += 1
        sampled_degraded.append(sorted(snapshot.degraded_nodes))
    survival_rate = survived / attempted

    # The fault-free regression gate: an empty plan is byte-identical
    # to the chaos-free baseline — same FIB fingerprint, same verdicts.
    baseline = result.baseline_snapshot
    empty = backend.run(
        context, seed=0, snapshot_name="chaos-empty", chaos=FaultPlan()
    )
    assert "chaos" not in empty.metadata
    assert (
        empty.dataplane.fib_fingerprint()
        == baseline.dataplane.fib_fingerprint()
    )
    base_verdicts = pairwise_verdicts(baseline.dataplane)
    empty_verdicts = pairwise_verdicts(empty.dataplane)
    assert json.dumps(base_verdicts, sort_keys=True) == json.dumps(
        empty_verdicts, sort_keys=True
    )

    payload = {
        "corpus": {
            "nodes": NODES,
            "peers": PEERS,
            "routes_per_peer": ROUTES,
            "smoke": SMOKE,
        },
        "acceptance": result.to_dict(),
        "gnmi_retry_counter": counters.get("gnmi.retry", 0),
        "chaos_fault_counter": counters.get("chaos.faults", 0),
        "fault_survival": {
            "attempted": attempted,
            "survived": survived,
            "rate": survival_rate,
        },
        "retry_counts": dict(result.retries),
        "degraded_verdict_fraction": result.degraded_verdict_fraction,
        "sampled_degraded_nodes": sampled_degraded,
        "fault_free_byte_identical": True,
        "acceptance_wall_seconds": wall,
    }
    Path("BENCH_chaos.json").write_text(json.dumps(payload, indent=2) + "\n")

    report.add(
        "chaos", f"survival under {len(plan)}-fault acceptance plan",
        "completes, degrades gracefully",
        f"{survived}/{attempted} runs survived, "
        f"{crashed} degraded, {result.total_retries} retries",
    )
    report.add(
        "chaos", "degraded verdicts",
        "UNKNOWN_DEGRADED, never NO_ROUTE",
        f"{result.degraded_verdict_fraction:.1%} of rows",
    )
    report.add(
        "chaos", "empty plan vs chaos-free baseline",
        "byte-identical verdicts",
        "identical fingerprints and verdicts",
    )
    assert survival_rate == 1.0
