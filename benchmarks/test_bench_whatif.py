"""What-if campaign: incremental re-convergence vs cold re-runs.

The campaign's economic claim, measured: an exhaustive single-link-
failure sweep on the production corpus against one warm deployment must
cost at least 3x less total simulated time than N independent cold
runs, while producing *identical* per-scenario AFTs — asserted by
fingerprint against real cold-run oracles for a sampled subset, not
against an estimate. Emits ``BENCH_whatif.json`` with per-scenario
incremental seconds, the measured cold cost, and scenarios/minute of
host wall time.

Scale: ``MFV_BENCH_SMOKE=1`` shrinks the corpus for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.context import ScenarioContext
from repro.corpus.production import production_scenario, scaled_timers
from repro.whatif import WhatIfCampaign, cold_run, single_link_failures

from benchmarks.conftest import run_once

SMOKE = bool(os.environ.get("MFV_BENCH_SMOKE"))
NODES = 6 if SMOKE else 10
PEERS = 1 if SMOKE else 2
ROUTES = 60 if SMOKE else 300
ORACLE_SAMPLES = 2


def test_whatif_incremental_vs_cold(benchmark, report):
    scenario_set = production_scenario(
        NODES, peers=PEERS, routes_per_peer=ROUTES, seed=7
    )
    topology = scenario_set.topology
    context = ScenarioContext(
        name="prod", injectors=tuple(scenario_set.injectors)
    )
    timers = scaled_timers(ROUTES)
    scenarios = list(single_link_failures(topology))

    def run_campaign():
        campaign = WhatIfCampaign(
            topology,
            scenarios,
            context=context,
            timers=timers,
            quiet_period=30.0,
        )
        started = time.perf_counter()
        result = campaign.run()
        return result, time.perf_counter() - started

    campaign_report, campaign_wall = run_once(benchmark, run_campaign)

    # Correctness before economics: every scenario must restore the
    # baseline, or the incremental numbers are measuring a broken sweep.
    assert len(campaign_report.verdicts) == len(scenarios)
    assert all(v.reverted_clean for v in campaign_report.verdicts)
    assert campaign_report.cold_resets == 0

    # Real cold-run oracles for a sampled subset: first and last
    # scenario, re-run from scratch with the fault pre-applied. The
    # warm path's AFTs must match by fingerprint, and the measured cold
    # cost replaces the report's estimate in the speedup assertion.
    sampled = [scenarios[0], scenarios[-1]][:ORACLE_SAMPLES]
    cold_sim_costs = []
    for sample in sampled:
        cold = cold_run(
            topology,
            sample,
            context=context,
            timers=timers,
            quiet_period=30.0,
        )
        warm = next(
            v
            for v in campaign_report.verdicts
            if v.scenario == sample.name
        )
        assert cold.dataplane.fib_fingerprint() == warm.fib_fingerprint
        cold_sim_costs.append(
            cold.startup_seconds + cold.convergence_seconds
        )

    incremental_total = campaign_report.incremental_sim_seconds
    cold_per_run = sum(cold_sim_costs) / len(cold_sim_costs)
    cold_total = cold_per_run * len(scenarios)
    measured_speedup = cold_total / max(1e-9, incremental_total)
    scenarios_per_minute = len(scenarios) / max(1e-9, campaign_wall / 60.0)

    payload = {
        "corpus": {
            "nodes": NODES,
            "peers": PEERS,
            "routes_per_peer": ROUTES,
            "smoke": SMOKE,
        },
        "scenarios": len(scenarios),
        "per_scenario": [
            {
                "scenario": v.scenario,
                "reconverge_seconds": v.reconverge_seconds,
                "revert_seconds": v.revert_seconds,
                "severity": v.severity,
            }
            for v in campaign_report.verdicts
        ],
        "incremental_sim_seconds": incremental_total,
        "cold_sim_seconds_per_run_measured": cold_per_run,
        "cold_sim_seconds_total_measured": cold_total,
        "speedup_measured": measured_speedup,
        "speedup_estimated": campaign_report.speedup,
        "oracle_fingerprint_matches": len(sampled),
        "campaign_wall_seconds": campaign_wall,
        "scenarios_per_minute": scenarios_per_minute,
    }
    Path("BENCH_whatif.json").write_text(json.dumps(payload, indent=2) + "\n")

    report.add(
        "whatif", f"incremental vs cold, {len(scenarios)} link cuts",
        ">=3x less total sim time",
        f"{incremental_total:.0f} sim-s vs {cold_total:.0f} sim-s "
        f"({measured_speedup:.0f}x)",
    )
    report.add(
        "whatif", "warm AFTs vs cold-run oracle (sampled)",
        "identical by fingerprint",
        f"{len(sampled)}/{len(sampled)} match",
    )
    report.add(
        "whatif", "campaign throughput",
        "-",
        f"{scenarios_per_minute:.1f} scenarios/min "
        f"({campaign_wall:.1f}s wall)",
    )
    assert measured_speedup >= 3.0
