"""Benchmark harness support.

Every file in this directory regenerates one table/figure/result of the
paper (see DESIGN.md's experiment index). Each bench both:

* asserts the *shape* of the paper's result (who wins, the reported
  bands, the order-of-magnitude factors), and
* prints a paper-vs-measured report line so ``pytest benchmarks/
  --benchmark-only`` doubles as the reproduction log.

Wall-clock timing is measured by pytest-benchmark with a single round —
the interesting quantities are simulated seconds, not host seconds.
"""

from __future__ import annotations

import pytest


class Report:
    """Collects paper-vs-measured rows and prints them at session end."""

    def __init__(self) -> None:
        self.rows: list[tuple[str, str, str, str]] = []

    def add(self, experiment: str, metric: str, paper: str, measured: str) -> None:
        self.rows.append((experiment, metric, paper, measured))

    def render(self) -> str:
        if not self.rows:
            return ""
        widths = [
            max(len(row[i]) for row in self.rows + [self._header])
            for i in range(4)
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(self._header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in self.rows:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    _header = ("experiment", "metric", "paper", "measured")


_REPORT = Report()


@pytest.fixture(scope="session")
def report():
    return _REPORT


def pytest_sessionfinish(session, exitstatus):
    del session, exitstatus
    text = _REPORT.render()
    if text:
        print("\n\n=== Reproduction report (paper vs measured) ===")
        print(text)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
