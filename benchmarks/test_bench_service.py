"""Verification service: amortized engines vs one-shot execution.

The service's economic claim, measured: a mixed interactive workload
(duplicated and distinct questions over a small set of forwarding
states) served by the resident :class:`VerificationService` must build
at least 5x fewer atom-graph engines than one-shot execution — a fresh
session and cold engine cache per request, the cost model of invoking
``mfv`` once per query — and finish the workload faster end to end.
Also exercises the two control-plane properties under load: an overload
burst past the queue watermark yields structured ``overloaded``
rejections with the depth bounded, and an interactive arrival completes
ahead of campaign-class jobs queued before it (no priority inversion).
Emits ``BENCH_service.json``.

Scale: ``MFV_BENCH_SMOKE=1`` shrinks the corpus for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.core.context import ScenarioContext
from repro.core.pipeline import ModelFreeBackend
from repro.corpus.production import production_scenario, scaled_timers
from repro.obs import tracing
from repro.pybf.session import Session
from repro.service import (
    JobPriority,
    JobState,
    OverloadedError,
    VerificationService,
)
from repro.verify.engine import clear_engine_cache

from benchmarks.conftest import run_once

SMOKE = bool(os.environ.get("MFV_BENCH_SMOKE"))
NODES = 6 if SMOKE else 8
ROUTES = 60 if SMOKE else 120
REPS = 3 if SMOKE else 5


def _build_snapshots():
    """Two distinct forwarding states of the production corpus: the
    converged baseline and a single-link-failure variant."""
    scenario = production_scenario(
        NODES, peers=2, routes_per_peer=ROUTES, seed=7
    )
    timers = scaled_timers(ROUTES)
    injectors = tuple(scenario.injectors)
    backend = ModelFreeBackend(
        scenario.topology, timers=timers, quiet_period=30.0
    )
    baseline = backend.run(
        ScenarioContext(name="prod", injectors=injectors),
        snapshot_name="baseline",
    )
    link = scenario.topology.links[0]
    variant = ModelFreeBackend(
        scenario.topology, timers=timers, quiet_period=30.0
    ).run(
        ScenarioContext(
            name="linkdown",
            injectors=injectors,
            down_links=((link.a.node, link.z.node),),
        ),
        snapshot_name="variant",
    )
    assert (
        baseline.dataplane.fib_fingerprint()
        != variant.dataplane.fib_fingerprint()
    )
    return scenario, baseline, variant


def _workload(scenario):
    """12 distinct (question, params, snapshot) specs, repeated REPS
    times in a deterministic interleave — the duplicated/distinct mix a
    shared service amortizes and one-shot execution cannot."""
    nodes = sorted(scenario.loopbacks)
    lb = scenario.loopbacks
    specs = [
        ("reachability", {}, "baseline"),
        ("reachability",
         {"startLocation": nodes[0], "dst": f"{lb[nodes[-1]]}/32"},
         "baseline"),
        ("traceroute",
         {"startLocation": nodes[1], "dst": lb[nodes[-2]]}, "baseline"),
        ("routes", {"nodes": nodes[0]}, "baseline"),
        ("routes", {"nodes": nodes[2]}, "baseline"),
        ("detectLoops", {}, "baseline"),
        ("layer3Edges", {}, "baseline"),
        ("reachability", {}, "variant"),
        ("traceroute",
         {"startLocation": nodes[0], "dst": lb[nodes[-1]]}, "variant"),
        ("routes", {"nodes": nodes[1]}, "variant"),
        ("detectLoops", {}, "variant"),
        ("layer3Edges", {}, "variant"),
    ]
    # Interleave by stride so duplicates never arrive back to back:
    # the service sees realistic mixing, not convenient runs.
    workload = []
    for rep in range(REPS):
        for offset in range(len(specs)):
            workload.append(specs[(offset * 5 + rep) % len(specs)])
    return workload


def _run_oneshot(workload, baseline, variant):
    """The cost model of one ``mfv`` invocation per query: every
    request pays a fresh session and a cold engine cache."""
    snapshots = {"baseline": baseline, "variant": variant}
    started = time.perf_counter()
    for question, params, name in workload:
        clear_engine_cache()
        bf = Session()
        bf.init_snapshot(snapshots[name], name=name)
        answer = getattr(bf.q, question)(**params).answer(snapshot=name)
        assert answer.frame() is not None
    wall = time.perf_counter() - started
    clear_engine_cache()
    return wall


def _run_service(workload, baseline, variant):
    started = time.perf_counter()
    with VerificationService(workers=2) as svc:
        svc.register_snapshot(baseline, name="baseline")
        svc.register_snapshot(variant, name="variant")
        jobs = [
            svc.submit(question, params, snapshot=name)
            for question, params, name in workload
        ]
        for job in jobs:
            assert job.result(timeout=60).value is not None
        stats = svc.stats()
    return time.perf_counter() - started, stats


def _overload_burst():
    """Past the watermark: structured rejections, bounded depth, and
    the interactive arrival finishing ahead of queued campaign work."""
    release = threading.Event()
    started = threading.Event()

    def wall():
        started.set()
        release.wait(30)
        return "unblocked"

    svc = VerificationService(workers=1, max_queue_depth=4)
    svc.start()
    try:
        svc.submit_callable(wall, signature=("wall",), cacheable=False)
        assert started.wait(10)
        burst = [
            svc.submit_callable(
                lambda n=n: n, signature=("burst", n),
                priority=JobPriority.CAMPAIGN, cacheable=False,
            )
            for n in range(20)
        ]
        depth_seen = svc.queue.depth
        interactive = svc.submit_callable(
            lambda: "now", signature=("now",),
            priority=JobPriority.INTERACTIVE, cacheable=False,
        )
        rejected = [j for j in burst if j.state is JobState.REJECTED]
        assert rejected, "burst past the watermark must shed load"
        assert depth_seen <= svc.queue.max_depth
        try:
            rejected[0].result(timeout=0)
            raise AssertionError("rejected job must raise OverloadedError")
        except OverloadedError as exc:
            detail = exc.detail
        assert detail["error"] == "overloaded"
        assert detail["watermark"] == 4
        release.set()
        survivors = [j for j in burst if j.state is not JobState.REJECTED]
        for job in (interactive, *survivors):
            job.result(timeout=30)
        inversion_free = all(
            interactive.finished_at <= job.finished_at for job in survivors
        )
        assert inversion_free, "interactive job finished behind campaigns"
        return {
            "submitted": len(burst) + 1,
            "rejected": len(rejected),
            "watermark": 4,
            "max_depth_observed": depth_seen,
            "rejection_detail": {
                k: v for k, v in detail.items() if k != "shed_by"
            },
            "priority_inversion": not inversion_free,
        }
    finally:
        svc.stop()


def test_service_amortizes_engine_builds(benchmark, report):
    scenario, baseline, variant = _build_snapshots()
    workload = _workload(scenario)

    clear_engine_cache()
    with tracing() as tracer:
        oneshot_wall = _run_oneshot(workload, baseline, variant)
    oneshot_builds = tracer.counters["verify.engine_builds"]

    def serve():
        clear_engine_cache()
        with tracing() as service_tracer:
            wall, stats = _run_service(workload, baseline, variant)
        return wall, stats, service_tracer.counters

    service_wall, stats, counters = run_once(benchmark, serve)
    service_builds = counters["verify.engine_builds"]

    build_ratio = oneshot_builds / max(1, service_builds)
    throughput_speedup = oneshot_wall / max(1e-9, service_wall)
    overload = _overload_burst()

    payload = {
        "corpus": {"nodes": NODES, "routes_per_peer": ROUTES, "smoke": SMOKE},
        "workload": {
            "requests": len(workload),
            "distinct_specs": len(set(map(str, workload))),
            "reps": REPS,
        },
        "engine_builds_oneshot": oneshot_builds,
        "engine_builds_service": service_builds,
        "build_ratio": build_ratio,
        "oneshot_wall_seconds": oneshot_wall,
        "service_wall_seconds": service_wall,
        "throughput_speedup": throughput_speedup,
        "service_stats": {
            "store": stats["store"],
            "result_cache": stats["result_cache"],
            "coalesced": stats["coalesced"],
            "jobs_submitted": stats["jobs_submitted"],
            "result_cache_hits": stats["result_cache_hits"],
        },
        "overload": overload,
    }
    Path("BENCH_service.json").write_text(json.dumps(payload, indent=2) + "\n")

    report.add(
        "service", f"engine builds, {len(workload)} mixed requests",
        ">=5x fewer than one-shot",
        f"{oneshot_builds} vs {service_builds} ({build_ratio:.0f}x)",
    )
    report.add(
        "service", "workload wall time",
        "service faster than one-shot",
        f"{oneshot_wall:.2f}s vs {service_wall:.2f}s "
        f"({throughput_speedup:.1f}x)",
    )
    report.add(
        "service", "overload burst",
        "structured rejections, bounded depth",
        f"{overload['rejected']}/{overload['submitted']} rejected, "
        f"depth <= {overload['watermark']}",
    )

    # One engine per distinct forwarding state, not per request.
    assert service_builds == 2
    assert build_ratio >= 5.0
    assert throughput_speedup > 1.0
    assert overload["rejected"] > 0
    assert not overload["priority_inversion"]
