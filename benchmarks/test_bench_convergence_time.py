"""E4b: production-realistic convergence time.

Paper: a multi-vendor 30-node replica with production-complexity
configurations and production-recorded routes injected ("millions from
each BGP peer") converges ≈ 3 minutes after configuration including
route injection; the one-time infrastructure startup (pods + router OS
boot) is 12-17 minutes.

Scaling note (see DESIGN.md): we inject a 10k-prefix synthetic table per
peer standing in for ~2M real routes, with per-session BGP throughput
scaled by the same factor, so full-table *transfer time* — the term that
dominates convergence — is preserved.
"""

import pytest

from repro.core.context import ScenarioContext
from repro.core.pipeline import ModelFreeBackend
from repro.corpus.production import production_scenario, scaled_timers

from benchmarks.conftest import run_once

ROUTES_PER_PEER = 10_000


@pytest.fixture(scope="module")
def production_run():
    scenario = production_scenario(
        30, peers=4, routes_per_peer=ROUTES_PER_PEER, seed=7
    )
    context = ScenarioContext(
        name="production", injectors=tuple(scenario.injectors)
    )
    backend = ModelFreeBackend(
        scenario.topology,
        timers=scaled_timers(ROUTES_PER_PEER),
        quiet_period=30.0,
    )
    snapshot = backend.run(context, seed=2)
    return scenario, backend, snapshot


def test_e4b_startup_time_band(benchmark, production_run, report):
    _scenario, _backend, snapshot = production_run
    run_once(benchmark, lambda: None)  # timing captured by the fixture
    minutes = snapshot.startup_seconds / 60
    report.add(
        "E4b", "infrastructure startup", "12-17 min", f"{minutes:.1f} sim-min"
    )
    assert 12.0 <= minutes <= 17.0


def test_e4b_convergence_minutes_scale(benchmark, production_run, report):
    run_once(benchmark, lambda: None)
    _scenario, _backend, snapshot = production_run
    minutes = snapshot.convergence_seconds / 60
    report.add(
        "E4b", "convergence incl. route injection", "~3 min",
        f"{minutes:.1f} sim-min",
    )
    # Same order of magnitude: minutes, not seconds or hours.
    assert 1.0 <= minutes <= 6.0


def test_e4b_convergence_much_cheaper_than_startup(benchmark, production_run, report):
    """The paper's point: re-running scenarios against an already-up
    emulation is cheap relative to the one-time startup."""
    run_once(benchmark, lambda: None)
    _scenario, _backend, snapshot = production_run
    ratio = snapshot.startup_seconds / max(snapshot.convergence_seconds, 1)
    report.add(
        "E4b", "startup / convergence ratio", ">1 (startup dominates)",
        f"{ratio:.1f}x",
    )
    assert ratio > 2.0


def test_e4b_routes_fully_propagated(benchmark, production_run, report):
    run_once(benchmark, lambda: None)
    scenario, backend, snapshot = production_run
    deployment = backend.last_run.deployment
    expected = 4 * ROUTES_PER_PEER
    short = [
        name
        for name, router in deployment.routers.items()
        if len(router.rib.fib) < expected
    ]
    assert short == [], f"incomplete FIBs: {short}"
    report.add(
        "E4b", "injected routes in every FIB",
        "(implied by convergence)",
        f"{expected} routes x {len(deployment.routers)} devices",
    )
    assert snapshot.metadata["injected_routes"] == expected
    del scenario


def test_e4b_multivendor(benchmark, production_run, report):
    run_once(benchmark, lambda: None)
    scenario, backend, _snapshot = production_run
    vendors = {spec.vendor for spec in scenario.topology.nodes}
    assert vendors == {"arista", "nokia"}
    deployment = backend.last_run.deployment
    per_vendor = {
        vendor: sum(1 for r in deployment.routers.values() if r.vendor == vendor)
        for vendor in sorted(vendors)
    }
    report.add(
        "E4b", "multi-vendor replica", "yes",
        ", ".join(f"{v}: {n}" for v, n in per_vendor.items()),
    )
