"""A1 (§2 anecdotes): vendor-implementation interplay, only visible with
per-vendor emulation.

Two §2 incidents are reproduced and quantified:

* "poor interplay between RSVP-TE signaling timers in two vendors
  resulted in very slow reconvergence after a major link-cut" — measured
  as LSP repair time with a healthy transit build vs. one that never
  emits PathErr;
* "one vendor's OS produced an unusual but valid BGP advertisement that
  caused another vendor's routing process to crash during parsing" —
  measured as session resets and lost reachability.

A single reference model has one implementation and cannot express
either (the paper's "single separate implementation" critique).
"""

from repro.net.addr import parse_ipv4

from benchmarks.conftest import run_once
from tests.helpers import mini_net
from tests.test_integration_interplay import run_cut_and_measure


def test_a1_rsvp_timer_interplay(benchmark, report):
    def measure():
        healthy = run_cut_and_measure(quiet_transit=False)
        mixed = run_cut_and_measure(quiet_transit=True)
        return healthy, mixed

    healthy, mixed = run_once(benchmark, measure)
    factor = mixed / healthy
    report.add(
        "A1", "LSP repair after link cut: same-vendor pair",
        "fast (local failure notification)", f"{healthy:.1f} sim-s",
    )
    report.add(
        "A1", "LSP repair: mixed pair w/ quiet vendor",
        "'very slow reconvergence'",
        f"{mixed:.1f} sim-s ({factor:.0f}x slower)",
    )
    assert factor > 10


CHATTY_R1 = """\
hostname r1
ip routing
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
ip prefix-list ALL seq 10 permit 0.0.0.0/0 le 32
route-map CHATTY permit 10
   match ip address prefix-list ALL
   set community 65001:1 65001:2 65001:3 65001:4 65001:5 65001:6 65001:7 65001:8 65001:9 65001:10 65001:11 65001:12
router bgp 65001
   neighbor 10.0.0.1 remote-as 65002
   neighbor 10.0.0.1 route-map CHATTY out
   neighbor 10.0.0.1 send-community
   network 10.0.0.0/31
   network 7.7.7.0/24
ip route 7.7.7.0/24 Null0
"""

NOKIA_R2 = "\n".join(
    [
        "set / system name host-name r2",
        "set / interface ethernet-1/1 subinterface 0 ipv4 address 10.0.0.1/31",
        "set / network-instance default protocols bgp autonomous-system 65002",
        "set / network-instance default protocols bgp router-id 10.0.0.1",
        "set / network-instance default protocols bgp neighbor 10.0.0.0 peer-as 65001",
    ]
)


def crash_experiment(buggy_build: bool):
    net = mini_net(
        {"r1": CHATTY_R1, "r2": NOKIA_R2},
        [("r1", "Ethernet1", "r2", "ethernet-1/1")],
        vendors={"r2": "nokia"},
        os_versions={"r2": "23.10-parsecrash"} if buggy_build else {},
    )
    net.kernel.run(until=120.0, max_events=2_000_000)
    bgp = net.router("r2").bgp
    session = next(iter(bgp.sessions.values()))
    route = net.router("r2").rib.fib.lookup(parse_ipv4("7.7.7.7"))
    return bgp.crash_count, session.stats.resets, route is not None


def test_a1_bgp_parser_crash_interop(benchmark, report):
    def measure():
        return crash_experiment(True), crash_experiment(False)

    (crashes, resets, has_route), (ok_crashes, ok_resets, ok_route) = (
        run_once(benchmark, measure)
    )
    report.add(
        "A1", "unusual advertisement vs buggy parser",
        "session crash, traffic loss",
        f"{crashes} crashes, {resets} resets, route installed: {has_route}",
    )
    report.add(
        "A1", "same advertisement vs healthy build",
        "no incident",
        f"{ok_crashes} crashes, {ok_resets} resets, "
        f"route installed: {ok_route}",
    )
    assert crashes >= 1 and resets >= 1 and not has_route
    assert ok_crashes == 0 and ok_route
