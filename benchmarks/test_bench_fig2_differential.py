"""E1 (Fig. 2): model-free verification uncovers reachability impact.

Paper: six Arista routers across three ASes (iBGP + eBGP + IS-IS),
62-82 config lines each; a buggy variant takes the r2-r3 eBGP session
down; PyBatfish's Differential Reachability query "correctly discovers
the loss of connectivity from routers in AS3 to routers in AS2".
"""

from repro.core.pipeline import ModelFreeBackend
from repro.corpus.baggage import count_config_lines
from repro.corpus.fig2 import fig2_scenario
from repro.net.addr import parse_ipv4
from repro.protocols.timers import FAST_TIMERS
from repro.pybf.session import Session

from benchmarks.conftest import run_once


def run_experiment():
    scenario = fig2_scenario()
    healthy = ModelFreeBackend(
        scenario.topology, timers=FAST_TIMERS, quiet_period=5.0
    ).run(snapshot_name="healthy")
    buggy = ModelFreeBackend(
        scenario.buggy_topology(), timers=FAST_TIMERS, quiet_period=5.0
    ).run(snapshot_name="buggy")

    bf = Session()
    bf.init_snapshot(healthy, name="healthy")
    bf.init_snapshot(buggy, name="buggy")
    answer = bf.q.differentialReachability().answer(
        snapshot="buggy", reference_snapshot="healthy"
    )
    return scenario, healthy, buggy, answer


def test_e1_differential_reachability(benchmark, report):
    scenario, healthy, buggy, answer = run_once(benchmark, run_experiment)
    frame = answer.frame()

    line_counts = sorted(
        count_config_lines(c) for c in scenario.configs.values()
    )
    report.add(
        "E1/Fig2", "config lines per router", "62-82",
        f"{line_counts[0]}-{line_counts[-1]}",
    )
    assert 62 <= line_counts[0] and line_counts[-1] <= 82

    # AS3 (r3, r4) must lose every AS2 (r1, r2) loopback.
    as2 = {parse_ipv4(scenario.loopbacks[n]) for n in ("r1", "r2")}
    lost = {
        ingress: {
            a
            for row in frame
            if row["Ingress"] == ingress and row["Regressed"]
            for a in as2
            if _covers(healthy, buggy, row, a, ingress)
        }
        for ingress in ("r3", "r4")
    }
    assert lost["r3"] == as2 and lost["r4"] == as2
    report.add(
        "E1/Fig2",
        "differential query finds AS3->AS2 loss",
        "yes",
        f"yes ({len(frame)} difference rows, all regressions)",
    )
    assert all(row["Regressed"] for row in frame)
    assert len(frame) > 0


def _covers(healthy, buggy, row, address, ingress):
    # Re-walk the concrete address to confirm row coverage: witness
    # destinations in rows are merged sets, so check behaviour directly.
    from repro.verify.traceroute import traceroute
    from repro.net.addr import format_ipv4

    del row
    before = traceroute(healthy.dataplane, ingress, format_ipv4(address))
    after = traceroute(buggy.dataplane, ingress, format_ipv4(address))
    return before.success and not after.success
