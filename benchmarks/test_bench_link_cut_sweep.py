"""D2 (§6): exhaustive single-link-cut context sweep.

Paper: checking "the network maintains reachability in the face of any
single link cut" is done model-free by running one emulation per context
and differential checks across the produced dataplanes — linear in
links, while exhaustive k-cut sweeps grow combinatorially (the trade-off
against model-centric approaches like Minesweeper).
"""

from repro.core.context import (
    ScenarioContext,
    k_link_cut_count,
    single_link_cut_contexts,
)
from repro.core.differential import compare_snapshots
from repro.core.pipeline import ModelFreeBackend
from repro.protocols.timers import FAST_TIMERS
from repro.topo.builder import ring_topology

from benchmarks.conftest import run_once
from tests.helpers import isis_config

RING_SIZE = 5


def build_ring():
    """A 5-ring with IS-IS everywhere: 1-link-cut tolerant by design."""
    topology = ring_topology(RING_SIZE)
    addresses = {}
    for j, link in enumerate(topology.links):
        base = f"10.0.{j}"
        addresses.setdefault(link.a.node, []).append(
            (link.a.interface, f"{base}.0/31")
        )
        addresses.setdefault(link.z.node, []).append(
            (link.z.interface, f"{base}.1/31")
        )
    for i, spec in enumerate(topology.nodes, start=1):
        spec.config = isis_config(
            spec.name, i, f"2.2.2.{i}", addresses[spec.name]
        )
    return topology


def sweep():
    topology = build_ring()
    backend = ModelFreeBackend(
        topology, timers=FAST_TIMERS, quiet_period=5.0
    )
    baseline = backend.run(ScenarioContext(), snapshot_name="baseline")
    results = []
    for context in single_link_cut_contexts(topology):
        snapshot = ModelFreeBackend(
            topology, timers=FAST_TIMERS, quiet_period=5.0
        ).run(context, snapshot_name=context.name)
        regressions = [
            row
            for row in compare_snapshots(baseline, snapshot)
            if row.regressed
        ]
        # Only loopback reachability matters for the invariant; the cut
        # link's own /31 legitimately disappears.
        loopback_regressions = [
            row
            for row in regressions
            if any(
                __import__("repro.net.addr", fromlist=["parse_ipv4"]).parse_ipv4(
                    f"2.2.2.{i}"
                )
                in row.dst_set
                for i in range(1, RING_SIZE + 1)
            )
        ]
        results.append((context, loopback_regressions))
    return results


def test_d2_single_cut_sweep(benchmark, report):
    results = run_once(benchmark, sweep)
    assert len(results) == RING_SIZE  # one emulation per link
    violating = [ctx.name for ctx, rows in results if rows]
    report.add(
        "D2", f"single-link-cut sweep over {RING_SIZE}-ring",
        "invariant checkable, one emulation per context",
        f"{len(results)} contexts emulated, "
        f"{len(violating)} loopback-reachability violations",
    )
    # A ring survives any single cut.
    assert violating == []


def test_d2_k_cut_cost_growth(benchmark, report):
    """The §6 cost argument: contexts needed for exhaustive k-cut sweeps
    grow combinatorially, which is where model-centric approaches win."""
    run_once(benchmark, lambda: None)
    links = 60
    growth = [k_link_cut_count(links, k) for k in (1, 2, 3)]
    report.add(
        "D2", f"contexts for k cuts of {links} links (k=1,2,3)",
        "exponential growth",
        " / ".join(str(g) for g in growth),
    )
    assert growth[0] == 60
    assert growth[1] > 25 * growth[0]
    assert growth[2] > 15 * growth[1]
