"""Ablation benches: the scaling behaviour behind the paper's claims.

Not a single paper table, but the design-choice sweeps DESIGN.md calls
out: how simulated startup and convergence scale with topology size, and
how convergence scales with injected table size (the transfer-time term
that dominates E4b).
"""

import dataclasses

from repro.core.context import ScenarioContext
from repro.core.pipeline import ModelFreeBackend
from repro.corpus.production import production_scenario
from repro.kube.cluster import KubeCluster
from repro.protocols.timers import FAST_TIMERS, PRODUCTION_TIMERS

from benchmarks.conftest import run_once


def _run(nodes: int, routes: int, rate: float):
    scenario = production_scenario(
        nodes, peers=2, routes_per_peer=routes, seed=5
    )
    timers = dataclasses.replace(PRODUCTION_TIMERS, bgp_update_rate=rate)
    backend = ModelFreeBackend(
        scenario.topology,
        cluster=KubeCluster.of_size(2),
        timers=timers,
        quiet_period=30.0,
    )
    context = ScenarioContext(name="sweep", injectors=tuple(scenario.injectors))
    snapshot = backend.run(context, seed=1)
    return snapshot


def test_ablation_startup_grows_with_topology_size(benchmark, report):
    def sweep():
        sizes = (6, 12, 24)
        return sizes, [
            _run(size, routes=500, rate=30_000).startup_seconds
            for size in sizes
        ]

    sizes, startups = run_once(benchmark, sweep)
    report.add(
        "ablation", f"startup vs nodes {sizes}",
        "grows with pod count (boot stagger)",
        " / ".join(f"{s / 60:.1f}m" for s in startups),
    )
    assert startups[0] < startups[1] < startups[2]


def test_ablation_convergence_grows_with_table_size(benchmark, report):
    def sweep():
        tables = (1_000, 4_000, 16_000)
        # Fixed (slow) per-session rate: convergence should track the
        # transfer term roughly linearly.
        return tables, [
            _run(8, routes=table, rate=400.0).convergence_seconds
            for table in tables
        ]

    tables, times = run_once(benchmark, sweep)
    report.add(
        "ablation", f"convergence vs routes/peer {tables}",
        "dominated by table transfer (linear-ish)",
        " / ".join(f"{t:.0f}s" for t in times),
    )
    assert times[0] < times[1] < times[2]
    # Quadrupling the table should not grow convergence by more than ~8x
    # nor less than ~1.5x — transfer-dominated scaling.
    assert 1.5 <= times[2] / times[1] <= 8.0


def test_ablation_quiet_period_does_not_change_verdict(benchmark, report):
    """Convergence detection is a measurement choice, not a result: the
    extracted dataplane must be identical for different quiet windows."""
    from repro.corpus.fig3 import fig3_scenario
    from repro.verify.differential import differential_reachability

    def sweep():
        scenario = fig3_scenario()
        snapshots = []
        for quiet in (2.0, 10.0):
            backend = ModelFreeBackend(
                scenario.topology, timers=FAST_TIMERS, quiet_period=quiet
            )
            snapshots.append(backend.run(seed=0))
        return snapshots

    first, second = run_once(benchmark, sweep)
    rows = differential_reachability(first.dataplane, second.dataplane)
    report.add(
        "ablation", "quiet-period sensitivity (2s vs 10s)",
        "extracted state invariant",
        f"{len(rows)} behavioural differences",
    )
    assert rows == []
