"""E4a: emulation can scale in size.

Paper: each cEOS container needs 0.5 vCPU + 1 GB, giving topologies of
up to 60 routers on a single e2-standard-32 (32 vCPU / 128 GB), and
1,000 devices converged on a 17-node Kubernetes cluster.
"""

import pytest

from repro.kube.cluster import KubeCluster, e2_standard_32
from repro.kube.kne import KneDeployment
from repro.kube.scheduler import Scheduler, UnschedulableError
from repro.protocols.timers import FAST_TIMERS
from repro.topo.builder import fabric_topology, wan_topology
from repro.vendors.quirks import quirks_for

from benchmarks.conftest import run_once


def test_e4a_single_node_capacity(benchmark, report):
    def capacity():
        cluster = KubeCluster(nodes=[e2_standard_32()])
        quirks = quirks_for("arista")
        return Scheduler(cluster).capacity_for(
            quirks.container_cpu, quirks.container_memory_gb
        )

    routers = run_once(benchmark, capacity)
    report.add(
        "E4a", "Arista routers per e2-standard-32", "up to 60", str(routers)
    )
    assert routers == 60


def test_e4a_60_router_topology_deploys_on_one_node(benchmark, report):
    run_once(benchmark, lambda: None)
    topology = fabric_topology(6, 54)  # 60 routers
    deployment = KneDeployment(
        topology, cluster=KubeCluster(nodes=[e2_standard_32()]),
        timers=FAST_TIMERS,
    )
    result = deployment.deploy()
    assert result.nodes_used == 1
    report.add(
        "E4a", "60-router bring-up on one node", "works",
        f"works (startup {result.startup_seconds / 60:.1f} sim-min)",
    )


def test_e4a_61_routers_do_not_fit(benchmark, report):
    run_once(benchmark, lambda: None)
    topology = fabric_topology(6, 55)  # 61 routers
    deployment = KneDeployment(
        topology, cluster=KubeCluster(nodes=[e2_standard_32()]),
        timers=FAST_TIMERS,
    )
    with pytest.raises(UnschedulableError):
        deployment.deploy()
    report.add(
        "E4a", "61st router on one node", "(implied) does not fit",
        "unschedulable",
    )


def test_e4a_1000_devices_on_17_node_cluster(benchmark, report):
    def schedule_1000():
        topology = wan_topology(1000, degree=3, seed=3)
        deployment = KneDeployment(
            topology, cluster=KubeCluster.of_size(17), timers=FAST_TIMERS
        )
        return deployment.deploy()

    result = run_once(benchmark, schedule_1000)
    report.add(
        "E4a", "1,000 devices on 17-node cluster", "successful convergence",
        f"scheduled on {result.nodes_used} nodes, "
        f"startup {result.startup_seconds / 60:.0f} sim-min",
    )
    assert result.nodes_used == 17


def test_e4a_1000_device_convergence(benchmark, report):
    """Bring 1,000 (unconfigured-protocol) devices up and converge —
    the paper's claim is bring-up at that scale, exercised here with
    connected-route-only dataplanes to keep host time bounded."""
    run_once(benchmark, lambda: None)
    topology = wan_topology(1000, degree=3, seed=3)
    from repro.corpus.render import IfaceSpec, RouterSpec, render_config
    from repro.topo.builder import interface_name

    # Give every device minimal L3 config (addresses only, no BGP) so
    # convergence means "all FIBs populated and stable".
    counters = {spec.name: 0 for spec in topology.nodes}
    ifaces = {spec.name: [] for spec in topology.nodes}
    for j, link in enumerate(topology.links):
        base = (10 << 24) | (j * 2)
        for node, addr in ((link.a.node, base), (link.z.node, base + 1)):
            counters[node] += 1
        ifaces[link.a.node].append((link.a.interface, base))
        ifaces[link.z.node].append((link.z.interface, base + 1))
    for i, spec in enumerate(topology.nodes):
        lines = ["hostname " + spec.name, "ip routing"]
        for iface, addr in ifaces[spec.name]:
            dotted = ".".join(
                str((addr >> s) & 0xFF) for s in (24, 16, 8, 0)
            )
            lines += [
                f"interface {iface}",
                "   no switchport",
                f"   ip address {dotted}/31",
            ]
        spec.config = "\n".join(lines) + "\n"
    deployment = KneDeployment(
        topology, cluster=KubeCluster.of_size(17), timers=FAST_TIMERS
    )
    deployment.deploy()
    deployment.wait_converged(quiet_period=10.0)
    populated = sum(
        1 for r in deployment.routers.values() if len(r.rib.fib) > 0
    )
    assert populated == 1000
    report.add(
        "E4a", "1,000-device dataplane stabilization", "observed",
        f"{populated}/1000 devices with stable FIBs",
    )
