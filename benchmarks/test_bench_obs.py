"""E8: the metrics plane must be cheap enough to leave on.

The registry is enabled by default, so its cost is a standing tax on
every run. This bench runs the E7 production verify workload (pipeline
build + full reachability + all-pairs matrix) twice — once with the
default metrics plane enabled, once disabled — interleaved, and takes
the best-of-N wall time for each mode to damp scheduler noise. It
emits ``BENCH_obs.json`` with the enabled/disabled overhead ratio and
the metric cardinality (labeled series) a scrape of the run pays for,
and asserts the overhead stays within the 5% budget.

Scale: ``MFV_BENCH_SMOKE=1`` shrinks the corpus for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.context import ScenarioContext
from repro.core.pipeline import ModelFreeBackend
from repro.corpus.production import production_scenario, scaled_timers
from repro.obs import metrics as obs_metrics
from repro.verify.engine import clear_engine_cache
from repro.verify.reachability import ReachabilityAnalysis, pairwise_matrix

from benchmarks.conftest import run_once

SMOKE = bool(os.environ.get("MFV_BENCH_SMOKE"))
NODES = 6 if SMOKE else 12
PEERS = 1 if SMOKE else 2
ROUTES = 60 if SMOKE else 300
REPEATS = 3

#: The instrumentation-overhead budget (acceptance criterion).
MAX_OVERHEAD_RATIO = 1.05


def _run_workload():
    """One full pass: emulate + converge + extract, then verify."""
    scenario = production_scenario(
        NODES, peers=PEERS, routes_per_peer=ROUTES, seed=7
    )
    backend = ModelFreeBackend(
        scenario.topology, timers=scaled_timers(ROUTES), quiet_period=30.0
    )
    snapshot = backend.run(
        ScenarioContext(name="prod", injectors=tuple(scenario.injectors))
    )
    dataplane = snapshot.dataplane
    clear_engine_cache()
    rows = ReachabilityAnalysis(dataplane, use_engine=True).analyze()
    matrix = pairwise_matrix(dataplane, use_engine=True)
    return len(rows), len(matrix)


def _timed_pass(enabled: bool) -> tuple[float, int]:
    """One workload pass with the default plane forced on or off.

    Returns (wall seconds, series cardinality recorded by the pass).
    """
    saved = obs_metrics.DEFAULT
    obs_metrics.DEFAULT = obs_metrics.MetricsRegistry(enabled=enabled)
    try:
        start = time.perf_counter()
        _run_workload()
        wall = time.perf_counter() - start
        cardinality = obs_metrics.DEFAULT.series_count()
    finally:
        obs_metrics.DEFAULT = saved
    return wall, cardinality


def test_e8_metrics_overhead_within_budget(benchmark, report):
    def measure():
        # Interleave modes so drift (cache warmup, host load) hits both
        # equally; best-of-N is the noise damper.
        disabled, enabled, cardinality = [], [], 0
        for _ in range(REPEATS):
            wall, _ = _timed_pass(enabled=False)
            disabled.append(wall)
            wall, series = _timed_pass(enabled=True)
            enabled.append(wall)
            cardinality = max(cardinality, series)
        return disabled, enabled, cardinality

    disabled, enabled, cardinality = run_once(benchmark, measure)
    best_disabled = min(disabled)
    best_enabled = min(enabled)
    ratio = best_enabled / max(1e-9, best_disabled)

    payload = {
        "corpus": {"nodes": NODES, "peers": PEERS,
                   "routes_per_peer": ROUTES, "smoke": SMOKE},
        "workload": "pipeline build + full reachability + all-pairs matrix",
        "repeats": REPEATS,
        "disabled_wall_seconds": disabled,
        "enabled_wall_seconds": enabled,
        "best_disabled_seconds": best_disabled,
        "best_enabled_seconds": best_enabled,
        "overhead_ratio": ratio,
        "metrics_cardinality": cardinality,
        "budget_ratio": MAX_OVERHEAD_RATIO,
    }
    Path("BENCH_obs.json").write_text(json.dumps(payload, indent=2) + "\n")

    report.add(
        "E8", "metrics-plane overhead (enabled/disabled wall)",
        f"<= {MAX_OVERHEAD_RATIO:.2f}x",
        f"{best_disabled:.3f}s -> {best_enabled:.3f}s ({ratio:.3f}x)",
    )
    report.add(
        "E8", "metric cardinality (labeled series)",
        "bounded (fixed label sets)",
        str(cardinality),
    )
    # The plane actually recorded something (engine builds at minimum),
    # and its cardinality stays in scrape-friendly territory.
    assert cardinality > 0
    assert cardinality < 1000
    assert ratio <= MAX_OVERHEAD_RATIO
