"""D1 (§6): nondeterministic convergence, explored by multi-run.

Paper: one emulation run produces one converged state; ordering/timing
tiebreaks can admit several. "For higher confidence, our emulation
approach can be run multiple times in parallel to produce multiple
resulting dataplanes."

Two workloads:
* Fig. 3 (pure IS-IS line) — no ordering-dependent tiebreaks, so every
  seed must converge to an equivalent dataplane;
* a BGP topology with two equal candidates whose tiebreak is the
  arrival-order-sensitive peer choice — seeds may legitimately disagree,
  and the multi-run report must expose it rather than hide it.
"""

from repro.core.multirun import explore_nondeterminism
from repro.core.pipeline import ModelFreeBackend
from repro.corpus.fig3 import fig3_scenario
from repro.protocols.timers import FAST_TIMERS
from repro.topo.builder import TopologyBuilder

from benchmarks.conftest import run_once

SEEDS = (0, 1, 2, 3)


def test_d1_deterministic_workload_agrees_across_seeds(benchmark, report):
    def run():
        scenario = fig3_scenario()
        backend = ModelFreeBackend(
            scenario.topology, timers=FAST_TIMERS, quiet_period=5.0
        )
        return explore_nondeterminism(backend, seeds=SEEDS)

    result = run_once(benchmark, run)
    report.add(
        "D1", f"IS-IS line, {len(SEEDS)} seeded runs",
        "single converged state expected",
        "all seeds equivalent" if result.deterministic else "DIVERGED",
    )
    assert result.deterministic


def _race_topology():
    """r1 multihomed to two upstreams in the same AS advertising the
    same prefix with identical attributes — the winner is decided by the
    final peer-address tiebreak, but transiently by arrival order."""
    r1 = """\
hostname r1
ip routing
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
interface Ethernet2
   no switchport
   ip address 10.0.1.0/31
router bgp 65001
   router-id 1.1.1.1
   neighbor 10.0.0.1 remote-as 65002
   neighbor 10.0.1.1 remote-as 65002
"""

    def upstream(name, address, router_id):
        return f"""\
hostname {name}
ip routing
interface Ethernet1
   no switchport
   ip address {address}/31
interface Loopback0
   ip address {router_id}/32
router bgp 65002
   router-id {router_id}
   neighbor {_peer(address)} remote-as 65001
   network 99.99.99.0/24
ip route 99.99.99.0/24 Null0
"""

    builder = TopologyBuilder("race")
    builder.node("r1", config=r1)
    builder.node("u1", config=upstream("u1", "10.0.0.1", "9.9.9.1"))
    builder.node("u2", config=upstream("u2", "10.0.1.1", "9.9.9.2"))
    builder.link("r1", "u1", a_int="Ethernet1", z_int="Ethernet1")
    builder.link("r1", "u2", a_int="Ethernet2", z_int="Ethernet1")
    return builder.build()


def _peer(address: str) -> str:
    head, _, last = address.rpartition(".")
    return f"{head}.{int(last) - 1}"


def test_d1_tiebreak_workload_converges_but_is_comparable(benchmark, report):
    run_once(benchmark, lambda: None)
    topology = _race_topology()
    backend = ModelFreeBackend(
        topology, timers=FAST_TIMERS, quiet_period=5.0
    )
    result = explore_nondeterminism(backend, seeds=SEEDS)
    # The deterministic final tiebreak (lowest peer address) makes even
    # this race converge identically — and the multi-run harness is what
    # *demonstrates* that, which is the paper's proposed methodology.
    pairs = len(result.divergences)
    report.add(
        "D1", "BGP tiebreak race, pairwise dataplane diffs",
        "multiple runs compared in parallel",
        f"{pairs} seed pairs compared, "
        + ("all equivalent" if result.deterministic else
           f"{len(result.divergent_pairs)} diverged"),
    )
    assert pairs == len(SEEDS) * (len(SEEDS) - 1) // 2
    for snapshot in result.snapshots:
        entry = snapshot.dataplane.devices["r1"].lookup(
            __import__("repro.net.addr", fromlist=["parse_ipv4"]).parse_ipv4(
                "99.99.99.1"
            )
        )
        assert entry is not None
