"""Ensemble verification bench: fingerprint dedup vs per-seed brute force.

The claim under test is the economics of outcome dedup: on a seeded
ensemble whose members overwhelmingly converge to the same forwarding
state, folding verdicts over *distinct outcomes* (one pinned engine per
fingerprint, weighted by multiplicity) must beat the naive per-seed
loop (one cold engine per member) by >= 3x wall time on the production
corpus — while producing the *identical* verdict list row-for-row.
The 16-seed sweep deliberately has no chaos plans crossed in, so the
matrix is the best case for dedup and the worst case for brute force:
every member pays a full engine build under the oracle, while the
dedup path pays at most one per distinct converged state (<= 3 here).

Writes ``BENCH_ensemble.json`` for the CI artifact.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.core.context import ScenarioContext
from repro.corpus.production import production_scenario, scaled_timers
from repro.ensemble import (
    EnsembleRunner,
    brute_force_verdicts,
    default_ensemble_invariants,
    fold_records,
)
from repro.obs import tracing
from repro.service.store import SnapshotStore
from repro.verify.engine import clear_engine_cache

SMOKE = bool(os.environ.get("MFV_BENCH_SMOKE"))

NODES = 4 if SMOKE else 8
ROUTES_PER_PEER = 40 if SMOKE else 500
SEEDS = 4 if SMOKE else 16
ROUNDS = 1 if SMOKE else 3


def _record_ensemble():
    """Run the seed sweep once and return its per-member records.

    Recording (emulated convergence) is deliberately outside the timed
    region — the bench measures the verification fold, not the
    deployment, and both fold paths consume the same records.
    """
    scenario = production_scenario(
        NODES, peers=2, routes_per_peer=ROUTES_PER_PEER, seed=7
    )
    runner = EnsembleRunner(
        scenario.topology,
        context=ScenarioContext(
            name="bench-ensemble", injectors=tuple(scenario.injectors)
        ),
        seeds=range(SEEDS),
        invariants=(),  # fold is timed separately below
        timers=scaled_timers(ROUTES_PER_PEER),
        quiet_period=30.0,
    )
    runner.run(workers=1)
    return runner.last_records


def _best_seconds(fn, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_dedup_fold_vs_per_seed_brute_force(benchmark, report):
    records = run_once(benchmark, _record_ensemble)
    battery = default_ensemble_invariants()

    def dedup_fold():
        # Fresh store and cold module cache every round: the dedup win
        # must come from fingerprint coalescing, not from a previous
        # round's warm engines.
        clear_engine_cache()
        store = SnapshotStore(capacity=max(8, len(records)))
        with tracing() as tracer:
            folded = fold_records(
                records,
                invariants=battery,
                engine_of=store.engine,
                topology_name="bench-ensemble",
                seeds=tuple(r.seed for r in records),
            )
        return folded, tracer.counters.get("verify.engine_builds", 0)

    dedup_s, (ensemble, builds) = _best_seconds(dedup_fold)
    brute_s, oracle = _best_seconds(
        lambda: brute_force_verdicts(records, invariants=battery)
    )
    clear_engine_cache()

    # Identical verdicts row-for-row: dedup is an optimization, not an
    # approximation.
    assert ensemble.verdicts == oracle

    assert ensemble.runs == SEEDS
    assert ensemble.distinct <= 3
    assert builds <= ensemble.distinct

    speedup = brute_s / dedup_s if dedup_s > 0 else float("inf")
    payload = {
        "corpus": f"production-{NODES}x{ROUTES_PER_PEER}",
        "smoke": SMOKE,
        "seeds": SEEDS,
        "distinct_outcomes": ensemble.distinct,
        "engine_builds": builds,
        "verdicts": len(ensemble.verdicts),
        "verdict_counts": ensemble.verdict_counts(),
        "dedup_seconds": dedup_s,
        "brute_force_seconds": brute_s,
        "speedup": speedup,
    }
    Path("BENCH_ensemble.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    report.add(
        "ensemble",
        "dedup fold vs per-seed brute force",
        ">=3x",
        f"{speedup:.1f}x over {SEEDS} seeds",
    )
    report.add(
        "ensemble",
        "distinct converged states",
        "<=3",
        f"{ensemble.distinct} ({builds} engine builds)",
    )

    if SMOKE:
        assert speedup > 1.0
    else:
        assert speedup >= 3.0
