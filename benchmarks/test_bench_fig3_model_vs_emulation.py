"""E3 (Fig. 3): model-based verification results can be wrong or
misleading.

Paper: a 3-node IS-IS line with the Fig. 3 configuration; the Batfish
model applied `ip address` order-sensitively (issue #1) and rejected
`isis enable default` (issue #2), so its dataplane dropped R2 -> R1 —
while the actual Arista emulation had full pairwise reachability.
Differential reachability across the two *backends* surfaces the model
defect.
"""

from repro.batfish_model.issues import FIXED_ASSUMPTIONS
from repro.core.differential import compare_snapshots
from repro.core.pipeline import ModelFreeBackend, NativeBatfishBackend
from repro.corpus.fig3 import fig3_scenario
from repro.net.addr import parse_ipv4
from repro.protocols.timers import FAST_TIMERS
from repro.verify.reachability import pairwise_matrix

from benchmarks.conftest import run_once


def run_experiment():
    scenario = fig3_scenario()
    emulated = ModelFreeBackend(
        scenario.topology, timers=FAST_TIMERS, quiet_period=5.0
    ).run(snapshot_name="emulated")
    model = NativeBatfishBackend(scenario.topology).run(
        snapshot_name="model"
    )
    return scenario, emulated, model


def test_e3_model_diverges_from_emulation(benchmark, report):
    _scenario, emulated, model = run_once(benchmark, run_experiment)

    emulated_matrix = pairwise_matrix(emulated.dataplane)
    model_matrix = pairwise_matrix(model.dataplane)

    report.add(
        "E3/Fig3", "emulation pairwise reachability", "full",
        "full" if all(emulated_matrix.values()) else "NOT full",
    )
    assert all(emulated_matrix.values())

    report.add(
        "E3/Fig3", "model R2->R1", "dropped",
        "dropped" if not model_matrix[("r2", "r1")] else "reachable",
    )
    assert model_matrix[("r2", "r1")] is False

    rows = compare_snapshots(emulated, model)
    regressions = [r for r in rows if r.regressed]
    assert any(
        r.ingress == "r2" and r.sample_destination == parse_ipv4("2.2.2.1")
        for r in regressions
    )
    report.add(
        "E3/Fig3", "differential emulation-vs-model rows", ">0 (divergence)",
        f"{len(rows)} rows / {len(regressions)} regressions",
    )


def test_e3_issue_attribution(benchmark, report):
    """Both documented model issues fire on R1's configuration."""
    run_once(benchmark, lambda: None)
    scenario, _, model = run_experiment()
    del scenario
    unrecognized = model.metadata["unrecognized_lines"]
    # Issue #2 shows up as the rejected `isis enable` on r1 only.
    assert unrecognized == {"r1": 1, "r2": 0, "r3": 0}
    report.add(
        "E3/Fig3", "issue #2 (`isis enable` invalid syntax)",
        "reported on R1", f"r1 rejects {unrecognized['r1']} line",
    )


def test_e3_ablation_fixed_model_agrees(benchmark, report):
    """Ablation: removing the two modeled defects removes the divergence
    — demonstrating the divergence is exactly the paper's issues #1/#2."""
    run_once(benchmark, lambda: None)
    scenario = fig3_scenario()
    emulated = ModelFreeBackend(
        scenario.topology, timers=FAST_TIMERS, quiet_period=5.0
    ).run()
    fixed = NativeBatfishBackend(
        scenario.topology, assumptions=FIXED_ASSUMPTIONS
    ).run()
    rows = compare_snapshots(emulated, fixed)
    regressions = [r for r in rows if r.regressed]
    assert regressions == []
    report.add(
        "E3/Fig3", "ablation: defect-free model vs emulation",
        "(not in paper)", f"{len(regressions)} regressions — model agrees",
    )
