"""E7: atom-graph engine vs scalar walks on the production corpus.

The atom-graph engine resolves every device's LPM decision once per
destination atom and classifies all ingresses in one graph pass, where
the original evaluation re-walked the network per (ingress, atom) pair
— re-running the longest-prefix match at every hop of every walk. This
bench runs the same workload (full reachability from every ingress plus
the all-pairs matrix) both ways on a generated production-like
topology, checks the answers agree, and emits ``BENCH_verify.json``
with the wall times and counter deltas.

Scale: ``MFV_BENCH_SMOKE=1`` shrinks the corpus for CI smoke runs; the
default size matches the repo's other production-corpus benches.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.context import ScenarioContext
from repro.core.pipeline import ModelFreeBackend
from repro.corpus.production import production_scenario, scaled_timers
from repro.obs import tracing
from repro.verify.engine import clear_engine_cache
from repro.verify.reachability import ReachabilityAnalysis, pairwise_matrix

from benchmarks.conftest import run_once

SMOKE = bool(os.environ.get("MFV_BENCH_SMOKE"))
NODES = 6 if SMOKE else 16
PEERS = 1 if SMOKE else 3
ROUTES = 60 if SMOKE else 500


def _build_snapshot():
    scenario = production_scenario(
        NODES, peers=PEERS, routes_per_peer=ROUTES, seed=7
    )
    backend = ModelFreeBackend(
        scenario.topology, timers=scaled_timers(ROUTES), quiet_period=30.0
    )
    return backend.run(
        ScenarioContext(name="prod", injectors=tuple(scenario.injectors))
    )


def _workload(dataplane, use_engine: bool):
    """Full reachability + all-pairs matrix, timed and counter-traced."""
    clear_engine_cache()
    with tracing() as tracer:
        start = time.perf_counter()
        rows = ReachabilityAnalysis(dataplane, use_engine=use_engine).analyze()
        matrix = pairwise_matrix(dataplane, use_engine=use_engine)
        wall = time.perf_counter() - start
    counters = tracer.counters
    return {
        "rows": rows,
        "matrix": matrix,
        "wall_seconds": wall,
        "lpm_lookups": counters.get("verify.lpm_lookups", 0),
        "scalar_walks": counters.get("verify.scalar_walks", 0),
        "index_probes": counters.get("verify.index_probes", 0),
        "graph_builds": counters.get("verify.graph_builds", 0),
        "graph_shared": counters.get("verify.graph_shared", 0),
    }


def _row_key(rows):
    return {(r.ingress, r.dispositions): r.dst_set for r in rows}


def test_e7_engine_vs_scalar_walks(benchmark, report):
    snapshot = run_once(benchmark, _build_snapshot)
    dataplane = snapshot.dataplane

    old = _workload(dataplane, use_engine=False)
    new = _workload(dataplane, use_engine=True)

    # Same answers either way — the engine is a faster evaluator, not a
    # different semantics.
    assert _row_key(old["rows"]) == _row_key(new["rows"])
    assert old["matrix"] == new["matrix"]

    lookup_factor = old["lpm_lookups"] / max(1, new["lpm_lookups"])
    walk_factor = old["scalar_walks"] / max(1, new["scalar_walks"])
    speedup = old["wall_seconds"] / max(1e-9, new["wall_seconds"])

    payload = {
        "corpus": {"nodes": NODES, "peers": PEERS, "routes_per_peer": ROUTES,
                   "smoke": SMOKE},
        "workload": "full reachability (all ingresses) + all-pairs matrix",
        "old": {k: v for k, v in old.items() if k not in ("rows", "matrix")},
        "new": {k: v for k, v in new.items() if k not in ("rows", "matrix")},
        "lpm_lookup_reduction": lookup_factor,
        "scalar_walk_reduction": walk_factor,
        "wall_speedup": speedup,
    }
    Path("BENCH_verify.json").write_text(json.dumps(payload, indent=2) + "\n")

    report.add(
        "E7", "per-hop LPM lookups (old vs engine)",
        ">=5x fewer",
        f"{old['lpm_lookups']} -> {new['lpm_lookups']} "
        f"({lookup_factor:.0f}x)",
    )
    report.add(
        "E7", "verification wall time",
        "speedup",
        f"{old['wall_seconds']:.2f}s -> {new['wall_seconds']:.2f}s "
        f"({speedup:.1f}x)",
    )
    assert lookup_factor >= 5.0
    assert new["wall_seconds"] < old["wall_seconds"]
    # Decision-vector dedup: many atoms resolve to few distinct graphs.
    assert new["graph_builds"] + new["graph_shared"] > 0
    assert new["graph_builds"] <= new["graph_builds"] + new["graph_shared"]
