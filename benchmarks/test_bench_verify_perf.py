"""E7: atom-graph engine vs scalar walks on the production corpus.

The atom-graph engine resolves every device's LPM decision once per
destination atom and classifies all ingresses in one graph pass, where
the original evaluation re-walked the network per (ingress, atom) pair
— re-running the longest-prefix match at every hop of every walk. This
bench runs the same workload (full reachability from every ingress plus
the all-pairs matrix) both ways on a generated production-like
topology, checks the answers agree, and emits ``BENCH_verify.json``
with the wall times and counter deltas.

Scale: ``MFV_BENCH_SMOKE=1`` shrinks the corpus for CI smoke runs; the
default size matches the repo's other production-corpus benches.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.context import ScenarioContext
from repro.core.pipeline import ModelFreeBackend
from repro.corpus.production import production_scenario, scaled_timers
from repro.dataplane.delta import DataplaneDelta
from repro.obs import tracing
from repro.verify.engine import (
    AtomGraphEngine,
    DeltaUnapplicable,
    clear_engine_cache,
)
from repro.verify.reachability import ReachabilityAnalysis, pairwise_matrix

from benchmarks.conftest import run_once

SMOKE = bool(os.environ.get("MFV_BENCH_SMOKE"))
NODES = 6 if SMOKE else 16
PEERS = 1 if SMOKE else 3
ROUTES = 60 if SMOKE else 500

# Delta-maintenance corpus (E7b): a 10-node single-peer fabric where
# cutting r7-r5 is off every peer-route shortest path, so the honest
# churn dirties a handful of atoms — the regime the delta path exists
# for. The on-path cut r2-r1 legitimately reroutes a large table slice
# and is reported (never gated) to keep the fallback cost visible.
DELTA_NODES = 10
DELTA_PEERS = 1
DELTA_ROUTES = 800 if SMOKE else 2000
DELTA_CUT = ("r7", "r5")
DELTA_ONPATH_CUT = ("r2", "r1")
DELTA_ROUNDS = 3


def _build_snapshot():
    scenario = production_scenario(
        NODES, peers=PEERS, routes_per_peer=ROUTES, seed=7
    )
    backend = ModelFreeBackend(
        scenario.topology, timers=scaled_timers(ROUTES), quiet_period=30.0
    )
    return backend.run(
        ScenarioContext(name="prod", injectors=tuple(scenario.injectors))
    )


def _workload(dataplane, use_engine: bool):
    """Full reachability + all-pairs matrix, timed and counter-traced."""
    clear_engine_cache()
    with tracing() as tracer:
        start = time.perf_counter()
        rows = ReachabilityAnalysis(dataplane, use_engine=use_engine).analyze()
        matrix = pairwise_matrix(dataplane, use_engine=use_engine)
        wall = time.perf_counter() - start
    counters = tracer.counters
    return {
        "rows": rows,
        "matrix": matrix,
        "wall_seconds": wall,
        "lpm_lookups": counters.get("verify.lpm_lookups", 0),
        "scalar_walks": counters.get("verify.scalar_walks", 0),
        "index_probes": counters.get("verify.index_probes", 0),
        "graph_builds": counters.get("verify.graph_builds", 0),
        "graph_shared": counters.get("verify.graph_shared", 0),
    }


def _row_key(rows):
    return {(r.ingress, r.dispositions): r.dst_set for r in rows}


def test_e7_engine_vs_scalar_walks(benchmark, report):
    snapshot = run_once(benchmark, _build_snapshot)
    dataplane = snapshot.dataplane

    old = _workload(dataplane, use_engine=False)
    new = _workload(dataplane, use_engine=True)

    # Same answers either way — the engine is a faster evaluator, not a
    # different semantics.
    assert _row_key(old["rows"]) == _row_key(new["rows"])
    assert old["matrix"] == new["matrix"]

    lookup_factor = old["lpm_lookups"] / max(1, new["lpm_lookups"])
    walk_factor = old["scalar_walks"] / max(1, new["scalar_walks"])
    speedup = old["wall_seconds"] / max(1e-9, new["wall_seconds"])

    payload = {
        "corpus": {"nodes": NODES, "peers": PEERS, "routes_per_peer": ROUTES,
                   "smoke": SMOKE},
        "workload": "full reachability (all ingresses) + all-pairs matrix",
        "old": {k: v for k, v in old.items() if k not in ("rows", "matrix")},
        "new": {k: v for k, v in new.items() if k not in ("rows", "matrix")},
        "lpm_lookup_reduction": lookup_factor,
        "scalar_walk_reduction": walk_factor,
        "wall_speedup": speedup,
    }
    Path("BENCH_verify.json").write_text(json.dumps(payload, indent=2) + "\n")

    report.add(
        "E7", "per-hop LPM lookups (old vs engine)",
        ">=5x fewer",
        f"{old['lpm_lookups']} -> {new['lpm_lookups']} "
        f"({lookup_factor:.0f}x)",
    )
    report.add(
        "E7", "verification wall time",
        "speedup",
        f"{old['wall_seconds']:.2f}s -> {new['wall_seconds']:.2f}s "
        f"({speedup:.1f}x)",
    )
    assert lookup_factor >= 5.0
    assert new["wall_seconds"] < old["wall_seconds"]
    # Decision-vector dedup: many atoms resolve to few distinct graphs.
    assert new["graph_builds"] + new["graph_shared"] > 0
    assert new["graph_builds"] <= new["graph_builds"] + new["graph_shared"]


def _build_delta_corpus():
    scenario = production_scenario(
        DELTA_NODES, peers=DELTA_PEERS, routes_per_peer=DELTA_ROUTES, seed=7
    )
    backend = ModelFreeBackend(
        scenario.topology,
        timers=scaled_timers(DELTA_ROUTES),
        quiet_period=30.0,
    )
    context = ScenarioContext(
        name="prod", injectors=tuple(scenario.injectors)
    )
    base = backend.run(context)
    offpath = backend.run(context.with_link_down(*DELTA_CUT))
    onpath = backend.run(context.with_link_down(*DELTA_ONPATH_CUT))
    return base, offpath, onpath


def _cold_seconds(dataplane):
    best = float("inf")
    for _ in range(DELTA_ROUNDS):
        start = time.perf_counter()
        engine = AtomGraphEngine(dataplane)
        engine.precompute()
        best = min(best, time.perf_counter() - start)
    return best


def _delta_seconds(base_engine, dataplane):
    """Min-of-N diff+apply wall seconds (the full incremental path, the
    diff included) plus the last run's stats; None seconds on fallback."""
    best = None
    stats = None
    for _ in range(DELTA_ROUNDS):
        start = time.perf_counter()
        try:
            derived = base_engine.apply_delta(
                DataplaneDelta(base_engine.dataplane, dataplane)
            )
        except DeltaUnapplicable as exc:
            return None, exc.reason, None
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
        stats = derived.delta_stats
    return best, None, stats


def test_e7b_delta_apply_vs_cold_rebuild(benchmark, report):
    base, offpath, onpath = run_once(benchmark, _build_delta_corpus)
    clear_engine_cache()
    base_engine = AtomGraphEngine(base.dataplane)
    base_engine.precompute()

    cold = _cold_seconds(offpath.dataplane)
    incremental, fallback, stats = _delta_seconds(
        base_engine, offpath.dataplane
    )
    assert fallback is None, (
        f"off-path cut {DELTA_CUT} unexpectedly fell back: {fallback}"
    )
    ratio = cold / max(1e-9, incremental)

    onpath_cold = _cold_seconds(onpath.dataplane)
    onpath_incremental, onpath_fallback, onpath_stats = _delta_seconds(
        base_engine, onpath.dataplane
    )

    delta_payload = {
        "corpus": {
            "nodes": DELTA_NODES,
            "peers": DELTA_PEERS,
            "routes_per_peer": DELTA_ROUTES,
            "smoke": SMOKE,
        },
        "rounds": DELTA_ROUNDS,
        "offpath_cut": {
            "link": list(DELTA_CUT),
            "cold_seconds": cold,
            "delta_seconds": incremental,
            "ratio": ratio,
            "dirty_atoms": stats.dirty_atoms,
            "total_atoms": stats.total_atoms,
            "dirty_fraction": stats.dirty_fraction,
        },
        "onpath_cut": {
            "link": list(DELTA_ONPATH_CUT),
            "cold_seconds": onpath_cold,
            "delta_seconds": onpath_incremental,
            "fallback": onpath_fallback,
            "ratio": (
                onpath_cold / max(1e-9, onpath_incremental)
                if onpath_incremental is not None
                else None
            ),
            "dirty_fraction": (
                onpath_stats.dirty_fraction
                if onpath_stats is not None
                else None
            ),
        },
    }
    path = Path("BENCH_verify.json")
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload["delta"] = delta_payload
    path.write_text(json.dumps(payload, indent=2) + "\n")

    report.add(
        "E7b", "single-link delta apply vs cold rebuild",
        ">=5x faster",
        f"{cold * 1e3:.1f}ms -> {incremental * 1e3:.1f}ms "
        f"({ratio:.1f}x, {stats.dirty_atoms}/{stats.total_atoms} dirty)",
    )
    if onpath_fallback is not None:
        onpath_measured = f"fallback: {onpath_fallback}"
    else:
        onpath_measured = (
            f"{onpath_cold * 1e3:.1f}ms -> {onpath_incremental * 1e3:.1f}ms "
            f"(dirty fraction {onpath_stats.dirty_fraction:.2f})"
        )
    report.add(
        "E7b", "on-path cut (heavy churn, reported not gated)",
        "apply or fall back",
        onpath_measured,
    )

    assert ratio >= 5.0
    # The patch is sparse: the off-path cut must not dirty more than a
    # sliver of the table, or the candidate detection has regressed.
    assert stats.dirty_fraction < 0.1
