"""Temporal verification bench: incremental vs rebuild-per-checkpoint.

The claim under test is the whole point of threading one warm engine
through a checkpoint stream: evaluating every invariant at every
checkpoint with ``apply_delta`` must beat the brute-force oracle (a
cold, fully precomputed engine per checkpoint) by >= 5x wall time on
the production corpus, while reporting the *identical* violation
intervals. The episode is a repeatedly flapping off-path link (the same
``r7-r5`` link ``test_verify_delta`` uses for its off-path cut) on a
converged deployment — exactly the churning-but-recovering pathology
temporal verification exists for — so the stream carries real transient
blackhole windows no post-convergence check can see. The coalescing
window is zero so every install burst becomes a checkpoint: the most
checkpoint-dense, least favourable setting for the incremental path.

Writes ``BENCH_temporal.json`` for the CI artifact.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.core.context import ScenarioContext
from repro.core.pipeline import ModelFreeBackend
from repro.corpus.production import production_scenario, scaled_timers
from repro.temporal import CheckpointRecorder, evaluate_stream
from repro.whatif import link_flap_scenarios

SMOKE = bool(os.environ.get("MFV_BENCH_SMOKE"))

NODES = 4 if SMOKE else 8
ROUTES_PER_PEER = 40 if SMOKE else 500
FLAP_COUNT = 2 if SMOKE else 3
ROUNDS = 1 if SMOKE else 3


def _record_flap_stream():
    scenario = production_scenario(
        NODES, peers=2, routes_per_peer=ROUTES_PER_PEER, seed=7
    )
    backend = ModelFreeBackend(
        scenario.topology,
        timers=scaled_timers(ROUTES_PER_PEER),
        quiet_period=30.0,
    )
    context = ScenarioContext(
        name="bench-temporal", injectors=tuple(scenario.injectors)
    )
    backend.run(context)
    deployment = backend.last_run.deployment
    flaps = list(link_flap_scenarios(scenario.topology, hold_seconds=30.0))
    # The off-path link: its churn is small next to the total table, so
    # the apply-vs-rebuild contrast is honest (on-path flaps dirty most
    # of the FIB and legitimately cost close to a rebuild).
    flap = next((f for f in flaps if f.name == "flap:r7-r5"), flaps[-1])
    recorder = CheckpointRecorder(deployment, coalesce=0.0)
    recorder.arm()
    for _ in range(FLAP_COUNT):
        flap.apply(deployment)
        deployment.wait_converged(
            quiet_period=max(30.0, flap.min_quiet_period)
        )
    return recorder.finalize()


def _best_seconds(fn, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_incremental_vs_rebuild_per_checkpoint(benchmark, report):
    # Lift the dirty-fraction gate so every step takes the delta path —
    # the bench measures the patch, not the cost heuristic.
    os.environ["MFV_DELTA_THRESHOLD"] = "1.0"
    try:
        stream = run_once(benchmark, _record_flap_stream)
        incremental_s, incremental = _best_seconds(
            lambda: evaluate_stream(stream, use_delta=True)
        )
        rebuild_s, oracle = _best_seconds(
            lambda: evaluate_stream(stream, use_delta=False)
        )
    finally:
        del os.environ["MFV_DELTA_THRESHOLD"]

    assert incremental.intervals == oracle.intervals
    assert incremental.fallbacks == 0

    speedup = rebuild_s / incremental_s if incremental_s > 0 else float("inf")
    payload = {
        "corpus": f"production-{NODES}x{ROUTES_PER_PEER}",
        "smoke": SMOKE,
        "checkpoints": len(stream),
        "violations": len(incremental.intervals),
        "transient": len(incremental.transient),
        "persistent": len(incremental.persistent),
        "incremental_seconds": incremental_s,
        "rebuild_seconds": rebuild_s,
        "speedup": speedup,
        "intervals": [i.to_dict() for i in incremental.intervals],
    }
    Path("BENCH_temporal.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    report.add(
        "temporal",
        "incremental vs rebuild/checkpoint",
        ">=5x",
        f"{speedup:.1f}x over {len(stream)} checkpoints",
    )
    report.add(
        "temporal",
        "transient intervals (link flap)",
        ">=1",
        str(len(incremental.transient)),
    )

    # A flap on the production corpus always opens at least one
    # transient window that the post-convergence check cannot see.
    assert len(incremental.transient) >= 1
    if SMOKE:
        assert speedup > 1.0
    else:
        assert speedup >= 5.0
