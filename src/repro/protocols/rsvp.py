"""RSVP-TE: PATH/RESV signaling for configured traffic-engineering LSPs.

This implements enough of RFC 3209 to reproduce the paper's §2 vendor
interplay anecdote and to give MPLS-TE configuration real semantics:

* PATH messages routed hop by hop along the head-end's IGP view,
  recording the route (RRO) and installing per-hop soft state;
* RESV messages returning along the recorded route, allocating labels;
* soft-state refresh: the head-end re-sends PATH every
  ``refresh_interval``; every hop expires state after
  ``cleanup_multiplier × advertised refresh interval``;
* PathErr fast failure notification on link-down — unless the vendor
  quirk ``rsvp_suppress_path_err`` is set, in which case the head-end
  only notices a broken LSP when soft state times out. Two well-behaved
  vendors repair an LSP in ~flooding time; mix in the buggy vendor and
  repair degrades to the soft-state timeout — the "very slow
  reconvergence after a major link-cut" interplay the paper describes.

Timers are per-instance (vendor defaults differ), which is exactly what
makes the interplay unobservable in any single reference model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.device.model import DeviceConfig, MplsTunnelConfig
from repro.net.addr import format_ipv4
from repro.protocols.host import Port, RouterHost
from repro.rib.route import NextHop, Protocol, Route

PROTO_KEY = "rsvp"


@dataclass(frozen=True)
class PathMsg:
    """Downstream PATH: sets up per-hop soft state."""
    lsp_id: str
    head_end: str
    destination: int
    refresh_interval: float
    recorded_route: tuple[str, ...]  # node names traversed so far


@dataclass(frozen=True)
class ResvMsg:
    """Upstream RESV: allocates labels along the recorded route."""
    lsp_id: str
    label: int
    recorded_route: tuple[str, ...]
    hop_index: int  # position in recorded_route this message is headed to


@dataclass(frozen=True)
class PathErrMsg:
    """Failure notification toward the head end."""
    lsp_id: str
    reason: str


@dataclass
class PathState:
    """Per-hop soft state for one LSP."""

    lsp_id: str
    in_port: Optional[Port]
    out_port: Optional[Port]
    refresh_interval: float
    in_label: Optional[int] = None
    out_label: Optional[int] = None
    expiry_event: object = None


@dataclass
class TunnelState:
    """Head-end view of one configured tunnel."""

    config: MplsTunnelConfig
    lsp_id: str
    up: bool = False
    signaled_at: float = 0.0
    established_at: Optional[float] = None
    last_resv_at: float = 0.0
    last_repair_time: Optional[float] = None
    resignal_count: int = 0
    current_route: tuple[str, ...] = ()


class RsvpInstance:
    """One router's RSVP-TE process."""

    _ids = itertools.count(1)

    def __init__(
        self,
        host: RouterHost,
        device_config: DeviceConfig,
        *,
        refresh_interval: float = 30.0,
        cleanup_multiplier: float = 3.5,
        suppress_path_err: bool = False,
        install_routes: bool = True,
    ) -> None:
        self.host = host
        self.device_config = device_config
        self.refresh_interval = (
            device_config.mpls.rsvp_refresh_interval or refresh_interval
        )
        self.cleanup_multiplier = cleanup_multiplier
        self.suppress_path_err = suppress_path_err
        self.install_routes = install_routes
        self.tunnels: dict[str, TunnelState] = {}
        self.path_state: dict[str, PathState] = {}
        self._label_counter = itertools.count(16)
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._running = True
        for port in self.host.ports.values():
            port.register(PROTO_KEY, self._on_frame)
            port.on_link_change(self._on_link_change)
        for tunnel_config in self.device_config.mpls.tunnels:
            lsp_id = f"{self.host.name}/{tunnel_config.name}/{next(self._ids)}"
            self.tunnels[lsp_id] = TunnelState(config=tunnel_config, lsp_id=lsp_id)
        # Give the IGP a moment to provide a first path.
        self.host.kernel.schedule(
            self.host.kernel.jitter(1.0, 1.0), self._signal_all, label="rsvp-start"
        )

    def stop(self) -> None:
        self._running = False

    def _signal_all(self) -> None:
        if not self._running:
            return
        for tunnel in self.tunnels.values():
            if not tunnel.up:
                self._signal(tunnel)
        self._schedule_refresh()

    def _schedule_refresh(self) -> None:
        if not self._running or not self.tunnels:
            return
        self.host.kernel.schedule(
            self.host.kernel.jitter(
                self.refresh_interval, self.refresh_interval * 0.1
            ),
            self._refresh_tick,
            label=f"rsvp-refresh:{self.host.name}",
        )

    def _refresh_tick(self) -> None:
        if not self._running:
            return
        timeout = self.cleanup_multiplier * self.refresh_interval
        for tunnel in self.tunnels.values():
            # RESV watchdog: if our refreshes stopped producing RESVs —
            # a downstream hop died without telling us (the quiet-vendor
            # interplay) — declare the LSP dead by soft-state timeout.
            if (
                tunnel.up
                and self.host.kernel.now - tunnel.last_resv_at > timeout
            ):
                self._tunnel_down(tunnel, "resv-timeout")
                continue
            self._signal(tunnel)  # PATH refresh doubles as (re)signaling
        self._schedule_refresh()

    # -- signaling --------------------------------------------------------------

    def _signal(self, tunnel: TunnelState) -> None:
        tunnel.signaled_at = self.host.kernel.now
        message = PathMsg(
            lsp_id=tunnel.lsp_id,
            head_end=self.host.name,
            destination=tunnel.config.destination,
            refresh_interval=self.refresh_interval,
            recorded_route=(self.host.name,),
        )
        self._forward_path(message, in_port=None)

    def _forward_path(self, message: PathMsg, in_port: Optional[Port]) -> None:
        """Install/refresh local state and forward PATH downstream."""
        local = self._owns(message.destination)
        out_port = None if local else self._next_hop_port(message.destination)
        state = self.path_state.get(message.lsp_id)
        if state is None:
            state = PathState(
                lsp_id=message.lsp_id,
                in_port=in_port,
                out_port=out_port,
                refresh_interval=message.refresh_interval,
            )
            self.path_state[message.lsp_id] = state
        else:
            state.in_port = in_port
            state.out_port = out_port
            state.refresh_interval = message.refresh_interval
        self._arm_cleanup(state)
        if local:
            self._reflect_resv(message)
            return
        if out_port is None:
            # No route toward the destination right now. The head end
            # just retries on refresh; a transit hop errors upstream
            # (unless it is the quiet buggy build).
            tunnel = self.tunnels.get(message.lsp_id)
            if tunnel is None and not self.suppress_path_err and in_port is not None:
                in_port.send(PROTO_KEY, PathErrMsg(message.lsp_id, "no-route"))
            return
        out_port.send(PROTO_KEY, message)

    def _reflect_resv(self, message: PathMsg) -> None:
        """Destination reached: send RESV back along the recorded route."""
        label = next(self._label_counter)
        route = message.recorded_route
        if len(route) < 2:
            return  # degenerate tunnel to a direct address of ours
        resv = ResvMsg(
            lsp_id=message.lsp_id,
            label=label,
            recorded_route=route,
            hop_index=len(route) - 2,  # the hop upstream of us
        )
        state = self.path_state.get(message.lsp_id)
        if state is not None:
            state.in_label = label
            if state.in_port is not None:
                state.in_port.send(PROTO_KEY, resv)

    def _on_frame(self, port: Port, payload: object) -> None:
        if not self._running:
            return
        if isinstance(payload, PathMsg):
            if self.host.name in payload.recorded_route:
                # RRO loop prevention (RFC 3209): drop, and tell the
                # previous hop unless this build is the quiet one. A
                # head end seeing its own PATH looped back knows the
                # current path is invalid.
                tunnel = self.tunnels.get(payload.lsp_id)
                if tunnel is not None and tunnel.up:
                    self._tunnel_down(tunnel, "routing-loop")
                elif not self.suppress_path_err:
                    port.send(
                        PROTO_KEY, PathErrMsg(payload.lsp_id, "routing-loop")
                    )
                return
            extended = PathMsg(
                lsp_id=payload.lsp_id,
                head_end=payload.head_end,
                destination=payload.destination,
                refresh_interval=payload.refresh_interval,
                recorded_route=payload.recorded_route + (self.host.name,),
            )
            self._forward_path(extended, in_port=port)
        elif isinstance(payload, ResvMsg):
            self._on_resv(payload)
        elif isinstance(payload, PathErrMsg):
            self._on_path_err(payload)
        self.host.after_protocol_event()

    def _on_resv(self, message: ResvMsg) -> None:
        state = self.path_state.get(message.lsp_id)
        if state is None:
            return
        state.out_label = message.label
        tunnel = self.tunnels.get(message.lsp_id)
        if tunnel is not None and message.hop_index == 0:
            # We are the head end: LSP is up.
            tunnel.last_resv_at = self.host.kernel.now
            was_down = not tunnel.up
            tunnel.up = True
            tunnel.current_route = message.recorded_route
            if was_down:
                if tunnel.established_at is None:
                    tunnel.established_at = self.host.kernel.now
                else:
                    tunnel.last_repair_time = self.host.kernel.now
                tunnel.resignal_count += 1
                self._install_tunnel_route(tunnel)
            return
        state.in_label = next(self._label_counter)
        next_index = message.hop_index - 1
        if next_index < 0 or state.in_port is None:
            return
        state.in_port.send(
            PROTO_KEY,
            ResvMsg(
                lsp_id=message.lsp_id,
                label=state.in_label,
                recorded_route=message.recorded_route,
                hop_index=next_index,
            ),
        )

    # -- failure handling ---------------------------------------------------------

    def _on_link_change(self, port: Port, up: bool) -> None:
        if up or not self._running:
            return
        for state in list(self.path_state.values()):
            if state.out_port is port or state.in_port is port:
                self._fail_state(state, "link-down")

    def _fail_state(self, state: PathState, reason: str) -> None:
        self._remove_state(state)
        tunnel = self.tunnels.get(state.lsp_id)
        if tunnel is not None:
            self._tunnel_down(tunnel, reason)
        elif not self.suppress_path_err and state.in_port is not None:
            state.in_port.send(PROTO_KEY, PathErrMsg(state.lsp_id, reason))
        # A vendor with the quirk stays silent: upstream only finds out
        # when its soft state times out.

    def _on_path_err(self, message: PathErrMsg) -> None:
        state = self.path_state.get(message.lsp_id)
        if state is not None:
            self._remove_state(state)
        tunnel = self.tunnels.get(message.lsp_id)
        if tunnel is not None:
            self._tunnel_down(tunnel, message.reason)
        elif (
            not self.suppress_path_err
            and state is not None
            and state.in_port is not None
        ):
            state.in_port.send(PROTO_KEY, message)

    def _tunnel_down(self, tunnel: TunnelState, reason: str) -> None:
        del reason
        if tunnel.up:
            tunnel.up = False
            self._uninstall_tunnel_route(tunnel)
        # Re-signal promptly; the IGP may already know a new path.
        self.host.kernel.schedule(
            self.host.kernel.jitter(0.5, 0.5),
            lambda: self._signal(tunnel),
            label="rsvp-resignal",
        )

    def _arm_cleanup(self, state: PathState) -> None:
        if state.expiry_event is not None:
            state.expiry_event.cancel()  # type: ignore[attr-defined]
        timeout = self.cleanup_multiplier * state.refresh_interval
        state.expiry_event = self.host.kernel.schedule(
            timeout,
            lambda: self._soft_state_expired(state),
            label=f"rsvp-cleanup:{state.lsp_id}",
        )

    def _soft_state_expired(self, state: PathState) -> None:
        if self.path_state.get(state.lsp_id) is state:
            self._fail_state(state, "soft-state-timeout")
            self.host.after_protocol_event()

    def _remove_state(self, state: PathState) -> None:
        if state.expiry_event is not None:
            state.expiry_event.cancel()  # type: ignore[attr-defined]
        self.path_state.pop(state.lsp_id, None)

    # -- helpers ------------------------------------------------------------------

    def _owns(self, address: int) -> bool:
        return address in set(self.device_config.local_addresses())

    def _next_hop_port(self, destination: int) -> Optional[Port]:
        entry = self.host.rib.fib.lookup(destination)
        if entry is None or not entry.next_hops:
            return None
        port = self.host.ports.get(entry.next_hops[0].interface)
        if port is None or not port.is_up:
            return None
        return port

    def _install_tunnel_route(self, tunnel: TunnelState) -> None:
        if not self.install_routes:
            return
        port = self._next_hop_port(tunnel.config.destination)
        if port is None or port.address is None:
            return
        entry = self.host.rib.fib.lookup(tunnel.config.destination)
        gateway = entry.next_hops[0].ip if entry and entry.next_hops else None
        from repro.net.addr import Prefix

        self.host.rib.install(
            Route(
                prefix=Prefix.containing(tunnel.config.destination, 32),
                protocol=Protocol.RSVP_TE,
                next_hops=(NextHop(ip=gateway, interface=port.name),),
                metric=0,
                source=tunnel.lsp_id,
            )
        )

    def _uninstall_tunnel_route(self, tunnel: TunnelState) -> None:
        if not self.install_routes:
            return
        from repro.net.addr import Prefix

        self.host.rib.withdraw(
            Protocol.RSVP_TE, Prefix.containing(tunnel.config.destination, 32)
        )

    # -- introspection ---------------------------------------------------------------

    def tunnel_summary(self) -> list[dict]:
        rows = []
        for tunnel in self.tunnels.values():
            rows.append(
                {
                    "name": tunnel.config.name,
                    "destination": format_ipv4(tunnel.config.destination),
                    "state": "up" if tunnel.up else "down",
                    "route": " > ".join(tunnel.current_route),
                    "resignals": tunnel.resignal_count,
                }
            )
        return rows
