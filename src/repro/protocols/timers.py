"""Protocol timer profiles.

Two profiles ship by default: ``PRODUCTION_TIMERS`` matches common
real-router defaults and is used for the convergence-time experiments
(the paper's ~3-minute 30-node convergence is a timer phenomenon);
``FAST_TIMERS`` compresses everything for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TimerProfile:
    """All protocol timing knobs in one immutable bundle (seconds)."""

    # IS-IS
    isis_hello: float = 10.0
    isis_hold: float = 30.0
    isis_spf_delay: float = 0.2
    isis_lsp_flood_delay: float = 0.033
    # BGP
    bgp_connect_retry: float = 5.0
    bgp_keepalive: float = 10.0
    bgp_hold: float = 30.0
    bgp_mrai: float = 0.5
    # Per-session UPDATE throughput in routes/second. Scale this down
    # together with synthetic table sizes to keep full-table transfer
    # *times* realistic while simulating fewer route objects.
    bgp_update_rate: float = 30_000.0
    # RSVP-TE
    rsvp_refresh: float = 30.0
    rsvp_cleanup_multiplier: float = 3.5
    # generic message-processing cost per hop
    processing_delay: float = 0.002

    def scaled(self, factor: float) -> "TimerProfile":
        """A uniformly scaled copy (useful for what-if timing studies)."""
        return replace(
            self,
            **{
                name: getattr(self, name) * factor
                for name in (
                    "isis_hello",
                    "isis_hold",
                    "isis_spf_delay",
                    "isis_lsp_flood_delay",
                    "bgp_connect_retry",
                    "bgp_keepalive",
                    "bgp_hold",
                    "bgp_mrai",
                    "rsvp_refresh",
                )
            },
        )


PRODUCTION_TIMERS = TimerProfile()

FAST_TIMERS = TimerProfile(
    isis_hello=0.5,
    isis_hold=1.5,
    isis_spf_delay=0.02,
    isis_lsp_flood_delay=0.005,
    bgp_connect_retry=0.25,
    bgp_keepalive=1.0,
    bgp_hold=3.0,
    bgp_mrai=0.05,
    rsvp_refresh=1.0,
)
