"""Routing protocol engines.

These are *distributed* implementations: each engine instance runs on one
emulated router, exchanges real messages over :mod:`repro.sim` channels,
and installs routes into its router's RIB. Nothing here computes a
network-wide answer directly — global state only emerges from message
exchange, which is the point of model-free verification.
"""

from repro.protocols.host import Port, RouterHost
from repro.protocols.timers import TimerProfile, FAST_TIMERS, PRODUCTION_TIMERS

__all__ = [
    "FAST_TIMERS",
    "PRODUCTION_TIMERS",
    "Port",
    "RouterHost",
    "TimerProfile",
]
