"""Routed control-plane transport interface.

BGP sessions (and anything else TCP-like) ride *on top of* the emulated
dataplane: a message from 10.0.0.1 to 2.2.2.3 is deliverable only if the
current FIBs actually forward it there. The concrete implementation —
:class:`repro.kube.fabric.Fabric` — traces packets hop by hop through
device FIBs; this module only defines the interface protocol engines
depend on, keeping :mod:`repro.protocols` free of orchestration imports.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol as TypingProtocol

# handler(remote_ip, local_ip, payload)
TransportHandler = Callable[[int, int, Any], None]


class ControlTransport(TypingProtocol):
    """Datagram service routed over the emulated dataplane."""

    def register(self, node: str, ip: int, handler: TransportHandler) -> None:
        """Listen for messages addressed to ``ip`` on ``node``."""
        ...

    def unregister(self, node: str, ip: int) -> None:
        ...

    def send(self, src_node: str, src_ip: int, dst_ip: int, payload: Any) -> bool:
        """Attempt delivery; False when no forwarding path exists *now*."""
        ...
