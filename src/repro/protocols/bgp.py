"""BGP-4: sessions, update propagation, and the decision process.

Each :class:`BgpInstance` is one router's BGP process. Sessions run over
the routed :class:`~repro.protocols.transport.ControlTransport`, so iBGP
sessions between loopbacks only come up once the IGP provides
reachability — the emulation reproduces the real control-plane layering
instead of assuming it.

Fidelity notes (deliberate scope):

* grouped UPDATEs with MRAI-style batching (full-table injections stay
  affordable: one attributes object shared across thousands of prefixes);
* hold/keepalive timers and connect retry, so link cuts and session
  shutdowns propagate with realistic detection latency;
* vendor quirk hooks for the two §2 anecdotes — the iBGP IGP-metric
  regression and the crash-on-unusual-advertisement interop bug.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.device.model import BgpConfig, BgpNeighborConfig, DeviceConfig
from repro.device.routing_policy import MatchResult
from repro.net.addr import Prefix, format_ipv4
from repro.obs import bus
from repro.protocols.bgp_attrs import (
    BgpPath,
    Origin,
    PathAttributes,
    best_path,
    intern_attrs,
    multipath_set,
)
from repro.protocols.host import RouterHost
from repro.protocols.timers import TimerProfile
from repro.protocols.transport import ControlTransport
from repro.rib.route import NextHop, Protocol, Route


# -- messages ----------------------------------------------------------------


@dataclass(frozen=True)
class Open:
    """Session OPEN: who we are and our hold time."""
    asn: int
    router_id: int
    hold_time: float


@dataclass(frozen=True)
class Keepalive:
    """Hold-timer refresh."""
    pass


@dataclass(frozen=True)
class Update:
    """Announcements grouped by shared attribute bundle.

    ``wire_cost`` is the transmission/processing time of the message on
    its session, set by the sender from its
    :attr:`~repro.protocols.timers.TimerProfile.bgp_update_rate`; the
    fabric serializes messages per flow, so full-table convergence time
    is dominated by this term — matching the paper's minutes-scale
    convergence with millions of injected routes.
    """

    announce: tuple[tuple[PathAttributes, tuple[Prefix, ...]], ...] = ()
    withdraw: tuple[Prefix, ...] = ()
    wire_cost: float = 0.0

    @property
    def route_count(self) -> int:
        return sum(len(p) for _, p in self.announce) + len(self.withdraw)


@dataclass(frozen=True)
class Notification:
    """Fatal session error; receiver tears down."""
    code: str


def max_routes_per_update(timers: TimerProfile) -> int:
    """Largest UPDATE a sender emits, in routes.

    Sized so one message occupies the (serialized) session for at most
    one keepalive interval — real UPDATEs are small and stream
    continuously, so the peer's hold timer keeps seeing traffic during a
    full-table transfer.
    """
    return max(1, int(timers.bgp_update_rate * timers.bgp_keepalive))


class SessionState(enum.Enum):
    """Simplified BGP FSM states."""
    IDLE = "idle"
    CONNECT = "connect"
    ESTABLISHED = "established"


@dataclass
class SessionStats:
    """Per-session counters (CLI and tests read these)."""
    updates_sent: int = 0
    updates_received: int = 0
    prefixes_received: int = 0
    resets: int = 0
    established_at: Optional[float] = None


class Session:
    """One configured neighbor relationship (our side)."""

    def __init__(
        self,
        instance: "BgpInstance",
        neighbor: BgpNeighborConfig,
        local_ip: int,
    ) -> None:
        self.instance = instance
        self.neighbor = neighbor
        self.local_ip = local_ip
        self.peer_ip = neighbor.peer_address
        self.state = SessionState.IDLE
        self.peer_router_id = 0
        self.stats = SessionStats()
        self._hold_event: Any = None
        self._connect_event: Any = None
        self._pending: dict[Prefix, Optional[PathAttributes]] = {}
        self._flush_scheduled = False
        self._stopped = False

    @property
    def is_ebgp(self) -> bool:
        return self.neighbor.remote_as != self.instance.config.asn

    @property
    def is_established(self) -> bool:
        return self.state is SessionState.ESTABLISHED

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self.neighbor.shutdown:
            return
        self.state = SessionState.CONNECT
        self._attempt_connect()

    def stop(self) -> None:
        self._stopped = True
        self._go_idle(reset_stats=False)

    def _attempt_connect(self) -> None:
        self._connect_event = None
        if self._stopped or self.state is SessionState.ESTABLISHED:
            return
        sent = self.instance.send_to(
            self, Open(self.instance.config.asn, self.instance.router_id,
                       self.instance.timers.bgp_hold)
        )
        self._schedule_connect_retry()
        del sent  # lost OPENs are retried regardless

    def _schedule_connect_retry(self, *, backoff: float = 1.0) -> None:
        """Arm the (single) connect-retry timer if not already armed."""
        if self._connect_event is not None:
            return
        retry = self.instance.timers.bgp_connect_retry * backoff
        delay = self.instance.host.kernel.jitter(retry, retry * 0.5)
        self._connect_event = self.instance.host.kernel.schedule(
            delay, self._attempt_connect, label=f"bgp-connect:{self}"
        )

    # -- message handling -----------------------------------------------------

    def handle(self, payload: Any) -> None:
        if self._stopped:
            return
        self._reset_hold_timer()
        if isinstance(payload, Open):
            self._on_open(payload)
        elif isinstance(payload, Update):
            self._on_update(payload)
        elif isinstance(payload, Notification):
            self._session_down(f"notification:{payload.code}")
        elif isinstance(payload, Keepalive):
            if self.state is SessionState.CONNECT:
                if self.peer_router_id:
                    # We validated their OPEN this round; the keepalive
                    # confirms they accepted ours.
                    self._establish()
                else:
                    # The peer thinks the session is up but we never saw
                    # its OPEN (lost during transient unreachability).
                    # Standard FSM behaviour: error out so both sides
                    # restart cleanly and resynchronize.
                    self.instance.send_to(self, Notification("fsm-error"))

    def _on_open(self, message: Open) -> None:
        if message.asn != self.neighbor.remote_as:
            self.instance.send_to(self, Notification("bad-peer-as"))
            return
        self.peer_router_id = message.router_id
        if self.state is SessionState.ESTABLISHED:
            # Stray/retransmitted OPEN: acknowledge without sending an
            # OPEN back (two established peers answering OPEN with OPEN
            # would ping-pong forever). If the peer is genuinely out of
            # sync it will FSM-error us and both sides restart.
            self.instance.send_to(self, Keepalive())
            return
        self.instance.send_to(
            self, Open(self.instance.config.asn, self.instance.router_id,
                       self.instance.timers.bgp_hold)
        )
        self.instance.send_to(self, Keepalive())
        self._establish()

    def _establish(self) -> None:
        self.state = SessionState.ESTABLISHED
        self.stats.established_at = self.instance.host.kernel.now
        collector = bus.ACTIVE
        if collector.enabled:
            collector.emit(
                "bgp.session.up",
                self.instance.host.kernel.now,
                node=self.instance.host.name,
                peer=format_ipv4(self.peer_ip),
                ebgp=self.is_ebgp,
            )
        self._schedule_keepalive()
        self.instance.on_session_established(self)

    def _on_update(self, message: Update) -> None:
        if self.state is SessionState.CONNECT:
            if self.peer_router_id:
                # Data from a validated peer implies it considers the
                # session up (our copy of its confirmation was lost).
                self._establish()
            else:
                self.instance.send_to(self, Notification("fsm-error"))
                return
        if self.state is not SessionState.ESTABLISHED:
            return
        self.stats.updates_received += 1
        crash_at = self.instance.quirk_crash_on_many_communities
        if crash_at is not None:
            for attrs, _prefixes in message.announce:
                if len(attrs.communities) >= crash_at:
                    # The §2 interop anecdote: an unusual-but-valid
                    # advertisement crashes this vendor's parser.
                    self.instance.crash_count += 1
                    self.instance.send_to(self, Notification("update-malformed"))
                    self._session_down("parser-crash")
                    return
        self.instance.receive_update(self, message)

    # -- timers ----------------------------------------------------------------

    def _reset_hold_timer(self) -> None:
        if self._hold_event is not None:
            self._hold_event.cancel()
        self._hold_event = self.instance.host.kernel.schedule(
            self.instance.timers.bgp_hold,
            lambda: self._session_down("hold-timer-expired"),
            label=f"bgp-hold:{self}",
        )

    def _schedule_keepalive(self) -> None:
        if self._stopped or self.state is not SessionState.ESTABLISHED:
            return
        interval = self.instance.timers.bgp_keepalive
        self.instance.host.kernel.schedule(
            self.instance.host.kernel.jitter(interval, interval * 0.1),
            self._keepalive_tick,
            label=f"bgp-keepalive:{self}",
        )

    def _keepalive_tick(self) -> None:
        if self.state is SessionState.ESTABLISHED and not self._stopped:
            self.instance.send_to(self, Keepalive())
            self._schedule_keepalive()

    def _session_down(self, reason: str) -> None:
        if self.state is SessionState.IDLE:
            return
        self.stats.resets += 1
        collector = bus.ACTIVE
        if collector.enabled:
            collector.emit(
                "bgp.session.down",
                self.instance.host.kernel.now,
                node=self.instance.host.name,
                peer=format_ipv4(self.peer_ip),
                reason=reason,
            )
        self._go_idle(reset_stats=False)
        self.instance.on_session_down(self, reason)
        if not self._stopped:
            self.state = SessionState.CONNECT
            # Back off harder after a failure so a persistently broken
            # peering (bad AS, crashing parser) doesn't storm the wire.
            self._schedule_connect_retry(backoff=4.0)

    def _go_idle(self, *, reset_stats: bool) -> None:
        self.state = SessionState.IDLE
        # "Validated an OPEN" is a per-attempt fact.
        self.peer_router_id = 0
        if self._hold_event is not None:
            self._hold_event.cancel()
            self._hold_event = None
        self._pending.clear()
        self._flush_scheduled = False
        if reset_stats:
            self.stats = SessionStats()

    # -- sending ---------------------------------------------------------------

    def enqueue(self, prefix: Prefix, attrs: Optional[PathAttributes]) -> None:
        """Queue an announcement (or withdrawal when attrs is None)."""
        if self.state is not SessionState.ESTABLISHED:
            return
        self._pending[prefix] = attrs
        if not self._flush_scheduled:
            self._flush_scheduled = True
            mrai = self.instance.timers.bgp_mrai
            self.instance.host.kernel.schedule(
                self.instance.host.kernel.jitter(mrai, mrai * 0.5),
                self._flush,
                label=f"bgp-mrai:{self}",
            )

    def _flush(self) -> None:
        self._flush_scheduled = False
        if self.state is not SessionState.ESTABLISHED or not self._pending:
            self._pending.clear()
            return
        by_attrs: dict[PathAttributes, list[Prefix]] = {}
        withdraw: list[Prefix] = []
        for prefix, attrs in self._pending.items():
            if attrs is None:
                withdraw.append(prefix)
            else:
                by_attrs.setdefault(attrs, []).append(prefix)
        self._pending.clear()
        rate = self.instance.timers.bgp_update_rate
        chunk = max_routes_per_update(self.instance.timers)
        collector = bus.ACTIVE
        if withdraw:
            for offset in range(0, len(withdraw), chunk):
                piece = tuple(withdraw[offset : offset + chunk])
                self.stats.updates_sent += 1
                if collector.enabled:
                    collector.count("bgp.update.sent")
                    collector.count("bgp.prefixes.sent", len(piece))
                self.instance.send_to(
                    self, Update(withdraw=piece, wire_cost=len(piece) / rate)
                )
        for attrs, prefixes in by_attrs.items():
            for offset in range(0, len(prefixes), chunk):
                piece = tuple(prefixes[offset : offset + chunk])
                self.stats.updates_sent += 1
                if collector.enabled:
                    collector.count("bgp.update.sent")
                    collector.count("bgp.prefixes.sent", len(piece))
                self.instance.send_to(
                    self,
                    Update(
                        announce=((attrs, piece),),
                        wire_cost=len(piece) / rate,
                    ),
                )

    def __str__(self) -> str:
        return f"{self.instance.host.name}->{format_ipv4(self.peer_ip)}"


class BgpInstance:
    """One router's BGP process."""

    def __init__(
        self,
        host: RouterHost,
        device_config: DeviceConfig,
        timers: TimerProfile,
        transport: ControlTransport,
        *,
        prefer_higher_igp_metric: bool = False,
        crash_on_many_communities: Optional[int] = None,
    ) -> None:
        if device_config.bgp is None:
            raise ValueError("device has no BGP configuration")
        self.host = host
        self.device_config = device_config
        self.config: BgpConfig = device_config.bgp
        self.timers = timers
        self.transport = transport
        self.quirk_prefer_higher_igp_metric = prefer_higher_igp_metric
        self.quirk_crash_on_many_communities = crash_on_many_communities
        self.crash_count = 0
        self.router_id = self.config.router_id or self._derive_router_id()
        self.sessions: dict[int, Session] = {}
        # peer ip -> prefix -> interned attrs
        self.adj_rib_in: dict[int, dict[Prefix, PathAttributes]] = {}
        self.local_rib: dict[Prefix, BgpPath] = {}
        # ECMP companions of the best path (maximum-paths > 1).
        self.multipath: dict[Prefix, tuple[BgpPath, ...]] = {}
        self.locally_originated: dict[Prefix, PathAttributes] = {}
        self._registered_ips: set[int] = set()
        self._igp_refresh_scheduled = False
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._running = True
        self._refresh_originations()
        for neighbor in self.config.neighbors.values():
            local_ip = self._session_source(neighbor)
            if local_ip is None:
                continue
            session = Session(self, neighbor, local_ip)
            self.sessions[neighbor.peer_address] = session
            if local_ip not in self._registered_ips:
                self.transport.register(self.host.name, local_ip, self._on_datagram)
                self._registered_ips.add(local_ip)
            session.start()

    def stop(self) -> None:
        self._running = False
        for session in self.sessions.values():
            session.stop()

    def _derive_router_id(self) -> int:
        loopback = self.device_config.loopback_address()
        if loopback is not None:
            return loopback
        addresses = self.device_config.local_addresses()
        return max(addresses) if addresses else 1

    def _session_source(self, neighbor: BgpNeighborConfig) -> Optional[int]:
        if neighbor.update_source is not None:
            iface = self.device_config.interfaces.get(neighbor.update_source)
            if iface is not None and iface.address is not None:
                return iface.address
            return None
        # Prefer the interface sharing a subnet with the peer.
        for iface in self.device_config.routed_interfaces():
            prefix = iface.connected_prefix()
            if prefix is not None and prefix.contains(neighbor.peer_address):
                return iface.address
        return self.device_config.loopback_address()

    # -- transport ----------------------------------------------------------

    def _on_datagram(self, remote_ip: int, local_ip: int, payload: Any) -> None:
        session = self.sessions.get(remote_ip)
        if session is None or session.local_ip != local_ip:
            return
        session.handle(payload)
        self.host.after_protocol_event()

    def send_to(self, session: Session, payload: Any) -> bool:
        return self.transport.send(
            self.host.name, session.local_ip, session.peer_ip, payload
        )

    # -- origination -----------------------------------------------------------

    def _refresh_originations(self) -> None:
        """(Re)compute locally originated prefixes from config + RIB."""
        fresh: dict[Prefix, PathAttributes] = {}
        base = PathAttributes(next_hop=0, origin=Origin.IGP)
        for prefix in self.config.networks:
            if self._rib_has(prefix):
                fresh[prefix] = intern_attrs(base)
        if self.config.redistribute_connected:
            for iface in self.device_config.routed_interfaces():
                connected = iface.connected_prefix()
                if connected is not None:
                    fresh[connected] = intern_attrs(
                        replace(base, origin=Origin.INCOMPLETE)
                    )
        if self.config.redistribute_isis:
            for route in self.host.rib.best_routes():
                if route.protocol is Protocol.ISIS:
                    fresh[route.prefix] = intern_attrs(
                        replace(base, origin=Origin.INCOMPLETE, med=route.metric)
                    )
        if fresh != self.locally_originated:
            changed = set(fresh) ^ set(self.locally_originated)
            changed |= {
                p
                for p in set(fresh) & set(self.locally_originated)
                if fresh[p] != self.locally_originated[p]
            }
            self.locally_originated = fresh
            self._decide(changed)

    def _rib_has(self, prefix: Prefix) -> bool:
        best = self.host.rib.best(prefix)
        return best is not None and best.protocol not in (
            Protocol.BGP_EXTERNAL,
            Protocol.BGP_INTERNAL,
        )

    # -- update processing ------------------------------------------------------

    def receive_update(self, session: Session, update: Update) -> None:
        collector = bus.ACTIVE
        if collector.enabled:
            collector.count("bgp.update.received")
            collector.count("bgp.prefixes.received", update.route_count)
        rib_in = self.adj_rib_in.setdefault(session.peer_ip, {})
        touched: set[Prefix] = set()
        for attrs, prefixes in update.announce:
            if session.is_ebgp and self.config.asn in attrs.as_path:
                continue  # loop prevention
            imported = self._apply_import_policy(session, attrs, prefixes)
            for prefix, final_attrs in imported:
                rib_in[prefix] = final_attrs
                touched.add(prefix)
            session.stats.prefixes_received += len(imported)
        for prefix in update.withdraw:
            if rib_in.pop(prefix, None) is not None:
                touched.add(prefix)
        if touched:
            self._decide(touched)

    def _apply_import_policy(
        self,
        session: Session,
        attrs: PathAttributes,
        prefixes: tuple[Prefix, ...],
    ) -> list[tuple[Prefix, PathAttributes]]:
        route_map_name = session.neighbor.route_map_in
        out: list[tuple[Prefix, PathAttributes]] = []
        for prefix in prefixes:
            final = attrs
            if route_map_name is not None:
                route_map = self.device_config.route_maps.get(route_map_name)
                if route_map is None:
                    continue  # undefined map: deny (EOS behaviour)
                verdict, final = route_map.evaluate(
                    prefix, attrs, self.device_config.prefix_lists
                )
                if verdict is not MatchResult.PERMIT:
                    continue
            out.append((prefix, intern_attrs(final)))
        return out

    # -- decision process ---------------------------------------------------------

    def _igp_metric(self, next_hop: int) -> Optional[int]:
        if next_hop == 0:
            return 0
        route = self.host.rib.longest_match(next_hop)
        if route is None:
            return None
        if route.protocol in (Protocol.BGP_EXTERNAL, Protocol.BGP_INTERNAL):
            return None  # next hop must resolve via IGP/connected/static
        return route.metric

    def _decide(self, prefixes: set[Prefix]) -> None:
        changed: list[tuple[Prefix, Optional[BgpPath], Optional[BgpPath]]] = []
        for prefix in prefixes:
            paths: list[BgpPath] = []
            local_attrs = self.locally_originated.get(prefix)
            if local_attrs is not None:
                paths.append(
                    BgpPath(
                        attrs=local_attrs,
                        from_ebgp=False,
                        peer_ip=0,
                        peer_router_id=self.router_id,
                        is_local=True,
                    )
                )
            for peer_ip, rib_in in self.adj_rib_in.items():
                attrs = rib_in.get(prefix)
                if attrs is None:
                    continue
                session = self.sessions.get(peer_ip)
                if session is None or not session.is_established:
                    continue
                paths.append(
                    BgpPath(
                        attrs=attrs,
                        from_ebgp=session.is_ebgp,
                        peer_ip=peer_ip,
                        peer_router_id=session.peer_router_id,
                    )
                )
            chosen = multipath_set(
                paths,
                self._igp_metric,
                maximum_paths=self.config.maximum_paths,
                prefer_higher_igp_metric=self.quirk_prefer_higher_igp_metric,
            )
            new_best = chosen[0] if chosen else None
            new_set = tuple(chosen)
            old_best = self.local_rib.get(prefix)
            old_set = self.multipath.get(prefix, ())
            if new_best == old_best and new_set == old_set:
                continue
            if new_best is None:
                self.local_rib.pop(prefix, None)
                self.multipath.pop(prefix, None)
            else:
                self.local_rib[prefix] = new_best
                self.multipath[prefix] = new_set
            self._program_rib(prefix, new_set)
            if new_best != old_best:
                changed.append((prefix, old_best, new_best))
        for prefix, old_best, new_best in changed:
            self._advertise_change(prefix, old_best, new_best)

    def _program_rib(
        self, prefix: Prefix, chosen: tuple[BgpPath, ...]
    ) -> None:
        self.host.rib.withdraw(Protocol.BGP_EXTERNAL, prefix)
        self.host.rib.withdraw(Protocol.BGP_INTERNAL, prefix)
        installable = [p for p in chosen if not p.is_local]
        if not chosen or chosen[0].is_local or not installable:
            return
        best = chosen[0]
        protocol = (
            Protocol.BGP_EXTERNAL if best.from_ebgp else Protocol.BGP_INTERNAL
        )
        next_hops = tuple(
            dict.fromkeys(NextHop(ip=p.attrs.next_hop) for p in installable)
        )
        self.host.rib.install(
            Route(
                prefix=prefix,
                protocol=protocol,
                next_hops=next_hops,
                metric=best.attrs.med,
                source=best,
            )
        )

    # -- advertisement --------------------------------------------------------------

    def _advertise_change(
        self,
        prefix: Prefix,
        old_best: Optional[BgpPath],
        new_best: Optional[BgpPath],
    ) -> None:
        del old_best
        for session in self.sessions.values():
            if not session.is_established:
                continue
            exported = (
                None
                if new_best is None
                else self._export(session, prefix, new_best)
            )
            session.enqueue(prefix, exported)

    def _export(
        self, session: Session, prefix: Prefix, path: BgpPath
    ) -> Optional[PathAttributes]:
        if not path.is_local and path.peer_ip == session.peer_ip:
            return None  # never back to the sender
        if not session.is_ebgp and not path.from_ebgp and not path.is_local:
            # iBGP-learned goes to iBGP peers only via route reflection:
            # reflect client routes to everyone, non-client routes to
            # clients. (Tree-shaped clusters assumed; no CLUSTER_LIST.)
            source = self.sessions.get(path.peer_ip)
            source_is_client = (
                source is not None
                and source.neighbor.route_reflector_client
            )
            if not (source_is_client or session.neighbor.route_reflector_client):
                return None
        attrs = path.attrs
        if session.is_ebgp:
            attrs = replace(
                attrs,
                as_path=(self.config.asn,) + attrs.as_path,
                next_hop=session.local_ip,
                local_pref=None,
                med=0,
            )
        else:
            updated = {}
            if session.neighbor.next_hop_self or attrs.next_hop == 0:
                updated["next_hop"] = session.local_ip
            if attrs.local_pref is None:
                updated["local_pref"] = 100
            if updated:
                attrs = replace(attrs, **updated)
        # Outbound policy runs on the rewritten advertisement, so a
        # `set metric` / prepend in the map is what the peer sees.
        if session.neighbor.route_map_out is not None:
            route_map = self.device_config.route_maps.get(
                session.neighbor.route_map_out
            )
            if route_map is None:
                return None
            verdict, attrs = route_map.evaluate(
                prefix, attrs, self.device_config.prefix_lists
            )
            if verdict is not MatchResult.PERMIT:
                return None
        if not session.neighbor.send_community and attrs.communities:
            attrs = replace(attrs, communities=())
        return intern_attrs(attrs)

    def full_advertisement(self, session: Session) -> None:
        """Send everything exportable to a newly established session."""
        for prefix, attrs in self.locally_originated.items():
            path = BgpPath(
                attrs=attrs,
                from_ebgp=False,
                peer_ip=0,
                peer_router_id=self.router_id,
                is_local=True,
            )
            exported = self._export(session, prefix, path)
            if exported is not None:
                session.enqueue(prefix, exported)
        for prefix, path in self.local_rib.items():
            if path.is_local:
                continue
            exported = self._export(session, prefix, path)
            if exported is not None:
                session.enqueue(prefix, exported)

    # -- events from sessions / host -------------------------------------------------

    def on_session_established(self, session: Session) -> None:
        self.full_advertisement(session)

    def on_session_down(self, session: Session, reason: str) -> None:
        del reason
        rib_in = self.adj_rib_in.pop(session.peer_ip, None)
        if rib_in:
            self._decide(set(rib_in))
        self.host.after_protocol_event()

    def on_igp_change(self) -> None:
        """IGP layer changed: re-check originations and next-hop metrics.

        Coalesced (next-hop-tracking style) to avoid a full decision pass
        per LSP during initial flooding.
        """
        if self._igp_refresh_scheduled or not self._running:
            return
        self._igp_refresh_scheduled = True
        self.host.kernel.schedule(
            self.host.kernel.jitter(0.5, 0.5),
            self._igp_refresh,
            label=f"bgp-nht:{self.host.name}",
        )

    def _igp_refresh(self) -> None:
        self._igp_refresh_scheduled = False
        if not self._running:
            return
        self._refresh_originations()
        affected: set[Prefix] = set(self.local_rib)
        for rib_in in self.adj_rib_in.values():
            affected.update(rib_in)
        if affected:
            self._decide(affected)
        self.host.after_protocol_event()

    # -- introspection ------------------------------------------------------------

    def summary(self) -> list[dict]:
        rows = []
        for peer_ip, session in sorted(self.sessions.items()):
            rows.append(
                {
                    "neighbor": format_ipv4(peer_ip),
                    "remote_as": session.neighbor.remote_as,
                    "state": session.state.value,
                    "prefixes_received": len(self.adj_rib_in.get(peer_ip, {})),
                    "resets": session.stats.resets,
                }
            )
        return rows
