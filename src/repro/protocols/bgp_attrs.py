"""BGP path attributes and the decision process.

``PathAttributes`` is immutable and widely shared: a full-table peer
announces hundreds of thousands of prefixes under a handful of distinct
attribute bundles, so Adj-RIBs store one attributes object per bundle
(interning keeps million-route injections affordable).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.device.routing_policy import Community
from repro.net.addr import format_ipv4


class Origin(enum.IntEnum):
    """BGP ORIGIN attribute (lower wins)."""
    IGP = 0
    EGP = 1
    INCOMPLETE = 2


@dataclass(frozen=True)
class PathAttributes:
    """The attribute bundle carried in an UPDATE."""

    next_hop: int
    as_path: tuple[int, ...] = ()
    origin: Origin = Origin.IGP
    med: int = 0
    local_pref: Optional[int] = None
    communities: tuple[Community, ...] = ()

    @property
    def effective_local_pref(self) -> int:
        return self.local_pref if self.local_pref is not None else 100

    @property
    def first_as(self) -> Optional[int]:
        return self.as_path[0] if self.as_path else None

    def __str__(self) -> str:
        path = " ".join(str(asn) for asn in self.as_path) or "(local)"
        return f"nh={format_ipv4(self.next_hop)} path=[{path}] lp={self.effective_local_pref}"


_INTERN: dict[PathAttributes, PathAttributes] = {}


def intern_attrs(attrs: PathAttributes) -> PathAttributes:
    """Return a canonical shared instance of ``attrs``."""
    return _INTERN.setdefault(attrs, attrs)


@dataclass(frozen=True)
class BgpPath:
    """One candidate path for a prefix as seen by the decision process."""

    attrs: PathAttributes
    from_ebgp: bool
    peer_ip: int  # 0 for locally originated
    peer_router_id: int
    is_local: bool = False

    def __str__(self) -> str:
        kind = "local" if self.is_local else ("eBGP" if self.from_ebgp else "iBGP")
        return f"{kind} {self.attrs} from {format_ipv4(self.peer_ip)}"


def best_path(
    paths: list[BgpPath],
    igp_metric: Callable[[int], Optional[int]],
    *,
    prefer_higher_igp_metric: bool = False,
) -> Optional[BgpPath]:
    """The standard BGP decision process.

    ``igp_metric`` maps a next-hop address to the IGP cost of reaching
    it (None = unreachable; such paths are ineligible).

    ``prefer_higher_igp_metric`` models the vendor regression described
    in the paper's §2 ("a new software version that introduced an
    incorrect route metric selection in iBGP"): when enabled, the IGP
    tiebreak prefers the *farther* next hop.
    """
    eligible = []
    for path in paths:
        if path.is_local:
            eligible.append((path, 0))
            continue
        metric = igp_metric(path.attrs.next_hop)
        if metric is None:
            continue
        eligible.append((path, metric))
    if not eligible:
        return None

    def ranking(item: tuple[BgpPath, int]):
        path, metric = item
        attrs = path.attrs
        med_key = (attrs.first_as, attrs.med)
        igp_key = -metric if prefer_higher_igp_metric else metric
        return (
            -attrs.effective_local_pref,  # 1. higher local-pref
            not path.is_local,  # 2. locally originated first
            len(attrs.as_path),  # 3. shorter AS path
            int(attrs.origin),  # 4. lower origin
            med_key,  # 5. lower MED (grouped by first AS)
            not path.from_ebgp,  # 6. eBGP over iBGP
            igp_key,  # 7. nearer IGP next hop
            path.peer_router_id,  # 8. lower router-id
            path.peer_ip,  # 9. lower peer address
            # Deterministic total order even for synthetic path sets
            # that share peer identifiers (real sessions never do):
            attrs.as_path,
            attrs.next_hop,
            attrs.communities,
        )

    return min(eligible, key=ranking)[0]


def multipath_set(
    paths: list[BgpPath],
    igp_metric: Callable[[int], Optional[int]],
    *,
    maximum_paths: int = 1,
    prefer_higher_igp_metric: bool = False,
) -> list[BgpPath]:
    """The best path plus its ECMP-eligible equals.

    Standard BGP multipath rules: candidates must tie with the best
    path on every step up to and including the IGP metric (router-id
    and peer address are ignored), share the eBGP/iBGP type, and have
    equal-length AS paths. Returns at most ``maximum_paths`` entries,
    best path first.
    """
    best = best_path(
        paths, igp_metric, prefer_higher_igp_metric=prefer_higher_igp_metric
    )
    if best is None:
        return []
    if maximum_paths <= 1:
        return [best]

    def key(path: BgpPath):
        metric = 0 if path.is_local else igp_metric(path.attrs.next_hop)
        return (
            path.attrs.effective_local_pref,
            path.is_local,
            len(path.attrs.as_path),
            int(path.attrs.origin),
            path.attrs.first_as,
            path.attrs.med,
            path.from_ebgp,
            metric,
        )

    best_key = key(best)
    equals = [best]
    for path in paths:
        if path is best or len(equals) >= maximum_paths:
            continue
        if path.is_local:
            continue
        if igp_metric(path.attrs.next_hop) is None:
            continue
        if key(path) == best_key:
            equals.append(path)
    return equals
