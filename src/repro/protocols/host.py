"""The surface a router OS exposes to its protocol engines.

:class:`Port` is the runtime state of one interface: configuration plus
the outgoing :class:`~repro.sim.channel.Channel` of the virtual wire it
is plugged into. Incoming frames are dispatched to protocol handlers by
a protocol key carried on each frame (the stand-in for an EtherType /
IP-protocol demux).

:class:`RouterHost` is the duck type protocol engines program against;
:class:`repro.vendors.base.RouterOS` implements it. Keeping it here
avoids a circular import between protocols and vendors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Protocol as TypingProtocol

from repro.device.interfaces import InterfaceConfig
from repro.net.addr import Prefix
from repro.rib.rib import Rib
from repro.sim.channel import Channel
from repro.sim.kernel import SimKernel


@dataclass(frozen=True)
class Frame:
    """A link-layer frame: protocol demux key plus payload."""

    protocol: str
    payload: Any


class Port:
    """Runtime state of one interface."""

    def __init__(self, config: InterfaceConfig) -> None:
        self.config = config
        self.channel: Optional[Channel] = None
        self.link_up = False
        # Carrier forced up without a modeled wire — used for edge ports
        # facing external endpoints (route injectors) that attach
        # through the fabric rather than a point-to-point channel.
        self.forced_up = False
        self._handlers: dict[str, Callable[["Port", Any], None]] = {}
        self._link_listeners: list[Callable[[Port, bool], None]] = []

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def is_up(self) -> bool:
        """Usable for traffic: wired, carrier up, not shut down."""
        if self.config.shutdown:
            return False
        if self.config.is_loopback:
            return True
        if self.forced_up:
            return True
        return self.channel is not None and self.link_up

    @property
    def address(self) -> Optional[int]:
        return self.config.address if self.config.is_routed else None

    def connected_prefix(self) -> Optional[Prefix]:
        return self.config.connected_prefix()

    # -- wiring ----------------------------------------------------------

    def attach(self, channel: Channel) -> None:
        self.channel = channel
        self.link_up = True

    def set_link_state(self, up: bool) -> None:
        if up == self.link_up:
            return
        self.link_up = up
        for listener in list(self._link_listeners):
            listener(self, up)

    def on_link_change(self, listener: Callable[["Port", bool], None]) -> None:
        self._link_listeners.append(listener)

    # -- I/O ---------------------------------------------------------------

    def register(
        self, protocol: str, handler: Callable[["Port", Any], None]
    ) -> None:
        self._handlers[protocol] = handler

    def send(self, protocol: str, payload: Any) -> None:
        """Transmit a frame out this port (dropped if the port is down)."""
        if self.channel is not None and self.is_up:
            self.channel.send(Frame(protocol, payload))

    def receive(self, frame: Frame) -> None:
        if not self.is_up:
            return
        handler = self._handlers.get(frame.protocol)
        if handler is not None:
            handler(self, frame.payload)

    def __repr__(self) -> str:
        state = "up" if self.is_up else "down"
        return f"Port({self.name!r}, {state})"


class RouterHost(TypingProtocol):
    """What protocol engines may assume about the device they run on."""

    name: str
    kernel: SimKernel
    rib: Rib
    ports: dict[str, Port]

    def routed_ports(self) -> list[Port]:
        """Ports that are up and have an IP address."""
        ...

    def after_protocol_event(self) -> None:
        """Commit RIB changes and refresh derived state (AFTs)."""
        ...
