"""IS-IS: hello adjacencies, LSP flooding, and SPF.

A deliberately real (if compact) link-state implementation:

* periodic hellos per enabled non-passive interface, with hold-timer
  expiry tearing adjacencies down;
* link-state PDUs with sequence numbers, flooded hop by hop;
* delayed, coalesced SPF runs (Dijkstra over the LSDB with the standard
  two-way connectivity check) installing ECMP routes into the RIB.

Convergence therefore emerges from message exchange and timers, not from
a global computation — which is what lets the emulation exhibit effects
(ordering, partial convergence, hold-time-bounded failure detection)
that hand-written models abstract away.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.device.model import DeviceConfig, IsisConfig
from repro.net.addr import Prefix
from repro.obs import bus
from repro.protocols.host import Port, RouterHost
from repro.protocols.timers import TimerProfile
from repro.rib.route import NextHop, Protocol, Route

PROTO_KEY = "isis"


@dataclass(frozen=True)
class Hello:
    """IIH PDU (point-to-point)."""

    system_id: str
    source_ip: Optional[int]
    hold_time: float


@dataclass(frozen=True)
class Lsp:
    """A link-state PDU."""

    system_id: str
    sequence: int
    neighbors: tuple[tuple[str, int], ...]  # (neighbor system-id, metric)
    prefixes: tuple[tuple[Prefix, int], ...]  # (prefix, metric)

    def is_newer_than(self, other: Optional["Lsp"]) -> bool:
        return other is None or self.sequence > other.sequence


@dataclass
class Adjacency:
    """An up neighbor on one interface."""

    system_id: str
    neighbor_ip: Optional[int]
    port: Port
    metric: int
    hold_time: float
    expires_at: float = 0.0
    expiry_event: object = None


class IsisInstance:
    """One router's IS-IS process."""

    def __init__(
        self,
        host: RouterHost,
        device_config: DeviceConfig,
        timers: TimerProfile,
    ) -> None:
        if device_config.isis is None:
            raise ValueError("device has no IS-IS configuration")
        self.host = host
        self.config: IsisConfig = device_config.isis
        self.device_config = device_config
        self.timers = timers
        self.system_id = self.config.system_id or host.name
        self.lsdb: dict[str, Lsp] = {}
        self.adjacencies: dict[str, Adjacency] = {}
        self._sequence = 0
        self._spf_scheduled = False
        self._installed: set[Prefix] = set()
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin sending hellos and originate the initial LSP."""
        self._running = True
        for port in self._active_ports(include_passive=False):
            port.register(PROTO_KEY, self._on_frame)
            port.on_link_change(self._on_link_change)
            self._schedule_hello(port, initial=True)
        self._originate()
        self._schedule_spf()

    def stop(self) -> None:
        self._running = False

    def _active_ports(self, *, include_passive: bool) -> list[Port]:
        """Ports with IS-IS enabled for this instance tag."""
        out = []
        for port in self.host.ports.values():
            settings = port.config.isis
            if settings is None or not settings.enabled:
                continue
            if settings.tag != self.config.tag:
                continue
            if not port.config.is_routed:
                continue
            passive = settings.passive or self.config.passive_default
            if passive or port.config.is_loopback:
                if include_passive:
                    out.append(port)
                continue
            out.append(port)
        return out

    # -- hellos and adjacency ------------------------------------------------

    def _schedule_hello(self, port: Port, *, initial: bool = False) -> None:
        if not self._running:
            return
        base = 0.0 if initial else self.timers.isis_hello
        delay = self.host.kernel.jitter(base, self.timers.isis_hello * 0.25)
        self.host.kernel.schedule(
            delay, lambda: self._send_hello(port), label=f"isis-hello:{port.name}"
        )

    def _send_hello(self, port: Port) -> None:
        if not self._running:
            return
        if port.is_up:
            port.send(
                PROTO_KEY,
                Hello(
                    system_id=self.system_id,
                    source_ip=port.address,
                    hold_time=self.timers.isis_hold,
                ),
            )
        self._schedule_hello(port)

    def _on_frame(self, port: Port, payload: object) -> None:
        if not self._running:
            return
        if isinstance(payload, Hello):
            self._on_hello(port, payload)
        elif isinstance(payload, Lsp):
            self._on_lsp(port, payload)
        self.host.after_protocol_event()

    def _on_hello(self, port: Port, hello: Hello) -> None:
        if hello.system_id == self.system_id:
            return
        settings = port.config.isis
        metric = settings.metric if settings else 10
        adj = self.adjacencies.get(hello.system_id)
        is_new = adj is None or adj.port is not port
        if is_new:
            adj = Adjacency(
                system_id=hello.system_id,
                neighbor_ip=hello.source_ip,
                port=port,
                metric=metric,
                hold_time=hello.hold_time,
            )
            self.adjacencies[hello.system_id] = adj
        assert adj is not None
        adj.neighbor_ip = hello.source_ip
        self._reset_hold_timer(adj)
        if is_new:
            collector = bus.ACTIVE
            if collector.enabled:
                collector.emit(
                    "isis.adjacency.up",
                    self.host.kernel.now,
                    node=self.host.name,
                    neighbor=hello.system_id,
                    port=port.name,
                )
            self._originate()
            self._flood_database_to(port)
            self._schedule_spf()

    def _reset_hold_timer(self, adj: Adjacency) -> None:
        if adj.expiry_event is not None:
            adj.expiry_event.cancel()  # type: ignore[attr-defined]
        adj.expires_at = self.host.kernel.now + adj.hold_time
        adj.expiry_event = self.host.kernel.schedule(
            adj.hold_time,
            lambda: self._expire_adjacency(adj),
            label=f"isis-hold:{adj.system_id}",
        )

    def _expire_adjacency(self, adj: Adjacency) -> None:
        if self.adjacencies.get(adj.system_id) is adj:
            self._drop_adjacency(adj)
            self.host.after_protocol_event()

    def _drop_adjacency(self, adj: Adjacency) -> None:
        if adj.expiry_event is not None:
            adj.expiry_event.cancel()  # type: ignore[attr-defined]
        self.adjacencies.pop(adj.system_id, None)
        collector = bus.ACTIVE
        if collector.enabled:
            collector.emit(
                "isis.adjacency.down",
                self.host.kernel.now,
                node=self.host.name,
                neighbor=adj.system_id,
                port=adj.port.name,
            )
        self._originate()
        self._schedule_spf()

    def _on_link_change(self, port: Port, up: bool) -> None:
        if up or not self._running:
            return
        for adj in [a for a in self.adjacencies.values() if a.port is port]:
            self._drop_adjacency(adj)
        self.host.after_protocol_event()

    # -- LSP origination and flooding ----------------------------------------

    def _originate(self) -> None:
        self._sequence += 1
        neighbors = tuple(
            sorted((adj.system_id, adj.metric) for adj in self.adjacencies.values())
        )
        prefixes = []
        for port in self._active_ports(include_passive=True):
            prefix = port.connected_prefix()
            if prefix is None:
                continue
            settings = port.config.isis
            metric = settings.metric if settings else 10
            prefixes.append((prefix, metric))
        lsp = Lsp(
            system_id=self.system_id,
            sequence=self._sequence,
            neighbors=neighbors,
            prefixes=tuple(sorted(prefixes, key=lambda p: (str(p[0]), p[1]))),
        )
        self.lsdb[self.system_id] = lsp
        self._flood(lsp, except_port=None)

    def _flood(self, lsp: Lsp, except_port: Optional[Port]) -> None:
        for adj in self.adjacencies.values():
            if adj.port is except_port:
                continue
            self._send_lsp(adj.port, lsp)

    def _send_lsp(self, port: Port, lsp: Lsp) -> None:
        if bus.ACTIVE.enabled:
            bus.ACTIVE.count("isis.lsp.sent")
        delay = self.host.kernel.jitter(
            self.timers.isis_lsp_flood_delay, self.timers.isis_lsp_flood_delay
        )
        self.host.kernel.schedule(
            delay, lambda: port.send(PROTO_KEY, lsp), label="isis-flood"
        )

    def _flood_database_to(self, port: Port) -> None:
        """Synchronize a new neighbor with our full LSDB (CSNP stand-in)."""
        for lsp in self.lsdb.values():
            self._send_lsp(port, lsp)

    def _on_lsp(self, port: Port, lsp: Lsp) -> None:
        if lsp.system_id == self.system_id:
            # Someone floods our own LSP back; ignore older copies.
            return
        current = self.lsdb.get(lsp.system_id)
        if not lsp.is_newer_than(current):
            return
        if bus.ACTIVE.enabled:
            bus.ACTIVE.count("isis.lsp.accepted")
        self.lsdb[lsp.system_id] = lsp
        self._flood(lsp, except_port=port)
        self._schedule_spf()

    # -- SPF ---------------------------------------------------------------

    def _schedule_spf(self) -> None:
        if self._spf_scheduled or not self._running:
            return
        self._spf_scheduled = True
        self.host.kernel.schedule(
            self.timers.isis_spf_delay, self._run_spf, label="isis-spf"
        )

    def _run_spf(self) -> None:
        self._spf_scheduled = False
        if not self._running:
            return
        if bus.ACTIVE.enabled:
            bus.ACTIVE.count("isis.spf.runs")
        distance, first_hops = self._dijkstra()
        routes = self._build_routes(distance, first_hops)
        self._install_routes(routes)
        self.host.after_protocol_event()

    def _dijkstra(
        self,
    ) -> tuple[dict[str, int], dict[str, set[str]]]:
        """Shortest paths over the LSDB from this router.

        Returns (distance by system-id, set of first-hop neighbor
        system-ids by system-id) with ECMP preserved. An edge counts only
        if both endpoints report it (two-way check).
        """
        graph: dict[str, dict[str, int]] = {}
        for sysid, lsp in self.lsdb.items():
            graph[sysid] = {n: m for n, m in lsp.neighbors}
        distance: dict[str, int] = {self.system_id: 0}
        first_hops: dict[str, set[str]] = {self.system_id: set()}
        heap: list[tuple[int, str]] = [(0, self.system_id)]
        visited: set[str] = set()
        while heap:
            dist, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for neighbor, metric in graph.get(node, {}).items():
                if graph.get(neighbor, {}).get(node) is None:
                    continue  # not two-way
                candidate = dist + metric
                if candidate < distance.get(neighbor, 1 << 60):
                    distance[neighbor] = candidate
                    if node == self.system_id:
                        first_hops[neighbor] = {neighbor}
                    else:
                        first_hops[neighbor] = set(first_hops[node])
                    heapq.heappush(heap, (candidate, neighbor))
                elif candidate == distance.get(neighbor):
                    if node == self.system_id:
                        first_hops.setdefault(neighbor, set()).add(neighbor)
                    else:
                        first_hops.setdefault(neighbor, set()).update(
                            first_hops[node]
                        )
        return distance, first_hops

    def _build_routes(
        self,
        distance: dict[str, int],
        first_hops: dict[str, set[str]],
    ) -> dict[Prefix, Route]:
        own_prefixes = {
            port.connected_prefix()
            for port in self._active_ports(include_passive=True)
        }
        best: dict[Prefix, tuple[int, set[str]]] = {}
        for sysid, lsp in self.lsdb.items():
            if sysid == self.system_id or sysid not in distance:
                continue
            for prefix, metric in lsp.prefixes:
                if prefix in own_prefixes:
                    continue
                total = distance[sysid] + metric
                current = best.get(prefix)
                if current is None or total < current[0]:
                    best[prefix] = (total, set(first_hops.get(sysid, ())))
                elif total == current[0]:
                    current[1].update(first_hops.get(sysid, ()))
        routes: dict[Prefix, Route] = {}
        for prefix, (metric, hop_ids) in best.items():
            next_hops = []
            for hop_id in sorted(hop_ids):
                adj = self.adjacencies.get(hop_id)
                if adj is None or not adj.port.is_up:
                    continue
                next_hops.append(
                    NextHop(ip=adj.neighbor_ip, interface=adj.port.name)
                )
            if next_hops:
                routes[prefix] = Route(
                    prefix=prefix,
                    protocol=Protocol.ISIS,
                    next_hops=tuple(next_hops),
                    metric=metric,
                )
        return routes

    def _install_routes(self, routes: dict[Prefix, Route]) -> None:
        for stale in self._installed - set(routes):
            self.host.rib.withdraw(Protocol.ISIS, stale)
        for route in routes.values():
            self.host.rib.install(route)
        self._installed = set(routes)

    # -- introspection (drives the vendor CLI) --------------------------------

    def database_summary(self) -> list[Lsp]:
        return sorted(self.lsdb.values(), key=lambda lsp: lsp.system_id)

    def adjacency_summary(self) -> list[Adjacency]:
        return sorted(self.adjacencies.values(), key=lambda a: a.system_id)
