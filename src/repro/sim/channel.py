"""Point-to-point message channels with latency and jitter.

A :class:`Channel` models one direction of a virtual wire between two
emulated router interfaces (KNE implements these as dedicated virtual
networks between pods). Messages arrive after ``latency`` plus seeded
jitter; jitter is what makes equal-cost race conditions (BGP tiebreaks,
RSVP reservation ordering) explorable across seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.sim.kernel import Event, SimKernel


@dataclass
class Delivery:
    """A message in flight."""

    payload: Any
    send_time: float
    event: Event


class ChannelDown(RuntimeError):
    """Raised when sending on an administratively-down channel."""


class Channel:
    """One direction of a virtual wire.

    ``receiver`` is called as ``receiver(payload)`` when a message
    arrives. Links can be taken down mid-run (the paper's link-cut
    scenario contexts); messages in flight on a downed link are dropped,
    matching real wire behaviour.
    """

    def __init__(
        self,
        kernel: SimKernel,
        receiver: Callable[[Any], None],
        *,
        latency: float = 0.001,
        jitter: float = 0.002,
        name: str = "",
    ) -> None:
        self._kernel = kernel
        self._receiver = receiver
        self.latency = latency
        self.jitter = jitter
        self.name = name
        self._up = True
        self._in_flight: list[Delivery] = []
        self.messages_sent = 0
        self.messages_delivered = 0
        # Fault injection (repro.chaos): probability a send is lost on
        # the wire. Zero keeps the fault-free RNG stream untouched —
        # the kernel rng is only consulted while a fault is active.
        self.drop_rate = 0.0
        self.messages_dropped = 0

    @property
    def is_up(self) -> bool:
        return self._up

    def send(self, payload: Any) -> Optional[Delivery]:
        """Enqueue ``payload`` for delivery; returns the delivery handle.

        Sends on a down channel are silently dropped (a wire does not
        raise exceptions), but the drop is counted. A lossy channel
        (``drop_rate`` > 0, set by the chaos injector) drops sends
        probabilistically from the kernel's seeded rng, so loss patterns
        replay exactly for a fixed seed.
        """
        self.messages_sent += 1
        if not self._up:
            return None
        if self.drop_rate > 0.0 and self._kernel.rng.random() < self.drop_rate:
            self.messages_dropped += 1
            return None
        delay = self._kernel.jitter(self.latency, self.jitter)
        delivery = Delivery(payload=payload, send_time=self._kernel.now, event=None)  # type: ignore[arg-type]
        delivery.event = self._kernel.schedule(
            delay,
            lambda: self._deliver(delivery),
            label=f"deliver:{self.name}",
        )
        self._in_flight.append(delivery)
        return delivery

    def _deliver(self, delivery: Delivery) -> None:
        if delivery in self._in_flight:
            self._in_flight.remove(delivery)
        if not self._up:
            return
        self.messages_delivered += 1
        self._receiver(delivery.payload)

    def set_down(self) -> None:
        """Cut the wire: drop everything in flight, refuse new sends."""
        self._up = False
        for delivery in self._in_flight:
            delivery.event.cancel()
        self._in_flight.clear()

    def set_up(self) -> None:
        self._up = True

    def __repr__(self) -> str:
        state = "up" if self._up else "down"
        return f"Channel({self.name!r}, {state})"
