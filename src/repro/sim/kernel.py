"""Event loop and simulated clock."""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs import bus

# Queue depth is sampled (not recorded per event) so tracing a
# million-event production run stays affordable.
_QUEUE_DEPTH_SAMPLE_EVERY = 1024


class SimulationError(RuntimeError):
    """Raised when the kernel is driven incorrectly."""


class QuiescenceTimeout(SimulationError):
    """``run_until_quiet`` gave up before its poll predicate held.

    Raised both when simulated time passes ``max_time`` with activity
    still pending and when the event queue drains without the predicate
    ever holding — the latter used to be reported as success, which let
    deployments that never finished configuring look converged.
    """

    def __init__(self, message: str, *, at: float, drained: bool) -> None:
        super().__init__(message)
        #: Simulated time when the kernel gave up.
        self.at = at
        #: True when the queue drained (vs. running past ``max_time``).
        self.drained = drained


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is (time, priority, sequence): equal-time events run in
    priority order, then insertion order, which keeps runs deterministic
    for a fixed seed.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class SimKernel:
    """A deterministic discrete-event scheduler.

    The kernel owns a seeded :class:`random.Random` used for message
    jitter; two kernels with the same seed replay the same ordering,
    while different seeds explore different interleavings (the paper's
    §6 nondeterminism discussion).
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        self.rng = random.Random(seed)
        self.seed = seed
        self.events_processed = 0
        #: Simulated time at which the most recent ``run_until_quiet``
        #: call succeeded; None until the first quiescence. Later
        #: re-quiesces (chaos horizons, what-if reverts) overwrite it,
        #: which is exactly what "when did we *last* settle" should say.
        self.quiesced_at: Optional[float] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        event = Event(
            time=self._now + delay,
            priority=priority,
            seq=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute simulated ``time``."""
        return self.schedule(time - self._now, action, priority=priority, label=label)

    def jitter(self, base: float, spread: float) -> float:
        """A delay of ``base`` plus uniform jitter in ``[0, spread)``."""
        return base + self.rng.random() * spread

    def pending(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return sum(1 for e in self._queue if not e.cancelled)

    def step(self) -> Optional[Event]:
        """Run the next event; returns it, or None if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_processed += 1
            collector = bus.ACTIVE
            if collector.enabled:
                collector.count("kernel.dispatch")
                if event.label:
                    collector.count(
                        "kernel.dispatch." + event.label.split(":", 1)[0]
                    )
                if self.events_processed % _QUEUE_DEPTH_SAMPLE_EVERY == 0:
                    collector.emit(
                        "kernel.queue_depth", self._now, depth=len(self._queue)
                    )
                    # Registry gauges ride the same sampling interval:
                    # per-event registry work on THE hot path would blow
                    # the instrumentation-overhead budget.
                    registry = bus.metrics_registry()
                    if registry.enabled:
                        registry.gauge(
                            "kernel.queue_depth",
                            "Live events in the kernel queue (sampled)",
                        ).set(len(self._queue))
                        registry.gauge(
                            "kernel.events_processed",
                            "Kernel events dispatched so far (sampled)",
                        ).set(self.events_processed)
            event.action()
            return event
        return None

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> float:
        """Run until the queue drains or simulated time passes ``until``.

        Returns the simulated time when the run stopped.
        """
        if self._running:
            raise SimulationError("kernel is not reentrant")
        self._running = True
        try:
            processed = 0
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    self._now = until
                    break
                if processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "likely a protocol livelock"
                    )
                self.step()
                processed += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
            return self._now
        finally:
            self._running = False

    def run_until_quiet(
        self,
        quiet_period: float,
        *,
        poll: Callable[[], bool] = lambda: True,
        max_time: float = 86_400.0,
        max_events: int = 10_000_000,
    ) -> float:
        """Run until ``poll`` has held for ``quiet_period`` simulated secs.

        This is how the emulation pipeline detects convergence: ``poll``
        checks "has the dataplane stopped changing", and the kernel keeps
        stepping until that predicate holds across a quiet window (or the
        event queue drains entirely).
        """
        quiet_since = self._now if poll() else None
        processed = 0
        while self._queue:
            if processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} before quiescence"
                )
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if quiet_since is not None and head.time - quiet_since >= quiet_period:
                self._now = quiet_since + quiet_period
                self._record_quiescence()
                return self._now
            if head.time > max_time:
                raise QuiescenceTimeout(
                    f"no quiescence before max_time={max_time}s",
                    at=self._now,
                    drained=False,
                )
            self.step()
            processed += 1
            if poll():
                if quiet_since is None:
                    quiet_since = self._now
            else:
                quiet_since = None
        if quiet_since is None:
            # The queue drained while the predicate still failed. This
            # was historically reported as success; callers that need a
            # real convergence signal (deploy, wait_converged) depend on
            # the distinction, so surface it as a structured timeout.
            raise QuiescenceTimeout(
                f"event queue drained at t={self._now:.1f}s without the "
                "quiescence predicate ever holding",
                at=self._now,
                drained=True,
            )
        self._now = max(self._now, quiet_since + quiet_period)
        self._record_quiescence()
        return self._now

    def _record_quiescence(self) -> None:
        self.quiesced_at = self._now
        collector = bus.ACTIVE
        if collector.enabled:
            collector.emit("kernel.quiesced", self._now)
