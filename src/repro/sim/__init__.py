"""Discrete-event simulation kernel.

The emulator runs real distributed protocol exchanges between router
processes; :mod:`repro.sim` provides the clock, the event queue, and the
message channels those exchanges run over. Time is simulated seconds —
the scaling results in the paper are reported in emulation wall-clock,
which this kernel reproduces without actually sleeping.
"""

from repro.sim.kernel import Event, SimKernel
from repro.sim.channel import Channel, Delivery

__all__ = ["Channel", "Delivery", "Event", "SimKernel"]
