"""JSONL trace export/import for offline analysis.

One JSON object per line. Five record kinds:

* ``{"kind": "event", "t": ..., "category": ..., "node": ..., "detail": {...}}``
* ``{"kind": "span", "name": ..., "t_start": ..., "t_end": ..., "attrs": {...}, ...}``
* ``{"kind": "counter", "name": ..., "value": ..., ["labels": {...}]}``
* ``{"kind": "gauge", "name": ..., "value": ..., ["labels": {...}]}``
* ``{"kind": "histogram", "name": ..., "buckets": [...], "counts": [...],
  "sum": ..., "count": ..., ["labels": {...}]}``

The format round-trips through :class:`~repro.obs.bus.Tracer`, so
``mfv obs summary trace.jsonl`` renders a saved trace exactly like the
live run did, and ``mfv obs metrics trace.jsonl`` re-renders the
metrics plane (Prometheus text or records) offline.

:func:`write_metrics_jsonl` exports a bare registry — either a full
snapshot or, given a prior :meth:`~repro.obs.metrics.MetricsRegistry.collect`
snapshot, just the delta since it (the cheap periodic-shipping shape).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.obs.bus import ObsEvent, Span, Tracer
from repro.obs.metrics import MetricsRegistry, diff_records

#: Record kinds owned by the metrics registry (vs the event/span trace).
METRIC_KINDS = ("counter", "gauge", "histogram")


def write_jsonl(tracer: Tracer, path: Union[str, Path]) -> int:
    """Write the trace to ``path``; returns the number of lines written.

    Metric records come from the tracer's registry: every counter,
    gauge, and histogram series becomes one line, so the export carries
    the full metrics plane, not just the flat counter view.
    """
    lines = []
    for event in tracer.events:
        lines.append(json.dumps(event.to_dict(), sort_keys=True))
    for span in tracer.spans:
        lines.append(json.dumps(span.to_dict(), sort_keys=True))
    for record in tracer.registry.collect():
        lines.append(json.dumps(record, sort_keys=True))
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def read_jsonl(path: Union[str, Path]) -> Tracer:
    """Reconstruct a :class:`Tracer` from a JSONL trace file."""
    tracer = Tracer()
    for line_number, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("kind")
        if kind == "event":
            tracer.events.append(
                ObsEvent(
                    t=record["t"],
                    category=record["category"],
                    node=record.get("node", ""),
                    detail=record.get("detail", {}),
                )
            )
        elif kind == "span":
            tracer.spans.append(
                Span(
                    name=record["name"],
                    category=record.get("category", "phase"),
                    node=record.get("node", ""),
                    t_start=record.get("t_start", 0.0),
                    t_end=record.get("t_end"),
                    wall_seconds=record.get("wall_seconds", 0.0),
                    parent=record.get("parent"),
                    attrs=record.get("attrs", {}),
                )
            )
        elif kind in METRIC_KINDS:
            try:
                tracer.registry.load_record(record)
            except (KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: malformed {kind} record: {exc}"
                ) from exc
        else:
            raise ValueError(
                f"{path}:{line_number}: unknown trace record kind {kind!r}"
            )
    return tracer


def write_metrics_jsonl(
    registry: MetricsRegistry,
    path: Union[str, Path],
    *,
    since: Optional[list[dict]] = None,
) -> int:
    """Export a registry as metric records; returns lines written.

    With ``since`` (a prior ``registry.collect()`` snapshot) only the
    delta is written: counter/histogram increments since the snapshot,
    gauges at their current level, unchanged series omitted.
    """
    records = registry.collect()
    if since is not None:
        records = diff_records(since, records)
    lines = [json.dumps(record, sort_keys=True) for record in records]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def read_metrics_jsonl(path: Union[str, Path]) -> MetricsRegistry:
    """Reconstruct a registry from a metrics (or full-trace) JSONL file.

    Event and span records are skipped, so this reads both the bare
    :func:`write_metrics_jsonl` shape and a full :func:`write_jsonl`
    trace.
    """
    registry = MetricsRegistry(enabled=True)
    for line_number, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("kind")
        if kind in ("event", "span"):
            continue
        if kind not in METRIC_KINDS:
            raise ValueError(
                f"{path}:{line_number}: unknown trace record kind {kind!r}"
            )
        registry.load_record(record)
    return registry
