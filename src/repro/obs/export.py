"""JSONL trace export/import for offline analysis.

One JSON object per line. Three record kinds:

* ``{"kind": "event", "t": ..., "category": ..., "node": ..., "detail": {...}}``
* ``{"kind": "span", "name": ..., "t_start": ..., "t_end": ..., ...}``
* ``{"kind": "counter", "name": ..., "value": ...}``

The format round-trips through :class:`~repro.obs.bus.Tracer`, so
``mfv obs summary trace.jsonl`` renders a saved trace exactly like the
live run did.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.obs.bus import ObsEvent, Span, Tracer


def write_jsonl(tracer: Tracer, path: Union[str, Path]) -> int:
    """Write the trace to ``path``; returns the number of lines written."""
    lines = []
    for event in tracer.events:
        lines.append(json.dumps(event.to_dict(), sort_keys=True))
    for span in tracer.spans:
        lines.append(json.dumps(span.to_dict(), sort_keys=True))
    for name, value in sorted(tracer.counters.items()):
        lines.append(
            json.dumps({"kind": "counter", "name": name, "value": value})
        )
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def read_jsonl(path: Union[str, Path]) -> Tracer:
    """Reconstruct a :class:`Tracer` from a JSONL trace file."""
    tracer = Tracer()
    for line_number, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("kind")
        if kind == "event":
            tracer.events.append(
                ObsEvent(
                    t=record["t"],
                    category=record["category"],
                    node=record.get("node", ""),
                    detail=record.get("detail", {}),
                )
            )
        elif kind == "span":
            tracer.spans.append(
                Span(
                    name=record["name"],
                    category=record.get("category", "phase"),
                    node=record.get("node", ""),
                    t_start=record.get("t_start", 0.0),
                    t_end=record.get("t_end"),
                    wall_seconds=record.get("wall_seconds", 0.0),
                    parent=record.get("parent"),
                )
            )
        elif kind == "counter":
            tracer.counters[record["name"]] = record["value"]
        else:
            raise ValueError(
                f"{path}:{line_number}: unknown trace record kind {kind!r}"
            )
    return tracer
