"""``repro.obs`` — tracing, metrics, and convergence timelines.

The standing measurement layer of the emulation pipeline: a
zero-dependency event bus + span tracer keyed off simulated time
(:mod:`repro.obs.bus`), a convergence-timeline report
(:mod:`repro.obs.timeline`), and JSONL export for offline analysis
(:mod:`repro.obs.export`).

Typical use::

    from repro.obs import tracing, ConvergenceTimeline

    with tracing() as tracer:
        snapshot = ModelFreeBackend(topology).run()
    print(ConvergenceTimeline.from_tracer(tracer).render())

With no tracer installed, every instrumentation site reduces to one
attribute load and a false branch — the no-op collector keeps the
disabled cost negligible even in the kernel's dispatch loop.
"""

from repro.obs import bus
from repro.obs.bus import (
    NULL,
    Collector,
    ObsEvent,
    Span,
    Tracer,
    active,
    install,
    tracing,
    uninstall,
)
from repro.obs.export import read_jsonl, write_jsonl
from repro.obs.timeline import ConvergenceTimeline, DeviceTimeline, summary_text

__all__ = [
    "NULL",
    "Collector",
    "ConvergenceTimeline",
    "DeviceTimeline",
    "ObsEvent",
    "Span",
    "Tracer",
    "active",
    "bus",
    "install",
    "read_jsonl",
    "summary_text",
    "tracing",
    "uninstall",
    "write_jsonl",
]
