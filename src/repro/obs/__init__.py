"""``repro.obs`` — tracing, metrics, and convergence timelines.

The standing measurement layer of the emulation pipeline: a
zero-dependency event bus + span tracer keyed off simulated time
(:mod:`repro.obs.bus`), a labeled metrics registry with wall- and
sim-time histograms (:mod:`repro.obs.metrics`), a convergence-timeline
report (:mod:`repro.obs.timeline`), and JSONL export for offline
analysis (:mod:`repro.obs.export`).

Typical use::

    from repro.obs import tracing, ConvergenceTimeline

    with tracing() as tracer:
        snapshot = ModelFreeBackend(topology).run()
    print(ConvergenceTimeline.from_tracer(tracer).render())

With no tracer installed, every instrumentation site reduces to one
attribute load and a false branch — the no-op collector keeps the
disabled cost negligible even in the kernel's dispatch loop. The
metrics plane has the same property: sites ask
:func:`~repro.obs.bus.metrics_registry` (the installed tracer's
registry, else the process-wide :data:`~repro.obs.metrics.DEFAULT`)
and skip all work when it is disabled (``MFV_METRICS_ENABLED=0``).
"""

from repro.obs import bus, metrics
from repro.obs.bus import (
    NULL,
    Collector,
    JobContext,
    ObsEvent,
    Span,
    Tracer,
    active,
    current_job,
    install,
    job_scope,
    metrics_registry,
    tracing,
    uninstall,
)
from repro.obs.export import (
    read_jsonl,
    read_metrics_jsonl,
    write_jsonl,
    write_metrics_jsonl,
)
from repro.obs.metrics import (
    MetricsRegistry,
    diff_records,
    render_prometheus,
)
from repro.obs.timeline import ConvergenceTimeline, DeviceTimeline, summary_text

__all__ = [
    "NULL",
    "Collector",
    "ConvergenceTimeline",
    "DeviceTimeline",
    "JobContext",
    "MetricsRegistry",
    "ObsEvent",
    "Span",
    "Tracer",
    "active",
    "bus",
    "current_job",
    "diff_records",
    "install",
    "job_scope",
    "metrics",
    "metrics_registry",
    "read_jsonl",
    "read_metrics_jsonl",
    "render_prometheus",
    "summary_text",
    "tracing",
    "uninstall",
    "write_jsonl",
    "write_metrics_jsonl",
]
