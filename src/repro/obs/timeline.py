"""Consumers of a recorded trace: the convergence timeline report.

The paper's usability argument (§5–§6) is that model-free verification
lets operators see what the control plane actually did. This module
turns a :class:`~repro.obs.bus.Tracer` into that story: per-phase
durations (deploy → converge → extract → verify), per-device adjacency
and route-install milestones, and the aggregate counters that make hot
paths measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.bus import ObsEvent, Span, Tracer

# Event categories the timeline understands (instrumentation sites and
# this consumer agree on these names; JSONL traces carry them verbatim).
ADJACENCY_UP = "isis.adjacency.up"
ADJACENCY_DOWN = "isis.adjacency.down"
BGP_SESSION_UP = "bgp.session.up"
BGP_SESSION_DOWN = "bgp.session.down"
ROUTE_INSTALL = "route.install"
AFT_DUMP = "gnmi.aft.dump"
POD_SCHEDULED = "kube.pod.scheduled"
POD_FAILED = "kube.pod.failed"
POD_RESTORED = "kube.pod.restored"
PIPELINE_WARNING = "pipeline.warning"
PIPELINE_DEGRADED = "pipeline.degraded"
WHATIF_VERDICT = "whatif.verdict"
SERVICE_JOB = "service.job"
SERVICE_RECOVERY = "service.recovery"
SERVICE_BREAKER = "service.breaker"
SERVICE_DRAIN = "service.drain"
SERVICE_DEAD_LETTER = "service.dead_letter"
CHAOS_FAULT = "chaos.fault"
GNMI_RETRY = "gnmi.retry"
KERNEL_QUIESCED = "kernel.quiesced"
TEMPORAL_VIOLATION = "temporal.violation"
TEMPORAL_CHECKPOINT = "temporal.checkpoint"
ENSEMBLE_OUTCOME = "ensemble.outcome"
ENSEMBLE_VERDICT = "ensemble.verdict"


@dataclass
class DeviceTimeline:
    """Per-device convergence milestones (simulated seconds)."""

    node: str
    booted_at: Optional[float] = None
    first_adjacency_up: Optional[float] = None
    last_adjacency_up: Optional[float] = None
    bgp_established: Optional[float] = None
    last_route_install: Optional[float] = None
    route_changes: int = 0
    routes: int = 0


@dataclass
class ConvergenceTimeline:
    """The structured report built from one traced run."""

    phases: dict[str, Span] = field(default_factory=dict)
    devices: dict[str, DeviceTimeline] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    warnings: list[ObsEvent] = field(default_factory=list)
    whatif_verdicts: list[ObsEvent] = field(default_factory=list)
    service_jobs: list[ObsEvent] = field(default_factory=list)
    service_resilience: list[ObsEvent] = field(default_factory=list)
    chaos_faults: list[ObsEvent] = field(default_factory=list)
    degraded: list[ObsEvent] = field(default_factory=list)
    temporal_violations: list[ObsEvent] = field(default_factory=list)
    ensemble_outcomes: list[ObsEvent] = field(default_factory=list)
    ensemble_verdicts: list[ObsEvent] = field(default_factory=list)
    #: When the kernel last satisfied ``run_until_quiet`` — distinct
    #: from :meth:`last_route_install`: a later re-quiesce (chaos
    #: horizon, what-if revert) moves this without any route churn.
    quiesced_at: Optional[float] = None
    total_events: int = 0

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "ConvergenceTimeline":
        timeline = cls(
            counters=dict(tracer.counters), total_events=len(tracer.events)
        )
        for span in tracer.phase_spans():
            timeline.phases[span.name] = span
        for span in tracer.spans:
            if span.category == "kube.boot" and span.node and span.closed:
                timeline._device(span.node).booted_at = span.t_end
        for event in tracer.events:
            timeline._absorb(event)
        return timeline

    def _device(self, node: str) -> DeviceTimeline:
        device = self.devices.get(node)
        if device is None:
            device = self.devices[node] = DeviceTimeline(node)
        return device

    def _absorb(self, event: ObsEvent) -> None:
        if event.category == PIPELINE_WARNING:
            self.warnings.append(event)
        elif event.category == WHATIF_VERDICT:
            self.whatif_verdicts.append(event)
        elif event.category == SERVICE_JOB:
            self.service_jobs.append(event)
        elif event.category in (
            SERVICE_RECOVERY,
            SERVICE_BREAKER,
            SERVICE_DRAIN,
            SERVICE_DEAD_LETTER,
        ):
            self.service_resilience.append(event)
            return
        elif event.category == CHAOS_FAULT:
            self.chaos_faults.append(event)
        elif event.category == PIPELINE_DEGRADED:
            self.degraded.append(event)
        elif event.category == TEMPORAL_VIOLATION:
            # The node is the witness ingress, not a convergence
            # milestone — don't let it seed a device row.
            self.temporal_violations.append(event)
            return
        elif event.category == ENSEMBLE_OUTCOME:
            self.ensemble_outcomes.append(event)
            return
        elif event.category == ENSEMBLE_VERDICT:
            self.ensemble_verdicts.append(event)
            return
        elif event.category == KERNEL_QUIESCED:
            self.quiesced_at = event.t  # last quiescence wins
        if not event.node:
            return
        device = self._device(event.node)
        if event.category == ADJACENCY_UP:
            if device.first_adjacency_up is None:
                device.first_adjacency_up = event.t
            device.last_adjacency_up = event.t
        elif event.category == BGP_SESSION_UP:
            device.bgp_established = event.t
        elif event.category == ROUTE_INSTALL:
            device.last_route_install = event.t
            device.route_changes += 1
            device.routes = event.detail.get("routes", device.routes)

    # -- snapshot metadata -------------------------------------------------

    def phases_dict(self) -> dict[str, dict[str, float]]:
        """Per-phase durations in the ``Snapshot.metadata["phases"]`` shape."""
        return {
            name: {
                "sim_seconds": span.sim_seconds,
                "wall_seconds": span.wall_seconds,
            }
            for name, span in self.phases.items()
        }

    # -- rendering ---------------------------------------------------------

    def render(self, title: str = "Convergence timeline") -> str:
        lines = [title, ""]
        lines += self._render_phases()
        lines += self._render_devices()
        lines += self._render_counters()
        lines += self._render_whatif()
        lines += self._render_service()
        lines += self._render_resilience()
        lines += self._render_chaos()
        lines += self._render_temporal()
        lines += self._render_ensemble()
        lines += self._render_convergence()
        if self.warnings:
            lines.append("")
            lines.append("Warnings:")
            for event in self.warnings:
                detail = " ".join(
                    f"{k}={v}" for k, v in sorted(event.detail.items())
                )
                lines.append(f"  t={event.t:.1f} {detail}")
        lines.append("")
        lines.append(f"Total events recorded: {self.total_events}")
        return "\n".join(lines)

    def _render_phases(self) -> list[str]:
        if not self.phases:
            return ["Phases: (none recorded)"]
        lines = ["Phases:"]
        # self.phases preserves span-begin order (deploy, inject, ...);
        # sorting by t_start would misplace wall-clock-only phases.
        for span in self.phases.values():
            lines.append(
                f"  {span.name:<10} {span.sim_seconds:10.1f} sim-s   "
                f"(wall {span.wall_seconds * 1e3:8.1f} ms)"
            )
        return lines

    def _render_devices(self) -> list[str]:
        if not self.devices:
            return []
        lines = [
            "",
            "Devices (simulated seconds):",
            f"  {'node':<10} {'booted':>10} {'adj-up':>10} {'bgp-up':>10} "
            f"{'last-route':>12} {'routes':>8}",
        ]
        for node in sorted(self.devices):
            device = self.devices[node]
            lines.append(
                f"  {node:<10}"
                f" {_fmt(device.booted_at):>10}"
                f" {_fmt(device.last_adjacency_up):>10}"
                f" {_fmt(device.bgp_established):>10}"
                f" {_fmt(device.last_route_install):>12}"
                f" {device.routes:>8}"
            )
        return lines

    def _render_counters(self) -> list[str]:
        if not self.counters:
            return []
        lines = ["", "Counters:"]
        for name in sorted(self.counters):
            lines.append(f"  {name:<32} {self.counters[name]:>10}")
        return lines

    def _render_whatif(self) -> list[str]:
        if not self.whatif_verdicts:
            return []
        lines = [
            "",
            "What-if verdicts (by severity):",
            f"  {'scenario':<24} {'sev':>4} {'loops':>5} {'bhole':>5} "
            f"{'rgrss':>5} {'reconv(s)':>9}  clean",
        ]
        ranked = sorted(
            self.whatif_verdicts,
            key=lambda e: (
                -e.detail.get("severity", 0),
                e.detail.get("scenario", ""),
            ),
        )
        for event in ranked:
            d = event.detail
            lines.append(
                f"  {d.get('scenario', '?'):<24} {d.get('severity', 0):>4} "
                f"{d.get('new_loops', 0):>5} {d.get('new_blackholes', 0):>5} "
                f"{d.get('regressed', 0):>5} "
                f"{d.get('reconverge_seconds', 0.0):>9.1f}  "
                f"{'yes' if d.get('reverted_clean') else 'NO'}"
            )
        return lines

    def _render_service(self) -> list[str]:
        if not self.service_jobs:
            return []
        # Service timestamps are wall seconds since the service epoch
        # (there is no simulated kernel behind a query job).
        lines = [
            "",
            "Service jobs (wall seconds since service start):",
            f"  {'t':>8} {'job':>5} {'label':<28} {'prio':<12} "
            f"{'state':<9} {'queue(s)':>9} {'run(s)':>8} {'coal':>5}",
        ]
        for event in self.service_jobs:
            d = event.detail
            lines.append(
                f"  {event.t:>8.3f} {d.get('job', '?'):>5} "
                f"{str(d.get('label', '')):<28.28} "
                f"{str(d.get('priority', '')):<12} "
                f"{str(d.get('state', '')):<9} "
                f"{d.get('queue_seconds', 0.0):>9.3f} "
                f"{d.get('run_seconds', 0.0):>8.3f} "
                f"{d.get('coalesced', 1):>5}"
            )
        return lines

    def _render_resilience(self) -> list[str]:
        if not self.service_resilience:
            return []
        # Resilience-plane events: recovery replays, breaker
        # transitions, drains, dead letters — the crash-and-recover
        # story in arrival order.
        lines = [
            "",
            "Service resilience (wall seconds since service start):",
        ]
        for event in self.service_resilience:
            d = event.detail
            if event.category == SERVICE_RECOVERY:
                summary = (
                    f"recovered: {d.get('snapshots_recovered', 0)} "
                    f"snapshot(s), {d.get('jobs_requeued', 0)} requeued, "
                    f"{d.get('jobs_dead_lettered', 0)} dead-lettered "
                    f"({d.get('records_replayed', 0)} records, "
                    f"{d.get('wall_seconds', 0.0):.3f}s)"
                )
            elif event.category == SERVICE_BREAKER:
                summary = (
                    f"breaker {d.get('key', '?')}: "
                    f"{d.get('before', '?')} -> {d.get('state', '?')} "
                    f"({d.get('failures', 0)} failures)"
                )
            elif event.category == SERVICE_DRAIN:
                summary = (
                    f"drain: {d.get('settled', 0)} settled, "
                    f"{d.get('rejected', 0)} rejected"
                )
            else:  # SERVICE_DEAD_LETTER
                summary = (
                    f"dead-letter {d.get('key', '?')} "
                    f"({d.get('question', '?')}) after "
                    f"{d.get('deliveries', 0)} deliveries: "
                    f"{d.get('reason', '?')}"
                )
            lines.append(f"  t={event.t:>8.3f}  {summary}")
        return lines

    def _render_chaos(self) -> list[str]:
        if not self.chaos_faults and not self.degraded:
            return []
        lines = ["", "Chaos faults (simulated seconds):"]
        if self.chaos_faults:
            lines.append(
                f"  {'t':>10} {'action':<10} {'kind':<16} target"
            )
            for event in self.chaos_faults:
                d = event.detail
                lines.append(
                    f"  {event.t:>10.1f} {str(d.get('action', '?')):<10} "
                    f"{str(d.get('kind', '?')):<16} {d.get('target', '?')}"
                )
        if self.degraded:
            lines.append("")
            lines.append("Degraded nodes (partial snapshot):")
            for event in self.degraded:
                node = event.node or event.detail.get("node", "?")
                lines.append(
                    f"  {node:<10} {event.detail.get('reason', '?')}"
                )
        return lines

    def _render_temporal(self) -> list[str]:
        if not self.temporal_violations:
            return []
        lines = [
            "",
            "Temporal violations (intervals, simulated seconds):",
            f"  {'start':>10} {'end':>10} {'invariant':<18} "
            f"{'witness':<24} kind",
        ]
        for event in self.temporal_violations:
            d = event.detail
            witness = ""
            if event.node or d.get("destination"):
                witness = f"{event.node}->{d.get('destination', '')}"
            lines.append(
                f"  {event.t:>10.1f} {d.get('t_end', event.t):>10.1f} "
                f"{str(d.get('invariant', '?')):<18} {witness:<24} "
                f"{'transient' if d.get('transient', True) else 'persistent'}"
            )
        return lines

    def _render_ensemble(self) -> list[str]:
        if not self.ensemble_outcomes and not self.ensemble_verdicts:
            return []
        lines = ["", "Ensemble (distinct converged states):"]
        if self.ensemble_outcomes:
            lines.append(
                f"  {'converged(s)':>12} {'fingerprint':<20} {'mult':>4} "
                "first member"
            )
            for event in self.ensemble_outcomes:
                d = event.detail
                member = f"seed {d.get('seed', '?')}"
                if d.get("plan"):
                    member += f" + {d['plan']}"
                lines.append(
                    f"  {event.t:>12.1f} {str(d.get('fingerprint', '?')):<20} "
                    f"{d.get('multiplicity', 1):>4} {member}"
                )
        if self.ensemble_verdicts:
            lines.append("")
            lines.append("Unstable ensemble verdicts:")
            lines.append(
                f"  {'invariant':<28} {'verdict':<16} {'held':>9} witness"
            )
            for event in self.ensemble_verdicts:
                d = event.detail
                witness = f"seed {d.get('witness_seed', '?')}"
                if d.get("witness_plan"):
                    witness += f" + {d['witness_plan']}"
                if d.get("t_start") is not None:
                    witness += (
                        f" [{d['t_start']:.1f}, {d.get('t_end', 0.0):.1f})s"
                    )
                held = f"{d.get('holds', 0)}/{d.get('total', 0)}"
                lines.append(
                    f"  {str(d.get('invariant', '?')):<28} "
                    f"{str(d.get('verdict', '?')):<16} {held:>9} {witness}"
                )
        return lines

    def _render_convergence(self) -> list[str]:
        last = self.last_route_install()
        if last is None and self.quiesced_at is None:
            return []
        lines = ["", "Convergence:"]
        if last is not None:
            lines.append(f"  last route install   {last:>10.1f} sim-s")
        if self.quiesced_at is not None:
            lines.append(f"  kernel quiesced at   {self.quiesced_at:>10.1f} sim-s")
        return lines

    def last_route_install(self) -> Optional[float]:
        """The run-wide last route install time (the convergence point)."""
        times = [
            d.last_route_install
            for d in self.devices.values()
            if d.last_route_install is not None
        ]
        return max(times) if times else None


def _fmt(value: Optional[float]) -> str:
    return f"{value:.1f}" if value is not None else "-"


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


def _render_slow_spans(spans: list[Span], top: int = 5) -> list[str]:
    """The ``top`` slowest closed spans by wall duration."""
    closed = [s for s in spans if s.closed]
    if not closed:
        return []
    ranked = sorted(closed, key=lambda s: -s.wall_seconds)[:top]
    lines = ["", f"Slowest spans (top {len(ranked)} by wall time):"]
    for span in ranked:
        where = f" [{span.node}]" if span.node else ""
        job = span.attrs.get("job")
        tag = f" job={job}" if job is not None else ""
        lines.append(
            f"  {span.name:<24} {span.wall_seconds * 1e3:>10.1f} ms"
            f"{where}{tag}"
        )
    return lines


def _render_span_percentiles(spans: list[Span]) -> list[str]:
    """Per-span-name wall-duration percentiles (p50/p90/p99)."""
    by_name: dict[str, list[float]] = {}
    for span in spans:
        if span.closed:
            by_name.setdefault(span.name, []).append(span.wall_seconds)
    if not by_name:
        return []
    lines = [
        "",
        "Span durations (wall ms):",
        f"  {'name':<24} {'count':>5} {'p50':>9} {'p90':>9} {'p99':>9}",
    ]
    for name in sorted(by_name):
        ordered = sorted(by_name[name])
        lines.append(
            f"  {name:<24} {len(ordered):>5}"
            f" {_percentile(ordered, 0.50) * 1e3:>9.1f}"
            f" {_percentile(ordered, 0.90) * 1e3:>9.1f}"
            f" {_percentile(ordered, 0.99) * 1e3:>9.1f}"
        )
    return lines


def _render_histograms(registry) -> list[str]:
    """Registry histograms with observations: count/p50/p90/p99 per
    labeled child, in the series' native unit (seconds histograms stay
    seconds, count histograms like ``verify.dirty_atoms`` stay counts)."""
    rows = []
    for family in registry.families():
        if family.kind != "histogram":
            continue
        for child in family.children():
            if child.count == 0:
                continue
            label = family.name
            if child.labels:
                inner = ",".join(
                    f"{k}={v}" for k, v in sorted(child.labels.items())
                )
                label = f"{family.name}{{{inner}}}"
            rows.append((label, child))
    if not rows:
        return []
    lines = [
        "",
        "Histograms (native units):",
        f"  {'series':<40} {'count':>6} {'p50':>10} {'p90':>10} {'p99':>10}",
    ]
    for label, child in sorted(rows):
        quantiles = child.quantiles((0.5, 0.9, 0.99))
        lines.append(
            f"  {label:<40} {child.count:>6}"
            f" {quantiles[0.5]:>10.4g}"
            f" {quantiles[0.9]:>10.4g}"
            f" {quantiles[0.99]:>10.4g}"
        )
    return lines


def summary_text(tracer: Tracer, title: str = "Trace summary") -> str:
    """The compact formatter used by ``mfv obs summary`` and examples."""
    timeline = ConvergenceTimeline.from_tracer(tracer)
    lines = [title, ""]
    lines += timeline._render_phases()
    lines += timeline._render_counters()
    lines += _render_slow_spans(tracer.spans)
    lines += _render_span_percentiles(tracer.spans)
    lines += _render_histograms(tracer.registry)
    last = timeline.last_route_install()
    if last is not None or timeline.quiesced_at is not None:
        lines.append("")
    if last is not None:
        lines.append(f"Last route installed at t={last:.1f} sim-s")
    if timeline.quiesced_at is not None:
        lines.append(f"Kernel quiesced at t={timeline.quiesced_at:.1f} sim-s")
    lines.append(f"Total events recorded: {timeline.total_events}")
    return "\n".join(lines)


#: Width of a waterfall bar in characters.
_WATERFALL_WIDTH = 40


def waterfall_text(tracer: Tracer, job_id: int) -> str:
    """Render one job's lifecycle as a waterfall.

    The rows come from the ``service.job`` events the service emits at
    every state transition (all tagged with the job id), bracketed over
    the job's wall-time extent; spans recorded by the worker thread
    while the job ran (engine builds, nested phases) carry the same id
    in their ``attrs`` via the ambient job context and are listed
    below the bars with their wall durations.

    Raises :class:`KeyError` when the trace has no record of the job.
    """
    events = sorted(
        (e for e in tracer.events if e.detail.get("job") == job_id),
        key=lambda e: e.t,
    )
    spans = [s for s in tracer.spans if s.attrs.get("job") == job_id]
    if not events and not spans:
        raise KeyError(f"job {job_id} does not appear in this trace")
    lines = [f"Job {job_id} waterfall (wall seconds since service start):"]
    job_events = [e for e in events if e.category == SERVICE_JOB]
    if job_events:
        first = job_events[0]
        label = first.detail.get("label")
        priority = first.detail.get("priority")
        if label or priority:
            lines[0] += f"  [{label or '?'} @ {priority or '?'}]"
        lines.append("")
        t0 = job_events[0].t
        t1 = max(e.t for e in job_events)
        extent = max(t1 - t0, 1e-9)
        for index, event in enumerate(job_events):
            state = str(event.detail.get("state", "?"))
            end = (
                job_events[index + 1].t
                if index + 1 < len(job_events)
                else event.t
            )
            start_col = int((event.t - t0) / extent * _WATERFALL_WIDTH)
            end_col = int((end - t0) / extent * _WATERFALL_WIDTH)
            if end > event.t:
                end_col = max(end_col, start_col + 1)
            bar = (
                "." * start_col
                + "#" * (end_col - start_col)
                + "." * (_WATERFALL_WIDTH - end_col)
            )
            duration = f" {end - event.t:8.3f}s" if end > event.t else ""
            lines.append(
                f"  t={event.t:>8.3f}  {state:<9} |{bar}|{duration}"
            )
        terminal = job_events[-1].detail
        if "queue_seconds" in terminal or "run_seconds" in terminal:
            lines.append(
                f"  total {t1 - t0:.3f}s"
                f"  (queue {terminal.get('queue_seconds', 0.0):.3f}s,"
                f" run {terminal.get('run_seconds', 0.0):.3f}s,"
                f" attempts {terminal.get('attempts', 1)})"
            )
    other = [e for e in events if e.category != SERVICE_JOB]
    if other:
        lines.append("")
        lines.append("Correlated events:")
        for event in other:
            detail = " ".join(
                f"{k}={v}"
                for k, v in sorted(event.detail.items())
                if k != "job"
            )
            lines.append(f"  t={event.t:>8.3f}  {event.category}  {detail}")
    if spans:
        lines.append("")
        lines.append("Spans recorded while the job ran (wall ms):")
        for span in sorted(spans, key=lambda s: -s.wall_seconds):
            where = f" [{span.node}]" if span.node else ""
            lines.append(
                f"  {span.name:<24} {span.wall_seconds * 1e3:>10.1f} ms"
                f"{where}"
            )
    return "\n".join(lines)
