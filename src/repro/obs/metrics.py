"""``repro.obs.metrics`` — the zero-dependency metrics registry.

Events and spans (:mod:`repro.obs.bus`) answer "what happened"; this
module answers "how is it distributed". A :class:`MetricsRegistry`
holds named metric *families* — labeled counters, gauges, and
fixed-bucket histograms — that every hot path in the pipeline and the
verification service records into: kernel dispatch, pipeline phases,
engine builds, job queue wait/run per priority class, store occupancy,
coalescing and shed rates, chaos retry/backoff.

Design constraints, in order:

1. **Cheap enough to leave on.** The registry is enabled by default
   (``MFV_METRICS_ENABLED=0`` disables it); a disabled registry's
   families are shared no-op singletons, so instrumentation costs one
   attribute load and a false branch — the same budget as the event
   bus. ``BENCH_obs.json`` holds the enabled/disabled wall-time ratio
   under 5% on the production verify workload.
2. **Two time dimensions.** Pipeline stages advance a *simulated*
   clock while extraction/verification burn *wall* time with the
   simulated clock frozen, so histograms pick their default bucket
   boundaries by ``unit``: ``"wall"`` (sub-millisecond to a minute) or
   ``"sim"`` (sub-second to hours). ``MFV_METRICS_BUCKETS`` /
   ``MFV_METRICS_SIM_BUCKETS`` override the defaults process-wide.
3. **No dependencies.** Prometheus text exposition
   (:func:`render_prometheus`) and JSONL records
   (:meth:`MetricsRegistry.collect`) are rendered by hand; quantiles
   are streaming estimates interpolated from the fixed buckets, not a
   stored sample set.

The process-wide default registry is :data:`DEFAULT`. A recording
:class:`~repro.obs.bus.Tracer` carries its *own* registry so traced
runs export their metrics alongside the trace; resolution between the
two is :func:`repro.obs.bus.metrics_registry`.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from typing import Iterable, Optional, Sequence, Union

__all__ = [
    "DEFAULT",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SIM_BUCKETS",
    "WALL_BUCKETS",
    "default_buckets",
    "diff_records",
    "enabled_from_env",
    "exposition_format",
    "render_prometheus",
]

#: Default wall-clock bucket upper bounds (seconds). Engine builds and
#: query answers land between 1 ms and a few seconds; the tail buckets
#: catch pathological builds without unbounded cardinality.
WALL_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Default simulated-time bucket upper bounds (seconds). Convergence
#: and chaos backoff live between sub-second and hours of sim time.
SIM_BUCKETS: tuple[float, ...] = (
    0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 120.0,
    300.0, 600.0, 1800.0, 3600.0, 7200.0,
)


def _env_buckets(name: str, default: tuple[float, ...]) -> tuple[float, ...]:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        bounds = tuple(sorted(float(part) for part in raw.split(",") if part))
    except ValueError:
        return default
    return bounds or default


def default_buckets(unit: str = "wall") -> tuple[float, ...]:
    """The default bucket boundaries for ``unit`` (``wall`` or ``sim``),
    honoring the ``MFV_METRICS_BUCKETS`` / ``MFV_METRICS_SIM_BUCKETS``
    overrides (comma-separated upper bounds in seconds)."""
    if unit == "sim":
        return _env_buckets("MFV_METRICS_SIM_BUCKETS", SIM_BUCKETS)
    return _env_buckets("MFV_METRICS_BUCKETS", WALL_BUCKETS)


def enabled_from_env() -> bool:
    """Registry enablement: on unless ``MFV_METRICS_ENABLED`` is falsy."""
    raw = os.environ.get("MFV_METRICS_ENABLED")
    if raw is None:
        return True
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


def exposition_format() -> str:
    """The default exposition format (``MFV_METRICS_FORMAT``):
    ``prometheus`` (text exposition) or ``records`` (the JSONL record
    list; ``json``/``jsonl`` are accepted aliases)."""
    fmt = os.environ.get("MFV_METRICS_FORMAT", "prometheus").strip().lower()
    if fmt in ("records", "json", "jsonl"):
        return "records"
    return "prometheus"


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class _Child:
    """One labeled series inside a family."""

    __slots__ = ("labels", "_lock")

    def __init__(self, labels: dict) -> None:
        self.labels = dict(labels)
        self._lock = threading.Lock()


class _CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self, labels: dict) -> None:
        super().__init__(labels)
        self.value: Union[int, float] = 0

    def inc(self, n: Union[int, float] = 1) -> None:
        with self._lock:
            self.value += n


class _GaugeChild(_Child):
    __slots__ = ("value",)

    def __init__(self, labels: dict) -> None:
        super().__init__(labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.inc(-n)


class _HistogramChild(_Child):
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, labels: dict, bounds: Sequence[float]) -> None:
        super().__init__(labels)
        self.bounds = tuple(bounds)
        # counts[i] observations fell in (bounds[i-1], bounds[i]];
        # counts[-1] is the +Inf overflow bucket.
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> float:
        """Streaming quantile estimate interpolated from the buckets.

        Exact enough for "p99 interactive latency" dashboards: the
        error is bounded by the bucket width the quantile lands in.
        The overflow bucket reports its lower bound (there is no upper
        edge to interpolate toward).
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0.0
        lower = 0.0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                if index < len(self.bounds):
                    lower = self.bounds[index]
                continue
            if seen + bucket_count >= rank:
                if index >= len(self.bounds):
                    return lower
                upper = self.bounds[index]
                fraction = (rank - seen) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
            seen += bucket_count
            if index < len(self.bounds):
                lower = self.bounds[index]
        return lower

    def quantiles(
        self, qs: Iterable[float] = (0.5, 0.9, 0.99)
    ) -> dict[float, float]:
        return {q: self.quantile(q) for q in qs}


class _Family:
    """A named metric with a fixed label schema and per-labelset children."""

    kind = "metric"

    def __init__(
        self, name: str, help: str, labelnames: tuple[str, ...]
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._children: dict[tuple, _Child] = {}
        self._lock = threading.Lock()

    def _make_child(self, labels: dict) -> _Child:
        raise NotImplementedError

    def labels(self, **labels) -> _Child:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._children[key] = self._make_child(labels)
        return child

    def children(self) -> list[_Child]:
        with self._lock:
            return list(self._children.values())

    @property
    def _default(self) -> _Child:
        """The unlabeled child (only valid when labelnames is empty)."""
        return self.labels()


class Counter(_Family):
    """A monotonically increasing sum (optionally labeled)."""

    kind = "counter"

    def _make_child(self, labels: dict) -> _CounterChild:
        return _CounterChild(labels)

    def inc(self, n: Union[int, float] = 1, **labels) -> None:
        self.labels(**labels).inc(n)

    @property
    def value(self) -> Union[int, float]:
        return sum(child.value for child in self.children())


class Gauge(_Family):
    """A point-in-time level (occupancy, depth, fraction)."""

    kind = "gauge"

    def _make_child(self, labels: dict) -> _GaugeChild:
        return _GaugeChild(labels)

    def set(self, value: float, **labels) -> None:
        self.labels(**labels).set(value)

    def inc(self, n: float = 1.0, **labels) -> None:
        self.labels(**labels).inc(n)

    def dec(self, n: float = 1.0, **labels) -> None:
        self.labels(**labels).dec(n)


class Histogram(_Family):
    """Fixed-bucket distribution with streaming quantile summaries."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: Sequence[float],
    ) -> None:
        super().__init__(name, help, labelnames)
        self.buckets = tuple(buckets)

    def _make_child(self, labels: dict) -> _HistogramChild:
        return _HistogramChild(labels, self.buckets)

    def observe(self, value: float, **labels) -> None:
        self.labels(**labels).observe(value)


class _NullChild:
    """Shared no-op child: every mutator is a pass."""

    labels: dict = {}
    value = 0
    sum = 0.0
    count = 0
    counts: list = []
    bounds: tuple = ()

    def inc(self, n=1, **labels) -> None:
        pass

    def dec(self, n=1, **labels) -> None:
        pass

    def set(self, value, **labels) -> None:
        pass

    def observe(self, value, **labels) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def quantiles(self, qs=(0.5, 0.9, 0.99)) -> dict:
        return {q: 0.0 for q in qs}


class _NullFamily(_NullChild):
    """Shared no-op family: ``labels()`` returns the no-op child."""

    name = ""
    help = ""
    labelnames: tuple = ()
    kind = "null"
    buckets: tuple = ()

    def labels(self, **labels) -> "_NullFamily":
        return self

    def children(self) -> list:
        return []


_NULL_FAMILY = _NullFamily()


class MetricsRegistry:
    """Named metric families, one process- or tracer-scoped instance.

    Families are created on first use and are idempotent: asking for an
    existing name returns the existing family (help/labels/buckets from
    the first creation win). A disabled registry hands back a shared
    no-op family, so callers never branch on :attr:`enabled` themselves
    unless they want to skip building label values.
    """

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled = enabled_from_env() if enabled is None else enabled
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- family accessors ----------------------------------------------------

    def _family(self, cls, name: str, help: str, labelnames, **kwargs):
        if not self.enabled:
            return _NULL_FAMILY
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = cls(name, help, tuple(labelnames), **kwargs)
                    self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._family(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._family(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        unit: str = "wall",
    ) -> Histogram:
        if buckets is None:
            buckets = default_buckets(unit)
        return self._family(
            Histogram, name, help, labelnames, buckets=buckets
        )

    # -- introspection -------------------------------------------------------

    def families(self) -> list[_Family]:
        with self._lock:
            return list(self._families.values())

    def series_count(self) -> int:
        """Total labeled series across all families (the cardinality a
        scrape pays for)."""
        return sum(len(f.children()) for f in self.families())

    def counter_values(self) -> dict[str, Union[int, float]]:
        """Flat ``{name: value}`` of every counter series. Unlabeled
        counters appear under their bare name (the historical
        ``Tracer.counters`` shape); labeled series are flattened as
        ``name{k=v,...}``."""
        values: dict[str, Union[int, float]] = {}
        for family in self.families():
            if family.kind != "counter":
                continue
            for child in family.children():
                if child.labels:
                    key = "%s{%s}" % (
                        family.name,
                        ",".join(
                            f"{k}={v}" for k, v in sorted(child.labels.items())
                        ),
                    )
                else:
                    key = family.name
                values[key] = child.value
        return values

    # -- records (JSONL snapshot / delta) ------------------------------------

    def collect(self) -> list[dict]:
        """Every series as a JSON-safe record (the JSONL export shape).

        Record kinds mirror the trace format: ``counter``, ``gauge``,
        and ``histogram`` (buckets + per-bucket counts + sum/count).
        """
        records: list[dict] = []
        for family in self.families():
            for child in family.children():
                record: dict = {"kind": family.kind, "name": family.name}
                if child.labels:
                    record["labels"] = dict(child.labels)
                if family.kind == "histogram":
                    with child._lock:
                        record["buckets"] = list(child.bounds)
                        record["counts"] = list(child.counts)
                        record["sum"] = child.sum
                        record["count"] = child.count
                else:
                    record["value"] = child.value
                records.append(record)
        records.sort(key=lambda r: (r["name"], sorted(r.get("labels", {}).items())))
        return records

    def load_record(self, record: dict) -> None:
        """Absorb one :meth:`collect`-shaped record (JSONL import)."""
        kind = record.get("kind")
        name = record["name"]
        labels = record.get("labels", {})
        if kind == "counter":
            family = self.counter(name, labelnames=tuple(labels))
            family.labels(**labels).inc(record["value"])
        elif kind == "gauge":
            family = self.gauge(name, labelnames=tuple(labels))
            family.labels(**labels).set(record["value"])
        elif kind == "histogram":
            family = self.histogram(
                name,
                labelnames=tuple(labels),
                buckets=record.get("buckets", ()),
            )
            child = family.labels(**labels)
            if isinstance(child, _HistogramChild):
                with child._lock:
                    counts = list(record.get("counts", ()))
                    if len(counts) == len(child.counts):
                        child.counts = [
                            have + got
                            for have, got in zip(child.counts, counts)
                        ]
                    child.sum += record.get("sum", 0.0)
                    child.count += record.get("count", 0)
        else:
            raise ValueError(f"unknown metric record kind: {kind!r}")

    def clear(self) -> None:
        with self._lock:
            self._families.clear()


def diff_records(before: list[dict], after: list[dict]) -> list[dict]:
    """The delta between two :meth:`MetricsRegistry.collect` snapshots.

    Counters and histograms subtract (series absent from ``before``
    count from zero); gauges are levels, so the delta carries the
    ``after`` value. Series that did not change are omitted — the
    delta export is meant for cheap periodic shipping.
    """

    def key(record: dict) -> tuple:
        return (
            record["name"],
            tuple(sorted(record.get("labels", {}).items())),
        )

    prior = {key(r): r for r in before}
    delta: list[dict] = []
    for record in after:
        old = prior.get(key(record))
        if record["kind"] == "gauge":
            if old is None or old.get("value") != record.get("value"):
                delta.append(dict(record))
            continue
        if record["kind"] == "counter":
            base = old.get("value", 0) if old else 0
            change = record["value"] - base
            if change:
                delta.append(dict(record, value=change))
            continue
        # histogram
        base_counts = old.get("counts", []) if old else []
        counts = list(record.get("counts", ()))
        if len(base_counts) != len(counts):
            base_counts = [0] * len(counts)
        changed = [c - b for c, b in zip(counts, base_counts)]
        if any(changed):
            delta.append(
                dict(
                    record,
                    counts=changed,
                    sum=record.get("sum", 0.0)
                    - (old.get("sum", 0.0) if old else 0.0),
                    count=record.get("count", 0)
                    - (old.get("count", 0) if old else 0),
                )
            )
    return delta


# -- Prometheus text exposition ----------------------------------------------


def _prom_name(name: str) -> str:
    """Metric names here use dots (``service.jobs_submitted``);
    Prometheus requires ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    sanitized = "".join(
        c if c.isalnum() or c in "_:" else "_" for c in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: Union[int, float]) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, int) else f"{value:.9g}"


def _prom_labels(labels: dict, extra: Optional[tuple] = None) -> str:
    pairs = sorted(labels.items())
    if extra is not None:
        pairs = pairs + [extra]
    if not pairs:
        return ""
    body = ",".join(
        '%s="%s"'
        % (
            _prom_name(str(k)),
            str(v).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n"),
        )
        for k, v in pairs
    )
    return "{%s}" % body


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (v0.0.4).

    Counters get a ``_total`` suffix, histograms the standard
    ``_bucket``/``_sum``/``_count`` triplet with cumulative ``le``
    buckets ending at ``+Inf``.
    """
    lines: list[str] = []
    for family in sorted(registry.families(), key=lambda f: f.name):
        base = _prom_name(family.name)
        if family.kind == "counter":
            name = base if base.endswith("_total") else base + "_total"
            lines.append(f"# HELP {name} {family.help or family.name}")
            lines.append(f"# TYPE {name} counter")
            for child in family.children():
                lines.append(
                    f"{name}{_prom_labels(child.labels)} "
                    f"{_prom_value(child.value)}"
                )
        elif family.kind == "gauge":
            lines.append(f"# HELP {base} {family.help or family.name}")
            lines.append(f"# TYPE {base} gauge")
            for child in family.children():
                lines.append(
                    f"{base}{_prom_labels(child.labels)} "
                    f"{_prom_value(child.value)}"
                )
        elif family.kind == "histogram":
            lines.append(f"# HELP {base} {family.help or family.name}")
            lines.append(f"# TYPE {base} histogram")
            for child in family.children():
                with child._lock:
                    counts = list(child.counts)
                    total = child.count
                    acc_sum = child.sum
                cumulative = 0
                for bound, bucket_count in zip(child.bounds, counts):
                    cumulative += bucket_count
                    lines.append(
                        f"{base}_bucket"
                        f"{_prom_labels(child.labels, ('le', f'{bound:g}'))} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{base}_bucket"
                    f"{_prom_labels(child.labels, ('le', '+Inf'))} {total}"
                )
                lines.append(
                    f"{base}_sum{_prom_labels(child.labels)} "
                    f"{_prom_value(acc_sum)}"
                )
                lines.append(
                    f"{base}_count{_prom_labels(child.labels)} {total}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


#: The process-wide default registry — the always-on metrics plane the
#: verification service records into when no tracer is installed.
DEFAULT = MetricsRegistry()
