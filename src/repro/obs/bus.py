"""The observability event bus: events, spans, counters, collectors.

Everything dynamic in the pipeline runs on simulated time, so every
event and span here is keyed off a ``SimKernel`` clock value passed in
by the instrumentation site (the bus itself never reads a clock — that
keeps it dependency-free and lets offline consumers replay traces).

The bus is a process-wide slot holding one :class:`Collector`. The
default is the shared no-op :data:`NULL` collector, whose ``enabled``
flag is ``False``; instrumentation sites guard their work behind that
flag, so a disabled run pays one attribute load and one branch per
site — negligible even inside the kernel's event dispatch loop.

Wall-clock durations are recorded alongside simulated ones on spans
because two pipeline phases (AFT extraction, verification) do real work
while simulated time stands still.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.obs import metrics as _metrics


@dataclass
class ObsEvent:
    """One point-in-time fact: something happened at simulated ``t``."""

    t: float
    category: str
    node: str = ""
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": "event",
            "t": self.t,
            "category": self.category,
            "node": self.node,
            "detail": self.detail,
        }


@dataclass
class Span:
    """A named interval of simulated time (plus its wall-clock cost).

    Spans of category ``"phase"`` nest: beginning one while another is
    open records the open one as ``parent``, which is how the timeline
    report aggregates per-phase durations. Non-phase spans (e.g. one
    boot span per pod) may overlap freely and attach to whichever phase
    was open when they began.
    """

    name: str
    category: str = "phase"
    node: str = ""
    t_start: float = 0.0
    t_end: Optional[float] = None
    wall_seconds: float = 0.0
    parent: Optional[str] = None
    #: Correlation attributes (e.g. ``{"job": 7}`` from a job scope).
    attrs: dict = field(default_factory=dict, compare=False)
    _wall_start: float = field(default=0.0, repr=False, compare=False)

    @property
    def closed(self) -> bool:
        return self.t_end is not None

    @property
    def sim_seconds(self) -> float:
        """Simulated duration (0.0 until the span is closed)."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        record = {
            "kind": "span",
            "name": self.name,
            "category": self.category,
            "node": self.node,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "wall_seconds": self.wall_seconds,
            "parent": self.parent,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class Collector:
    """The no-op collector interface; also the disabled implementation.

    Subclasses that actually record set ``enabled = True``.
    Instrumentation sites are expected to check ``bus.ACTIVE.enabled``
    before building event detail, so these method bodies exist only for
    callers that don't bother guarding.
    """

    enabled = False

    def emit(self, category: str, t: float, node: str = "", **detail) -> None:
        """Record a point event at simulated time ``t``."""

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the aggregate counter ``name``."""

    def begin(
        self,
        name: str,
        t: float,
        *,
        category: str = "phase",
        node: str = "",
    ) -> Span:
        """Open a span at simulated time ``t``."""
        return Span(name=name, category=category, node=node, t_start=t)

    def end(self, span: Span, t: float) -> Span:
        """Close ``span`` at simulated time ``t``."""
        return span


#: The shared disabled collector. Instrumentation compares cost against
#: this: one ``bus.ACTIVE.enabled`` load per site when it is installed.
NULL = Collector()


# -- trace-context propagation -------------------------------------------------
#
# One verification job flows submit -> admission -> queue -> worker ->
# engine build -> answer, crossing threads on the way. The worker wraps
# each execution in a job scope; every event and span the active tracer
# records on that thread carries the job id, which is how
# ``mfv obs waterfall <job_id>`` reassembles the per-job story.

_JOB_CONTEXT = threading.local()


@dataclass(frozen=True)
class JobContext:
    """The correlation context a worker thread runs a job under."""

    job_id: int
    priority: str = ""


def current_job() -> Optional[JobContext]:
    """The job context of the calling thread (None outside a scope)."""
    return getattr(_JOB_CONTEXT, "context", None)


@contextmanager
def job_scope(
    job_id: int,
    priority: str = "",
    registry: Optional[_metrics.MetricsRegistry] = None,
) -> Iterator[JobContext]:
    """Tag everything recorded on this thread with ``job_id``.

    With ``registry``, it also becomes the thread's ambient metrics
    registry for the scope (see :func:`metrics_registry`): the worker
    pool passes its service's private registry here, so engine builds
    and store lookups inside a job land on that service's plane.
    """
    context = JobContext(job_id=job_id, priority=priority)
    previous = getattr(_JOB_CONTEXT, "context", None)
    previous_registry = getattr(_JOB_CONTEXT, "registry", None)
    _JOB_CONTEXT.context = context
    if registry is not None:
        _JOB_CONTEXT.registry = registry
    try:
        yield context
    finally:
        _JOB_CONTEXT.context = previous
        _JOB_CONTEXT.registry = previous_registry


class Tracer(Collector):
    """A recording collector: events, spans, and aggregate counters.

    Counters live on a per-tracer :class:`~repro.obs.metrics.MetricsRegistry`
    (so a traced run exports histograms and gauges alongside its events);
    :attr:`counters` keeps the historical flat ``{name: value}`` view.
    """

    enabled = True

    def __init__(
        self, registry: Optional[_metrics.MetricsRegistry] = None
    ) -> None:
        self.events: list[ObsEvent] = []
        self.spans: list[Span] = []
        # A tracer's registry is always enabled: installing a tracer IS
        # the opt-in, independent of the process-default knob.
        self.registry = (
            registry
            if registry is not None
            else _metrics.MetricsRegistry(enabled=True)
        )
        self._phase_stack: list[Span] = []

    @property
    def counters(self) -> dict:
        """Flat counter view (migrated onto :attr:`registry`)."""
        return self.registry.counter_values()

    # -- recording ---------------------------------------------------------

    def emit(self, category: str, t: float, node: str = "", **detail) -> None:
        context = getattr(_JOB_CONTEXT, "context", None)
        if context is not None and "job" not in detail:
            detail["job"] = context.job_id
        self.events.append(
            ObsEvent(t=t, category=category, node=node, detail=detail)
        )

    def count(self, name: str, n: int = 1) -> None:
        self.registry.counter(name).labels().inc(n)

    def begin(
        self,
        name: str,
        t: float,
        *,
        category: str = "phase",
        node: str = "",
    ) -> Span:
        context = getattr(_JOB_CONTEXT, "context", None)
        span = Span(
            name=name,
            category=category,
            node=node,
            t_start=t,
            parent=self._phase_stack[-1].name if self._phase_stack else None,
            attrs={"job": context.job_id} if context is not None else {},
            _wall_start=time.perf_counter(),
        )
        self.spans.append(span)
        if category == "phase":
            self._phase_stack.append(span)
        return span

    def end(self, span: Span, t: float) -> Span:
        span.t_end = t
        span.wall_seconds = time.perf_counter() - span._wall_start
        if span in self._phase_stack:
            self._phase_stack.remove(span)
        return span

    # -- queries -----------------------------------------------------------

    def events_in(self, category: str) -> list[ObsEvent]:
        return [e for e in self.events if e.category == category]

    def phase_spans(self) -> list[Span]:
        return [s for s in self.spans if s.category == "phase" and s.closed]

    def __repr__(self) -> str:
        return (
            f"Tracer(events={len(self.events)}, spans={len(self.spans)}, "
            f"counters={len(self.counters)})"
        )


#: The currently installed collector. Hot paths read this attribute
#: directly (``bus.ACTIVE.enabled``) rather than calling a function.
ACTIVE: Collector = NULL


def active() -> Collector:
    """The currently installed collector (the no-op :data:`NULL` when
    tracing is off)."""
    return ACTIVE


def metrics_registry() -> _metrics.MetricsRegistry:
    """The metrics registry instrumentation should record into.

    Resolution order: a recording tracer's own registry (so traced
    runs export their metrics with the trace), then the calling
    thread's job-scope registry (a worker running a service job), then
    the process-wide :data:`repro.obs.metrics.DEFAULT` plane — enabled
    unless ``MFV_METRICS_ENABLED=0``. Hot paths call this once per
    operation, not per loop iteration.
    """
    registry = getattr(ACTIVE, "registry", None)
    if registry is not None:
        return registry
    registry = getattr(_JOB_CONTEXT, "registry", None)
    return registry if registry is not None else _metrics.DEFAULT


def install(collector: Collector) -> Collector:
    """Install ``collector`` process-wide; returns it for chaining."""
    global ACTIVE
    ACTIVE = collector
    return collector


def uninstall() -> None:
    """Restore the no-op collector."""
    install(NULL)


@contextmanager
def tracing(collector: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install a :class:`Tracer` for the duration of a ``with`` block.

    The previously installed collector is restored on exit, so nested
    or sequential traced runs cannot leak instrumentation into later
    untraced ones.
    """
    tracer = collector if collector is not None else Tracer()
    previous = ACTIVE
    install(tracer)
    try:
        yield tracer
    finally:
        install(previous)
