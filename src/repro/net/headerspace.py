"""Rectangle-based header-space algebra.

A *rect* is a cartesian product of per-field :class:`IntervalSet`s over
the classic 5-tuple (src ip, dst ip, ip protocol, src port, dst port). A
:class:`HeaderSpace` is a finite union of rects. This gives the verifier
exact set algebra over packet headers — the same role BDDs play inside
Batfish — with an implementation that is easy to audit and to test with
hypothesis.

Only difference/complement produce non-trivial rect decompositions; they
use the standard "peel one field at a time" expansion, which keeps rects
disjoint enough for our workloads (FIBs match only on dst ip; ACLs add a
few more dimensions).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Optional

from repro.net.addr import Prefix, format_ipv4
from repro.net.intervals import IntervalSet


class Field(enum.Enum):
    """Packet header fields modelled by the verifier."""

    SRC_IP = "src_ip"
    DST_IP = "dst_ip"
    IP_PROTO = "ip_proto"
    SRC_PORT = "src_port"
    DST_PORT = "dst_port"


_FIELD_WIDTH = {
    Field.SRC_IP: 32,
    Field.DST_IP: 32,
    Field.IP_PROTO: 8,
    Field.SRC_PORT: 16,
    Field.DST_PORT: 16,
}

_FIELDS = tuple(Field)


def _full(field_: Field) -> IntervalSet:
    return IntervalSet.full(_FIELD_WIDTH[field_])


@dataclass(frozen=True)
class Rect:
    """A cartesian product of per-field value sets.

    Unconstrained fields cover their whole domain. A rect with any empty
    field is the empty set and is normalized away by :class:`HeaderSpace`.
    """

    src_ip: IntervalSet = field(default_factory=lambda: _full(Field.SRC_IP))
    dst_ip: IntervalSet = field(default_factory=lambda: _full(Field.DST_IP))
    ip_proto: IntervalSet = field(default_factory=lambda: _full(Field.IP_PROTO))
    src_port: IntervalSet = field(default_factory=lambda: _full(Field.SRC_PORT))
    dst_port: IntervalSet = field(default_factory=lambda: _full(Field.DST_PORT))

    def get(self, field_: Field) -> IntervalSet:
        return getattr(self, field_.value)

    def with_field(self, field_: Field, values: IntervalSet) -> "Rect":
        return replace(self, **{field_.value: values})

    def is_empty(self) -> bool:
        return any(self.get(f).is_empty() for f in _FIELDS)

    def is_full(self) -> bool:
        return all(self.get(f) == _full(f) for f in _FIELDS)

    def intersect(self, other: "Rect") -> "Rect":
        return Rect(
            self.src_ip & other.src_ip,
            self.dst_ip & other.dst_ip,
            self.ip_proto & other.ip_proto,
            self.src_port & other.src_port,
            self.dst_port & other.dst_port,
        )

    def subtract(self, other: "Rect") -> list["Rect"]:
        """``self - other`` as a list of disjoint rects."""
        overlap = self.intersect(other)
        if overlap.is_empty():
            return [self]
        pieces: list[Rect] = []
        remainder = self
        for field_ in _FIELDS:
            keep = remainder.get(field_) - other.get(field_)
            if keep:
                pieces.append(remainder.with_field(field_, keep))
            shared = remainder.get(field_) & other.get(field_)
            remainder = remainder.with_field(field_, shared)
            if remainder.is_empty():
                break
        return [p for p in pieces if not p.is_empty()]

    def contains_packet(self, packet: "Packet") -> bool:
        return (
            packet.src_ip in self.src_ip
            and packet.dst_ip in self.dst_ip
            and packet.ip_proto in self.ip_proto
            and packet.src_port in self.src_port
            and packet.dst_port in self.dst_port
        )

    def sample(self) -> "Packet":
        return Packet(
            src_ip=self.src_ip.sample(),
            dst_ip=self.dst_ip.sample(),
            ip_proto=self.ip_proto.sample(),
            src_port=self.src_port.sample(),
            dst_port=self.dst_port.sample(),
        )

    def __str__(self) -> str:
        parts = []
        for field_ in _FIELDS:
            values = self.get(field_)
            if values != _full(field_):
                parts.append(f"{field_.value}={values!r}")
        return "Rect(" + ", ".join(parts) + ")" if parts else "Rect(*)"


@dataclass(frozen=True, order=True)
class Packet:
    """A single concrete packet header — a witness for a header space."""

    dst_ip: int
    src_ip: int = 0
    ip_proto: int = 6
    src_port: int = 49152
    dst_port: int = 80

    def __str__(self) -> str:
        return (
            f"{format_ipv4(self.src_ip)}:{self.src_port} -> "
            f"{format_ipv4(self.dst_ip)}:{self.dst_port} proto={self.ip_proto}"
        )


class HeaderSpace:
    """A finite union of :class:`Rect` objects (not necessarily disjoint)."""

    __slots__ = ("_rects",)

    def __init__(self, rects: Iterable[Rect] = ()) -> None:
        self._rects: tuple[Rect, ...] = tuple(
            r for r in rects if not r.is_empty()
        )

    # -- constructors -----------------------------------------------------

    @classmethod
    def empty(cls) -> "HeaderSpace":
        return cls(())

    @classmethod
    def full(cls) -> "HeaderSpace":
        return cls((Rect(),))

    @classmethod
    def dst_prefix(cls, prefix: Prefix) -> "HeaderSpace":
        return cls((Rect(dst_ip=IntervalSet.from_prefix(prefix)),))

    @classmethod
    def dst_set(cls, values: IntervalSet) -> "HeaderSpace":
        return cls((Rect(dst_ip=values),))

    # -- queries ----------------------------------------------------------

    @property
    def rects(self) -> tuple[Rect, ...]:
        return self._rects

    def is_empty(self) -> bool:
        return not self._rects

    def __bool__(self) -> bool:
        return bool(self._rects)

    def contains_packet(self, packet: Packet) -> bool:
        return any(r.contains_packet(packet) for r in self._rects)

    def dst_values(self) -> IntervalSet:
        """Projection onto the destination-IP field."""
        out = IntervalSet.empty()
        for rect in self._rects:
            out = out | rect.dst_ip
        return out

    def sample(self) -> Optional[Packet]:
        if not self._rects:
            return None
        return min(r.sample() for r in self._rects)

    # -- algebra ----------------------------------------------------------

    def union(self, other: "HeaderSpace") -> "HeaderSpace":
        return HeaderSpace(self._rects + other._rects)

    def intersection(self, other: "HeaderSpace") -> "HeaderSpace":
        out: list[Rect] = []
        for a in self._rects:
            for b in other._rects:
                piece = a.intersect(b)
                if not piece.is_empty():
                    out.append(piece)
        return HeaderSpace(out)

    def difference(self, other: "HeaderSpace") -> "HeaderSpace":
        remaining = list(self._rects)
        for sub in other._rects:
            nxt: list[Rect] = []
            for rect in remaining:
                nxt.extend(rect.subtract(sub))
            remaining = nxt
            if not remaining:
                break
        return HeaderSpace(remaining)

    def complement(self) -> "HeaderSpace":
        return HeaderSpace.full() - self

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    def equivalent(self, other: "HeaderSpace") -> bool:
        """Set equality (representation-independent)."""
        return (self - other).is_empty() and (other - self).is_empty()

    def __iter__(self) -> Iterator[Rect]:
        return iter(self._rects)

    def __repr__(self) -> str:
        return f"HeaderSpace[{len(self._rects)} rects]"
