"""IPv4 addresses and prefixes.

These are deliberately small, hashable value types rather than wrappers
around :mod:`ipaddress`; the emulator and verifier manipulate millions of
routes, and a plain ``int`` with helpers is both faster and easier to feed
into the interval algebra in :mod:`repro.net.intervals`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache

MAX_IPV4 = 0xFFFFFFFF

_IPV4_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


class AddressError(ValueError):
    """Raised for malformed addresses or prefixes."""


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad ``text`` into a 32-bit integer.

    >>> parse_ipv4("10.0.0.1")
    167772161
    """
    match = _IPV4_RE.match(text.strip())
    if match is None:
        raise AddressError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in match.groups():
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format a 32-bit integer as a dotted quad.

    >>> format_ipv4(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= MAX_IPV4:
        raise AddressError(f"IPv4 value out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@lru_cache(maxsize=None)
def prefix_mask(length: int) -> int:
    """Return the network mask for a prefix of ``length`` bits."""
    if not 0 <= length <= 32:
        raise AddressError(f"prefix length out of range: {length}")
    if length == 0:
        return 0
    return (MAX_IPV4 << (32 - length)) & MAX_IPV4


@dataclass(frozen=True, order=True)
class IPv4Address:
    """A single IPv4 address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= MAX_IPV4:
            raise AddressError(f"IPv4 value out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        return cls(parse_ipv4(text))

    def __str__(self) -> str:
        return format_ipv4(self.value)

    def __int__(self) -> int:
        return self.value


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix (network address + mask length).

    The network address is canonicalized: host bits must be zero, or
    :class:`AddressError` is raised. Use :meth:`containing` to build the
    canonical prefix covering an arbitrary address.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= MAX_IPV4:
            raise AddressError(f"network out of range: {self.network}")
        if self.network & ~prefix_mask(self.length) & MAX_IPV4:
            raise AddressError(
                f"host bits set in {format_ipv4(self.network)}/{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` (or a bare address, meaning /32)."""
        text = text.strip()
        if "/" in text:
            addr_text, _, len_text = text.partition("/")
            try:
                length = int(len_text)
            except ValueError as exc:
                raise AddressError(f"malformed prefix length: {text!r}") from exc
        else:
            addr_text, length = text, 32
        return cls(parse_ipv4(addr_text), length)

    @classmethod
    def containing(cls, address: int, length: int) -> "Prefix":
        """The canonical ``length``-bit prefix containing ``address``."""
        return cls(address & prefix_mask(length), length)

    @property
    def mask(self) -> int:
        return prefix_mask(self.length)

    @property
    def first(self) -> int:
        """Lowest address covered by this prefix."""
        return self.network

    @property
    def last(self) -> int:
        """Highest address covered by this prefix."""
        return self.network | (~self.mask & MAX_IPV4)

    @property
    def num_addresses(self) -> int:
        return self.last - self.first + 1

    def contains(self, address: int) -> bool:
        return (address & self.mask) == self.network

    def contains_prefix(self, other: "Prefix") -> bool:
        """True when ``other`` is equal to or more specific than us."""
        return other.length >= self.length and self.contains(other.network)

    def overlaps(self, other: "Prefix") -> bool:
        return self.contains(other.network) or other.contains(self.network)

    def subnets(self) -> tuple["Prefix", "Prefix"]:
        """Split into the two immediate children (length + 1)."""
        if self.length >= 32:
            raise AddressError(f"cannot split a /32: {self}")
        child_len = self.length + 1
        low = Prefix(self.network, child_len)
        high = Prefix(self.network | (1 << (32 - child_len)), child_len)
        return low, high

    def supernet(self) -> "Prefix":
        """The parent prefix one bit shorter."""
        if self.length == 0:
            raise AddressError("0.0.0.0/0 has no supernet")
        parent_len = self.length - 1
        return Prefix(self.network & prefix_mask(parent_len), parent_len)

    def hosts(self) -> range:
        """Iterate over usable host addresses.

        For /31 (point-to-point, RFC 3021) and /32, every address is
        usable; otherwise network and broadcast addresses are excluded.
        """
        if self.length >= 31:
            return range(self.first, self.last + 1)
        return range(self.first + 1, self.last)

    def __str__(self) -> str:
        return f"{format_ipv4(self.network)}/{self.length}"


def interface_prefix(address: int, length: int) -> Prefix:
    """The connected subnet implied by an interface address."""
    return Prefix.containing(address, length)
