"""Sets of 32-bit integers represented as disjoint closed intervals.

:class:`IntervalSet` is the workhorse of the verification engine: every
header field (destination address, source address, ports, protocol) is a
set of unsigned integers, and the engine's set algebra (union,
intersection, difference, complement) reduces to interval arithmetic.

Intervals are closed (``lo <= x <= hi``) and canonicalized: stored sorted,
non-overlapping, and non-adjacent (adjacent runs are merged), so equality
on the representation is equality on the set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.net.addr import MAX_IPV4, Prefix


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[lo, hi]`` of unsigned integers."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")
        if self.lo < 0:
            raise ValueError(f"negative interval bound: {self.lo}")

    def __len__(self) -> int:
        return self.hi - self.lo + 1

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi

    def touches(self, other: "Interval") -> bool:
        """Overlapping or directly adjacent (merge-able)."""
        return self.lo <= other.hi + 1 and other.lo <= self.hi + 1

    def __str__(self) -> str:
        if self.lo == self.hi:
            return str(self.lo)
        return f"{self.lo}-{self.hi}"


class IntervalSet:
    """An immutable set of unsigned integers as disjoint intervals."""

    __slots__ = ("_ivals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._ivals: tuple[Interval, ...] = _normalize(intervals)

    # -- constructors ---------------------------------------------------

    @classmethod
    def empty(cls) -> "IntervalSet":
        return _EMPTY

    @classmethod
    def of(cls, *values: int) -> "IntervalSet":
        return cls(Interval(v, v) for v in values)

    @classmethod
    def span(cls, lo: int, hi: int) -> "IntervalSet":
        return cls((Interval(lo, hi),))

    @classmethod
    def full(cls, width: int = 32) -> "IntervalSet":
        """The universe of ``width``-bit values."""
        return cls.span(0, (1 << width) - 1)

    @classmethod
    def from_prefix(cls, prefix: Prefix) -> "IntervalSet":
        return cls.span(prefix.first, prefix.last)

    @classmethod
    def from_prefixes(cls, prefixes: Iterable[Prefix]) -> "IntervalSet":
        return cls(Interval(p.first, p.last) for p in prefixes)

    # -- queries --------------------------------------------------------

    @property
    def intervals(self) -> tuple[Interval, ...]:
        return self._ivals

    def is_empty(self) -> bool:
        return not self._ivals

    def __bool__(self) -> bool:
        return bool(self._ivals)

    def __len__(self) -> int:
        """Number of integers (not intervals) in the set."""
        return sum(len(ival) for ival in self._ivals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivals)

    def __contains__(self, value: int) -> bool:
        lo, hi = 0, len(self._ivals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            ival = self._ivals[mid]
            if value < ival.lo:
                hi = mid - 1
            elif value > ival.hi:
                lo = mid + 1
            else:
                return True
        return False

    def min(self) -> int:
        if not self._ivals:
            raise ValueError("min() of empty IntervalSet")
        return self._ivals[0].lo

    def max(self) -> int:
        if not self._ivals:
            raise ValueError("max() of empty IntervalSet")
        return self._ivals[-1].hi

    def sample(self) -> int:
        """An arbitrary representative element (the smallest)."""
        return self.min()

    def issubset(self, other: "IntervalSet") -> bool:
        return (self - other).is_empty()

    def isdisjoint(self, other: "IntervalSet") -> bool:
        return (self & other).is_empty()

    # -- algebra --------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        if not self._ivals:
            return other
        if not other._ivals:
            return self
        return IntervalSet(self._ivals + other._ivals)

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        result: list[Interval] = []
        i = j = 0
        a, b = self._ivals, other._ivals
        while i < len(a) and j < len(b):
            lo = max(a[i].lo, b[j].lo)
            hi = min(a[i].hi, b[j].hi)
            if lo <= hi:
                result.append(Interval(lo, hi))
            if a[i].hi < b[j].hi:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        result: list[Interval] = []
        j = 0
        b = other._ivals
        for ival in self._ivals:
            lo = ival.lo
            while j < len(b) and b[j].hi < lo:
                j += 1
            k = j
            while k < len(b) and b[k].lo <= ival.hi:
                if b[k].lo > lo:
                    result.append(Interval(lo, b[k].lo - 1))
                lo = max(lo, b[k].hi + 1)
                if lo > ival.hi:
                    break
                k += 1
            if lo <= ival.hi:
                result.append(Interval(lo, ival.hi))
        return IntervalSet(result)

    def complement(self, width: int = 32) -> "IntervalSet":
        return IntervalSet.full(width) - self

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._ivals == other._ivals

    def __hash__(self) -> int:
        return hash(self._ivals)

    # -- conversions ----------------------------------------------------

    def to_prefixes(self) -> list[Prefix]:
        """Decompose into a minimal list of aligned CIDR prefixes."""
        prefixes: list[Prefix] = []
        for ival in self._ivals:
            prefixes.extend(_interval_to_prefixes(ival.lo, ival.hi))
        return prefixes

    def __repr__(self) -> str:
        body = ", ".join(str(ival) for ival in self._ivals)
        return f"IntervalSet({{{body}}})"


def _normalize(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
    ivals = sorted(intervals)
    merged: list[Interval] = []
    for ival in ivals:
        if merged and merged[-1].touches(ival):
            last = merged[-1]
            merged[-1] = Interval(last.lo, max(last.hi, ival.hi))
        else:
            merged.append(ival)
    return tuple(merged)


def _interval_to_prefixes(lo: int, hi: int) -> Iterator[Prefix]:
    """Greedy CIDR decomposition of ``[lo, hi]``."""
    while lo <= hi:
        # Largest aligned block starting at lo that fits within hi.
        max_align = lo & -lo if lo else 1 << 32
        size = max_align
        while size > hi - lo + 1:
            size //= 2
        length = 32 - size.bit_length() + 1
        yield Prefix(lo, length)
        lo += size
        if lo > MAX_IPV4:
            break


_EMPTY = IntervalSet(())


def atoms(sets: Sequence[IntervalSet], width: int = 32) -> list[IntervalSet]:
    """Partition the ``width``-bit universe into equivalence atoms.

    Returns disjoint :class:`IntervalSet` pieces such that every input set
    is a union of pieces — the "atomic predicates" used by the verifier
    to make exhaustive-per-packet analysis finite. Boundaries are simply
    the endpoints of every interval in every input set.
    """
    universe_hi = (1 << width) - 1
    cuts = {0, universe_hi + 1}
    for s in sets:
        for ival in s:
            cuts.add(ival.lo)
            cuts.add(ival.hi + 1)
    ordered = sorted(cuts)
    pieces: list[IntervalSet] = []
    for lo, nxt in zip(ordered, ordered[1:]):
        if lo <= universe_hi:
            pieces.append(IntervalSet.span(lo, min(nxt - 1, universe_hi)))
    return pieces
