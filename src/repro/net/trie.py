"""Binary trie keyed by IPv4 prefixes with longest-prefix-match lookup.

Used both by the emulated routers (FIB lookup) and by the verifier
(collecting the network-wide prefix universe). Values are arbitrary; one
value per exact prefix.
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, TypeVar

from repro.net.addr import Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


#: Shared placeholder for absent children in the lpm_intervals DFS: a
#: valueless leaf, so the frame just emits its range with the inherited
#: value.
_EMPTY_NODE: _Node = _Node()


class PrefixTrie(Generic[V]):
    """A mapping from :class:`Prefix` to values with LPM queries."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, prefix: Prefix) -> bool:
        return self.get(prefix) is not None or self._has_exact(prefix)

    # -- mutation --------------------------------------------------------

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value at ``prefix``."""
        node = self._root
        for bit in _bits(prefix):
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def remove(self, prefix: Prefix) -> Optional[V]:
        """Remove the value at exactly ``prefix``; returns it, or None."""
        path: list[tuple[_Node[V], int]] = []
        node = self._root
        for bit in _bits(prefix):
            child = node.children[bit]
            if child is None:
                return None
            path.append((node, bit))
            node = child
        if not node.has_value:
            return None
        value = node.value
        node.value = None
        node.has_value = False
        self._size -= 1
        # Prune now-empty branches.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            assert child is not None
            if child.has_value or any(child.children):
                break
            parent.children[bit] = None
        return value

    def clear(self) -> None:
        self._root = _Node()
        self._size = 0

    # -- queries ---------------------------------------------------------

    def get(self, prefix: Prefix) -> Optional[V]:
        """The value stored at exactly ``prefix``, or None."""
        node = self._root
        for bit in _bits(prefix):
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node.value if node.has_value else None

    def _has_exact(self, prefix: Prefix) -> bool:
        node = self._root
        for bit in _bits(prefix):
            child = node.children[bit]
            if child is None:
                return False
            node = child
        return node.has_value

    def longest_match(self, address: int) -> Optional[tuple[Prefix, V]]:
        """Longest-prefix match for ``address``."""
        best: Optional[tuple[Prefix, V]] = None
        node = self._root
        depth = 0
        if node.has_value:
            best = (Prefix(0, 0), node.value)  # type: ignore[arg-type]
        while depth < 32:
            bit = (address >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            depth += 1
            if node.has_value:
                matched = Prefix.containing(address, depth)
                best = (matched, node.value)  # type: ignore[arg-type]
        return best

    def covering(self, prefix: Prefix) -> Iterator[tuple[Prefix, V]]:
        """All entries whose prefix contains ``prefix``, shortest first."""
        node = self._root
        if node.has_value:
            yield Prefix(0, 0), node.value  # type: ignore[misc]
        depth = 0
        for bit in _bits(prefix):
            child = node.children[bit]
            if child is None:
                return
            node = child
            depth += 1
            if node.has_value:
                yield Prefix.containing(prefix.network, depth), node.value  # type: ignore[misc]

    def lpm_intervals(self) -> list[tuple[int, int, Optional[V]]]:
        """Flatten the trie into LPM-effective address ranges.

        Returns ``(lo, hi, value)`` triples, sorted and covering the
        whole 32-bit space, where ``value`` is what
        :meth:`longest_match` would return for every address in
        ``[lo, hi]`` (``None`` where nothing matches). Adjacent ranges
        with the same value are merged. One traversal compiles the trie
        into a structure that answers every possible lookup — the basis
        of the verifier's per-device compiled LPM index.
        """
        out: list[tuple[int, int, Optional[V]]] = []

        def emit(lo: int, hi: int, value: Optional[V]) -> None:
            if out and out[-1][2] is value and out[-1][1] + 1 == lo:
                out[-1] = (out[-1][0], hi, value)
            else:
                out.append((lo, hi, value))

        # Iterative DFS; each frame covers [network, network + size - 1].
        stack: list[tuple[_Node[V], int, int, Optional[V]]] = [
            (self._root, 0, 0, None)
        ]
        while stack:
            node, network, depth, inherited = stack.pop()
            value = node.value if node.has_value else inherited
            left, right = node.children
            if (left is None and right is None) or depth >= 32:
                emit(network, network + (1 << (32 - depth)) - 1, value)
                continue
            half = 1 << (32 - depth - 1)
            # Push right first so ranges pop in ascending order.
            if right is not None:
                stack.append((right, network | half, depth + 1, value))
            else:
                stack.append(
                    (_EMPTY_NODE, network | half, depth + 1, value)
                )
            if left is not None:
                stack.append((left, network, depth + 1, value))
            else:
                stack.append((_EMPTY_NODE, network, depth + 1, value))
        return out

    def items(self) -> Iterator[tuple[Prefix, V]]:
        """All (prefix, value) pairs in lexicographic bit order."""
        yield from self._walk(self._root, 0, 0)

    def keys(self) -> Iterator[Prefix]:
        for prefix, _ in self.items():
            yield prefix

    def values(self) -> Iterator[V]:
        for _, value in self.items():
            yield value

    def _walk(
        self, node: _Node[V], network: int, depth: int
    ) -> Iterator[tuple[Prefix, V]]:
        if node.has_value:
            yield Prefix(network, depth), node.value  # type: ignore[misc]
        if depth >= 32:
            return
        left, right = node.children
        if left is not None:
            yield from self._walk(left, network, depth + 1)
        if right is not None:
            yield from self._walk(right, network | (1 << (31 - depth)), depth + 1)


def _bits(prefix: Prefix) -> Iterator[int]:
    for i in range(prefix.length):
        yield (prefix.network >> (31 - i)) & 1
