"""Core networking primitives.

This package provides the value types everything else in :mod:`repro` is
built on: IPv4 addresses and prefixes (:mod:`repro.net.addr`), sets of
32-bit integers as disjoint closed intervals (:mod:`repro.net.intervals`),
longest-prefix-match tries (:mod:`repro.net.trie`), and a rectangle-based
header-space algebra used by the verification engine
(:mod:`repro.net.headerspace`).
"""

from repro.net.addr import (
    IPv4Address,
    Prefix,
    format_ipv4,
    parse_ipv4,
)
from repro.net.headerspace import Field, HeaderSpace, Rect
from repro.net.intervals import Interval, IntervalSet
from repro.net.trie import PrefixTrie

__all__ = [
    "Field",
    "HeaderSpace",
    "IPv4Address",
    "Interval",
    "IntervalSet",
    "Prefix",
    "PrefixTrie",
    "Rect",
    "format_ipv4",
    "parse_ipv4",
]
