"""Kubernetes-like orchestration and the KNE-style deployment layer.

This package is the substitute for the paper's Kubernetes + KNE
substrate: a cluster resource model with a bin-packing scheduler
(:mod:`repro.kube.scheduler`), pod lifecycle with a boot-time model
(:mod:`repro.kube.pod`), the inter-pod routed fabric that control-plane
sessions ride over (:mod:`repro.kube.fabric`), and the deployment
orchestrator that brings a topology up (:mod:`repro.kube.kne`).
"""

from repro.kube.cluster import KubeCluster, KubeNode, e2_standard_32
from repro.kube.fabric import Fabric
from repro.kube.kne import ConvergenceTimeout, DeployTimeout, KneDeployment
from repro.kube.pod import Pod, PodPhase
from repro.kube.scheduler import Scheduler, UnschedulableError

__all__ = [
    "ConvergenceTimeout",
    "DeployTimeout",
    "Fabric",
    "KneDeployment",
    "KubeCluster",
    "KubeNode",
    "Pod",
    "PodPhase",
    "Scheduler",
    "UnschedulableError",
    "e2_standard_32",
]
