"""Cluster and node resource model.

Capacity numbers mirror the paper's testbed: a single ``e2-standard-32``
(32 vCPU / 128 GB) hosts up to 60 Arista containers at the documented
0.5 vCPU / 1 GB per router, and a 17-node cluster carries a 1,000-device
topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class KubeNode:
    """One Kubernetes worker node."""

    name: str
    vcpus: float = 32.0
    memory_gb: float = 128.0
    # Kubelet/system reservation, not available to pods.
    system_reserved_cpu: float = 2.0
    system_reserved_memory_gb: float = 8.0
    allocated_cpu: float = 0.0
    allocated_memory_gb: float = 0.0

    @property
    def allocatable_cpu(self) -> float:
        return self.vcpus - self.system_reserved_cpu

    @property
    def allocatable_memory_gb(self) -> float:
        return self.memory_gb - self.system_reserved_memory_gb

    @property
    def free_cpu(self) -> float:
        return self.allocatable_cpu - self.allocated_cpu

    @property
    def free_memory_gb(self) -> float:
        return self.allocatable_memory_gb - self.allocated_memory_gb

    def fits(self, cpu: float, memory_gb: float) -> bool:
        return cpu <= self.free_cpu + 1e-9 and memory_gb <= self.free_memory_gb + 1e-9

    def allocate(self, cpu: float, memory_gb: float) -> None:
        if not self.fits(cpu, memory_gb):
            raise ValueError(
                f"{self.name}: cannot allocate cpu={cpu} mem={memory_gb}GB "
                f"(free cpu={self.free_cpu:.2f}, mem={self.free_memory_gb:.2f}GB)"
            )
        self.allocated_cpu += cpu
        self.allocated_memory_gb += memory_gb

    def release(self, cpu: float, memory_gb: float) -> None:
        self.allocated_cpu = max(0.0, self.allocated_cpu - cpu)
        self.allocated_memory_gb = max(0.0, self.allocated_memory_gb - memory_gb)


def e2_standard_32(name: str = "node-1") -> KubeNode:
    """The machine shape the paper's single-node experiments used."""
    return KubeNode(name=name, vcpus=32.0, memory_gb=128.0)


@dataclass
class KubeCluster:
    """A set of worker nodes."""

    nodes: list[KubeNode] = field(default_factory=lambda: [e2_standard_32()])

    @classmethod
    def of_size(cls, count: int, *, vcpus: float = 32.0, memory_gb: float = 128.0) -> "KubeCluster":
        return cls(
            nodes=[
                KubeNode(name=f"node-{i + 1}", vcpus=vcpus, memory_gb=memory_gb)
                for i in range(count)
            ]
        )

    @property
    def total_allocatable_cpu(self) -> float:
        return sum(n.allocatable_cpu for n in self.nodes)

    @property
    def total_allocatable_memory_gb(self) -> float:
        return sum(n.allocatable_memory_gb for n in self.nodes)

    def node(self, name: str) -> KubeNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    def __len__(self) -> int:
        return len(self.nodes)
