"""The routed inter-pod fabric.

Implements :class:`repro.protocols.transport.ControlTransport` by
actually forwarding each control-plane datagram through the emulated
dataplane: at every hop the current FIB decides the next interface, so a
BGP OPEN between loopbacks is only deliverable once the IGP has
converged — and a mid-run link cut really does strand in-flight
sessions. This is the property that makes the emulation's convergence
behaviour (ordering, BGP-after-IGP, hold-timer detection) real rather
than assumed.

External endpoints (BGP route injectors standing in for production
peers) attach to a specific router port's subnet, exactly like a peer
plugged into an edge interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.net.addr import format_ipv4
from repro.rib.fib import FibAction
from repro.sim.kernel import SimKernel

if TYPE_CHECKING:
    from repro.vendors.base import RouterOS

TransportHandler = Callable[[int, int, Any], None]

_TTL = 64
_PER_HOP_LATENCY = 0.0005
_PER_HOP_JITTER = 0.001


@dataclass
class _External:
    name: str
    gateway_node: str
    gateway_port: str
    ip: int
    handler: Optional[TransportHandler] = None


class Fabric:
    """Hop-by-hop datagram delivery over emulated FIBs."""

    def __init__(self, kernel: SimKernel) -> None:
        self.kernel = kernel
        self.routers: dict[str, "RouterOS"] = {}
        # (node, port name) -> (peer node, peer port name)
        self.wiring: dict[tuple[str, str], tuple[str, str]] = {}
        self._listeners: dict[tuple[str, int], TransportHandler] = {}
        self._externals: dict[str, _External] = {}
        self._externals_by_attachment: dict[tuple[str, str, int], _External] = {}
        # Per-flow serialization: a (src, dst) pair is one TCP-like
        # session; its messages occupy the pipe for their wire cost.
        self._flow_busy_until: dict[tuple[int, int], float] = {}
        self.datagrams_sent = 0
        self.datagrams_delivered = 0
        self.datagrams_dropped = 0

    # -- registration ------------------------------------------------------

    def add_router(self, router: "RouterOS") -> None:
        self.routers[router.name] = router

    def add_wire(self, a_node: str, a_port: str, z_node: str, z_port: str) -> None:
        self.wiring[(a_node, a_port)] = (z_node, z_port)
        self.wiring[(z_node, z_port)] = (a_node, a_port)

    def register(self, node: str, ip: int, handler: TransportHandler) -> None:
        self._listeners[(node, ip)] = handler

    def unregister(self, node: str, ip: int) -> None:
        self._listeners.pop((node, ip), None)

    def attach_external(
        self,
        name: str,
        gateway_node: str,
        gateway_port: str,
        ip: int,
        handler: TransportHandler,
    ) -> None:
        """Attach an external speaker to a router port's subnet."""
        external = _External(name, gateway_node, gateway_port, ip, handler)
        self._externals[name] = external
        self._externals_by_attachment[(gateway_node, gateway_port, ip)] = external
        # The edge port now has something plugged into it: bring the
        # carrier up even though no point-to-point channel is modeled.
        gateway = self.routers.get(gateway_node)
        if gateway is not None:
            port = gateway.port(gateway_port)
            port.forced_up = True
            port.set_link_state(True)

    # -- sending ---------------------------------------------------------------

    def send(self, src_node: str, src_ip: int, dst_ip: int, payload: Any) -> bool:
        """Route a datagram from a router; False if no path exists now."""
        self.datagrams_sent += 1
        plan = self._trace(src_node, dst_ip)
        if plan is None:
            self.datagrams_dropped += 1
            return False
        deliver, hops = plan
        delay = self._delivery_delay(src_ip, dst_ip, hops, payload)
        self.kernel.schedule(
            delay,
            lambda: deliver(src_ip, dst_ip, payload),
            label=f"fabric:{format_ipv4(src_ip)}->{format_ipv4(dst_ip)}",
        )
        self.datagrams_delivered += 1
        return True

    def send_external(self, name: str, dst_ip: int, payload: Any) -> bool:
        """Route a datagram originated by an external endpoint."""
        external = self._externals.get(name)
        if external is None:
            raise KeyError(f"unknown external endpoint: {name}")
        self.datagrams_sent += 1
        plan = self._trace(external.gateway_node, dst_ip)
        if plan is None:
            self.datagrams_dropped += 1
            return False
        deliver, hops = plan
        delay = self._delivery_delay(external.ip, dst_ip, hops + 1, payload)
        self.kernel.schedule(
            delay,
            lambda: deliver(external.ip, dst_ip, payload),
            label=f"fabric-ext:{name}",
        )
        self.datagrams_delivered += 1
        return True

    def _latency(self, hops: int) -> float:
        return sum(
            self.kernel.jitter(_PER_HOP_LATENCY, _PER_HOP_JITTER)
            for _ in range(max(hops, 1))
        )

    def _delivery_delay(
        self, src_ip: int, dst_ip: int, hops: int, payload: Any
    ) -> float:
        """Propagation latency plus per-flow serialization.

        Messages between one (src, dst) pair share a session: each
        occupies the pipe for its ``wire_cost``, so a full BGP table
        takes table-size/throughput seconds end to end — the dominant
        term in the paper's convergence measurements.
        """
        latency = self._latency(hops)
        wire_cost = getattr(payload, "wire_cost", 0.0)
        key = (src_ip, dst_ip)
        start = max(self.kernel.now, self._flow_busy_until.get(key, 0.0))
        finish = start + wire_cost
        self._flow_busy_until[key] = finish
        return (finish - self.kernel.now) + latency

    def busy(self) -> bool:
        """Any session still draining a serialized backlog?

        Convergence detection must not declare the dataplane stable
        while a full-table transfer is still on the wire — the gap
        between two large chunks can exceed any quiet window.
        """
        now = self.kernel.now
        stale = [k for k, until in self._flow_busy_until.items() if until <= now]
        for key in stale:
            del self._flow_busy_until[key]
        return bool(self._flow_busy_until)

    # -- forwarding ----------------------------------------------------------------

    def _trace(
        self, start_node: str, dst_ip: int
    ) -> Optional[tuple[TransportHandler, int]]:
        """Walk FIBs from ``start_node``; returns (delivery fn, hop count)."""
        node = start_node
        for hops in range(_TTL):
            router = self.routers.get(node)
            if router is None:
                return None
            listener = self._listeners.get((node, dst_ip))
            if listener is not None and router.owns_address(dst_ip):
                return listener, hops
            entry = router.rib.fib.lookup(dst_ip)
            if entry is None:
                return None
            if entry.action is FibAction.RECEIVE:
                # Owned address but nothing listening (e.g. BGP not up).
                return None
            if entry.action is FibAction.DISCARD:
                return None
            hop = self._pick_next_hop(entry, dst_ip)
            if hop is None:
                return None
            port = router.ports.get(hop.interface)
            if port is None or not port.is_up:
                return None
            # External endpoint plugged into this port's subnet?
            external = self._externals_by_attachment.get(
                (node, hop.interface, dst_ip)
            )
            if external is not None and external.handler is not None:
                return external.handler, hops + 1
            peer = self.wiring.get((node, hop.interface))
            if peer is None:
                return None
            node = peer[0]
        return None

    @staticmethod
    def _pick_next_hop(entry, dst_ip: int):
        hops = entry.next_hops
        if not hops:
            return None
        if len(hops) == 1:
            return hops[0]
        return hops[dst_ip % len(hops)]  # deterministic ECMP hash

    # -- dataplane probes (ping stand-in for examples/tests) -------------------------

    def reachable(self, src_node: str, dst_ip: int) -> bool:
        """Would a packet from ``src_node`` reach ``dst_ip`` right now?"""
        node = src_node
        for _ in range(_TTL):
            router = self.routers.get(node)
            if router is None:
                return False
            if router.owns_address(dst_ip):
                return True
            entry = router.rib.fib.lookup(dst_ip)
            if entry is None or entry.action is not FibAction.FORWARD:
                return entry is not None and entry.action is FibAction.RECEIVE
            hop = self._pick_next_hop(entry, dst_ip)
            if hop is None:
                return False
            port = router.ports.get(hop.interface)
            if port is None or not port.is_up:
                return False
            if (node, hop.interface, dst_ip) in self._externals_by_attachment:
                return True
            peer = self.wiring.get((node, hop.interface))
            if peer is None:
                return False
            node = peer[0]
        return False
