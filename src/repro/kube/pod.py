"""Pod lifecycle."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class PodPhase(enum.Enum):
    """Pod lifecycle phases (a subset of Kubernetes')."""
    PENDING = "pending"
    SCHEDULED = "scheduled"
    BOOTING = "booting"
    RUNNING = "running"
    FAILED = "failed"


@dataclass
class Pod:
    """One router container."""

    name: str
    vendor: str
    cpu: float
    memory_gb: float
    phase: PodPhase = PodPhase.PENDING
    node: Optional[str] = None
    scheduled_at: float = 0.0
    running_at: float = 0.0

    def __str__(self) -> str:
        where = f" on {self.node}" if self.node else ""
        return f"pod/{self.name} [{self.phase.value}]{where}"
