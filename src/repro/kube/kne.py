"""KNE-style deployment: topology in, running emulated network out.

Responsibilities, mirroring the real Kubernetes Network Emulator flow:

1. build a pod per topology node (resource requests from the vendor's
   container footprint unless the topology overrides them);
2. schedule pods onto the cluster (bin packing — this is where the
   paper's 60-routers-per-32-vCPU-node capacity comes from);
3. model infrastructure startup: cluster init, image pulls, staggered
   container creation, then per-router OS boot (the paper's 12–17 minute
   one-time cost);
4. wire virtual links (a :class:`~repro.sim.channel.Channel` pair per
   topology link) and the routed :class:`~repro.kube.fabric.Fabric`;
5. push configurations once routers finish booting;
6. detect convergence by watching the dataplane stabilize at all
   routers (§5: "we detect convergence to be complete once we observe
   the dataplane to stabilize at all routers").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.kube.cluster import KubeCluster
from repro.kube.fabric import Fabric
from repro.obs import bus
from repro.kube.pod import Pod, PodPhase
from repro.kube.scheduler import Scheduler
from repro.protocols.timers import TimerProfile, PRODUCTION_TIMERS
from repro.rib.fib import global_fib_version
from repro.sim.channel import Channel
from repro.sim.kernel import SimKernel
from repro.topo.model import Link, Topology
from repro.vendors.base import RouterOS, SshSession
from repro.vendors.quirks import quirks_for
from repro.vendors.registry import create_router

# Infrastructure startup model (simulated seconds).
_CLUSTER_INIT = 240.0
_IMAGE_PULL = 180.0
_POD_CREATE_STAGGER = (4.0, 8.0)  # sequential per kube node
_CONFIG_PUSH_DELAY = (20.0, 60.0)  # agent-ready + config load after boot

_LINK_LATENCY = 0.0005
_LINK_JITTER = 0.001


@dataclass
class DeploymentReport:
    """Timing and placement facts about one bring-up."""

    startup_seconds: float = 0.0
    convergence_seconds: float = 0.0
    placements: dict[str, str] = field(default_factory=dict)
    nodes_used: int = 0


class ConvergenceDetector:
    """Stability poll over the process-wide FIB change counter.

    The counter is bumped by every FIB mutation on every device, so a
    single integer comparison per event scales to thousand-router
    topologies where per-device polling would dominate the run.
    """

    def __init__(
        self, routers: list[RouterOS], fabric: Optional[Fabric] = None
    ) -> None:
        self.routers = routers
        self.fabric = fabric
        self._snapshot = global_fib_version()
        self._all_running = False

    def poll(self) -> bool:
        """True when nothing changed since the previous poll."""
        current = global_fib_version()
        if current != self._snapshot:
            self._snapshot = current
            return False
        if self.fabric is not None and self.fabric.busy():
            return False
        if not self._all_running:
            self._all_running = all(
                r.state.value == "running" for r in self.routers
            )
        return self._all_running


class KneDeployment:
    """A running (emulated) instance of one topology."""

    def __init__(
        self,
        topology: Topology,
        *,
        cluster: Optional[KubeCluster] = None,
        kernel: Optional[SimKernel] = None,
        timers: TimerProfile = PRODUCTION_TIMERS,
        seed: int = 0,
    ) -> None:
        topology.validate()
        self.topology = topology
        self.kernel = kernel or SimKernel(seed=seed)
        self.cluster = cluster or KubeCluster()
        self.timers = timers
        self.fabric = Fabric(self.kernel)
        self.routers: dict[str, RouterOS] = {}
        self.pods: dict[str, Pod] = {}
        self._channels: dict[tuple[str, str], Channel] = {}
        self.report = DeploymentReport()
        self._deployed = False

        for spec in topology.nodes:
            quirks = quirks_for(spec.vendor, spec.os_version)
            self.pods[spec.name] = Pod(
                name=spec.name,
                vendor=spec.vendor,
                cpu=spec.cpu or quirks.container_cpu,
                memory_gb=spec.memory_gb or quirks.container_memory_gb,
            )

    # -- bring-up -------------------------------------------------------------

    def deploy(self) -> DeploymentReport:
        """Schedule, boot, wire, and configure the whole topology.

        Advances simulated time to the point where every router is
        running with its configuration applied (protocol convergence
        continues afterwards; see :meth:`wait_converged`).
        """
        if self._deployed:
            raise RuntimeError("deployment already started")
        self._deployed = True
        scheduler = Scheduler(self.cluster)
        self.report.placements = scheduler.schedule(list(self.pods.values()))
        self.report.nodes_used = len(set(self.report.placements.values()))

        self._create_routers()
        self._wire_links()

        # Staggered container creation per kube node, after infra init.
        create_time: dict[str, float] = {}
        per_node_cursor: dict[str, float] = {}
        base = _CLUSTER_INIT + _IMAGE_PULL
        for pod in sorted(self.pods.values(), key=lambda p: p.name):
            assert pod.node is not None
            cursor = per_node_cursor.get(pod.node, base)
            cursor += self.kernel.jitter(*_POD_CREATE_STAGGER)
            per_node_cursor[pod.node] = cursor
            create_time[pod.name] = cursor

        for name, router in self.routers.items():
            pod = self.pods[name]
            quirks = router.quirks
            boot = self.kernel.rng.uniform(
                quirks.boot_time_min, quirks.boot_time_max
            )
            start_at = create_time[name]
            pod.phase = PodPhase.BOOTING
            self.kernel.schedule_at(
                start_at,
                lambda r=router, b=boot: self._power_on(r, b),
                label=f"pod-create:{name}",
            )
            config = self.topology.node(name).config

            def _push(r: RouterOS = router, c: str = config, p: Pod = pod) -> None:
                p.phase = PodPhase.RUNNING
                p.running_at = self.kernel.now
                delay = self.kernel.jitter(*_CONFIG_PUSH_DELAY)
                collector = bus.ACTIVE
                if collector.enabled:
                    collector.emit(
                        "kube.pod.running", self.kernel.now, node=r.name
                    )
                self.kernel.schedule(
                    delay, lambda: r.apply_config(c), label=f"config:{r.name}"
                )

            router.on_boot(_push)

        # Run until every config push has happened.
        def _all_configured() -> bool:
            return all(r.config_text for r in self.routers.values())

        self.kernel.run_until_quiet(0.0, poll=_all_configured, max_events=10_000_000)
        # run_until_quiet with 0 window returns at the first poll success;
        # record the startup cost now.
        self.report.startup_seconds = self.kernel.now
        return self.report

    def _power_on(self, router: RouterOS, boot_time: float) -> None:
        """Power a router on, with a per-pod boot span when tracing."""
        collector = bus.ACTIVE
        if collector.enabled:
            span = collector.begin(
                f"boot:{router.name}",
                self.kernel.now,
                category="kube.boot",
                node=router.name,
            )
            router.on_boot(lambda: bus.ACTIVE.end(span, self.kernel.now))
        router.power_on(boot_time)

    def _create_routers(self) -> None:
        for spec in self.topology.nodes:
            router = create_router(
                spec.vendor,
                spec.name,
                self.kernel,
                self.fabric,
                os_version=spec.os_version,
                timers=self.timers,
            )
            self.routers[spec.name] = router
            self.fabric.add_router(router)

    def _wire_links(self) -> None:
        for link in self.topology.links:
            a_router = self.routers[link.a.node]
            z_router = self.routers[link.z.node]
            a_port = a_router.port(link.a.interface)
            z_port = z_router.port(link.z.interface)
            to_z = Channel(
                self.kernel,
                z_port.receive,
                latency=_LINK_LATENCY,
                jitter=_LINK_JITTER,
                name=f"{link.a}->{link.z}",
            )
            to_a = Channel(
                self.kernel,
                a_port.receive,
                latency=_LINK_LATENCY,
                jitter=_LINK_JITTER,
                name=f"{link.z}->{link.a}",
            )
            a_port.attach(to_z)
            z_port.attach(to_a)
            self._channels[(link.a.node, link.a.interface)] = to_z
            self._channels[(link.z.node, link.z.interface)] = to_a
            self.fabric.add_wire(
                link.a.node, link.a.interface, link.z.node, link.z.interface
            )

    # -- convergence ---------------------------------------------------------------

    def wait_converged(
        self,
        *,
        quiet_period: float = 30.0,
        max_time: float = 86_400.0,
    ) -> float:
        """Run until the dataplane is stable everywhere.

        Returns the convergence duration in simulated seconds, measured
        from when this call started (i.e. excluding the quiet window and
        excluding infrastructure startup, matching the paper's
        convergence metric).
        """
        started = self.kernel.now
        detector = ConvergenceDetector(
            list(self.routers.values()), fabric=self.fabric
        )
        end = self.kernel.run_until_quiet(
            quiet_period,
            poll=detector.poll,
            max_time=started + max_time,
        )
        converged_at = max(
            [r.rib.fib.last_change_time for r in self.routers.values()] + [started]
        )
        self.report.convergence_seconds = max(0.0, converged_at - started)
        del end
        return self.report.convergence_seconds

    # -- operator surface --------------------------------------------------------------

    def ssh(self, node: str) -> SshSession:
        """An interactive session onto an emulated router."""
        return SshSession(self._router(node))

    def router(self, node: str) -> RouterOS:
        return self._router(node)

    def _router(self, node: str) -> RouterOS:
        router = self.routers.get(node)
        if router is None:
            raise KeyError(f"no such node: {node}")
        return router

    # -- scenario context (link cuts) -----------------------------------------------------

    def set_link_state(self, a_node: str, z_node: str, up: bool) -> Link:
        """Cut or restore the (first) link between two nodes."""
        link = self.topology.find_link(a_node, z_node)
        if link is None:
            raise KeyError(f"no link between {a_node} and {z_node}")
        self._set_link(link, up)
        return link

    def _set_link(self, link: Link, up: bool) -> None:
        ends = [(link.a.node, link.a.interface), (link.z.node, link.z.interface)]
        for node, interface in ends:
            channel = self._channels.get((node, interface))
            if channel is not None:
                if up:
                    channel.set_up()
                else:
                    channel.set_down()
            self.routers[node].ports[interface].set_link_state(up)

    def link_down(self, a_node: str, z_node: str) -> Link:
        return self.set_link_state(a_node, z_node, up=False)

    def link_up(self, a_node: str, z_node: str) -> Link:
        return self.set_link_state(a_node, z_node, up=True)

    # -- node lifecycle (what-if campaigns) ---------------------------------------------

    def node_down(self, name: str) -> list[Link]:
        """Kill a router's pod: every attached link drops at once.

        The router object stays around (its FIB freezes as-is, which is
        why AFT extraction must skip failed nodes — see
        :func:`repro.gnmi.server.dump_afts`'s ``nodes`` filter); what the
        rest of the network observes is the simultaneous loss of every
        adjacency, exactly what a hardware failure looks like from one
        hop away.
        """
        pod = self.pods.get(name)
        if pod is None:
            raise KeyError(f"no such node: {name}")
        if pod.phase is PodPhase.FAILED:
            return []
        links = list(self.topology.links_of(name))
        for link in links:
            self._set_link(link, up=False)
        pod.phase = PodPhase.FAILED
        collector = bus.ACTIVE
        if collector.enabled:
            collector.emit("kube.pod.failed", self.kernel.now, node=name)
        return links

    def node_up(self, name: str) -> list[Link]:
        """Restore a failed pod and re-enable its links.

        Only links whose far end is itself alive come back up — a link
        to another failed node stays down until that node recovers.
        """
        pod = self.pods.get(name)
        if pod is None:
            raise KeyError(f"no such node: {name}")
        if pod.phase is not PodPhase.FAILED:
            return []
        pod.phase = PodPhase.RUNNING
        restored: list[Link] = []
        for link in self.topology.links_of(name):
            other = link.z.node if link.a.node == name else link.a.node
            if self.pods[other].phase is PodPhase.FAILED:
                continue
            self._set_link(link, up=True)
            restored.append(link)
        collector = bus.ACTIVE
        if collector.enabled:
            collector.emit("kube.pod.restored", self.kernel.now, node=name)
        return restored

    def failed_nodes(self) -> set[str]:
        return {
            name
            for name, pod in self.pods.items()
            if pod.phase is PodPhase.FAILED
        }
