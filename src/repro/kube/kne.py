"""KNE-style deployment: topology in, running emulated network out.

Responsibilities, mirroring the real Kubernetes Network Emulator flow:

1. build a pod per topology node (resource requests from the vendor's
   container footprint unless the topology overrides them);
2. schedule pods onto the cluster (bin packing — this is where the
   paper's 60-routers-per-32-vCPU-node capacity comes from);
3. model infrastructure startup: cluster init, image pulls, staggered
   container creation, then per-router OS boot (the paper's 12–17 minute
   one-time cost);
4. wire virtual links (a :class:`~repro.sim.channel.Channel` pair per
   topology link) and the routed :class:`~repro.kube.fabric.Fabric`;
5. push configurations once routers finish booting;
6. detect convergence by watching the dataplane stabilize at all
   routers (§5: "we detect convergence to be complete once we observe
   the dataplane to stabilize at all routers").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.kube.cluster import KubeCluster
from repro.kube.fabric import Fabric
from repro.obs import bus
from repro.kube.pod import Pod, PodPhase
from repro.kube.scheduler import Scheduler
from repro.protocols.timers import TimerProfile, PRODUCTION_TIMERS
from repro.rib.fib import global_fib_version
from repro.sim.channel import Channel
from repro.sim.kernel import QuiescenceTimeout, SimKernel
from repro.topo.model import Link, Topology
from repro.vendors.base import RouterOS, SshSession
from repro.vendors.quirks import quirks_for
from repro.vendors.registry import create_router

# Infrastructure startup model (simulated seconds).
_CLUSTER_INIT = 240.0
_IMAGE_PULL = 180.0
_POD_CREATE_STAGGER = (4.0, 8.0)  # sequential per kube node
_CONFIG_PUSH_DELAY = (20.0, 60.0)  # agent-ready + config load after boot

_LINK_LATENCY = 0.0005
_LINK_JITTER = 0.001

# Default simulated-time deadline for deploy(): generous multiples of
# the worst-case startup model, so only a genuinely wedged bring-up
# (a pod that never boots or configures) trips it.
_DEPLOY_MAX_TIME = 14_400.0


class ConvergenceTimeout(RuntimeError):
    """The network failed to quiesce before the deadline.

    Carries the routers whose FIBs were still churning inside the final
    quiet window (``unstable``) — an empty list means the churn came
    from outside the routers' own FIBs (e.g. injected global-version
    noise or fabric traffic).
    """

    def __init__(self, message: str, *, unstable: list[str], elapsed: float) -> None:
        super().__init__(message)
        self.unstable = list(unstable)
        self.elapsed = elapsed


class DeployTimeout(RuntimeError):
    """``deploy()`` hit its simulated-time deadline.

    ``pending`` names each pod that never finished bring-up, mapped to
    where it got stuck (pod phase, or ``unconfigured`` for a running
    router that never received its configuration).
    """

    def __init__(self, message: str, *, pending: dict[str, str]) -> None:
        super().__init__(message)
        self.pending = dict(pending)


@dataclass
class DeploymentReport:
    """Timing and placement facts about one bring-up."""

    startup_seconds: float = 0.0
    convergence_seconds: float = 0.0
    placements: dict[str, str] = field(default_factory=dict)
    nodes_used: int = 0
    # False once wait_converged gives up — convergence_seconds is NaN
    # then, never a plausible-looking number.
    converged: bool = True


class ConvergenceDetector:
    """Stability poll over the process-wide FIB change counter.

    The counter is bumped by every FIB mutation on every device, so a
    single integer comparison per event scales to thousand-router
    topologies where per-device polling would dominate the run.
    """

    def __init__(
        self, routers: list[RouterOS], fabric: Optional[Fabric] = None
    ) -> None:
        self.routers = routers
        self.fabric = fabric
        self._snapshot = global_fib_version()
        self._all_running = False

    def poll(self) -> bool:
        """True when nothing changed since the previous poll."""
        current = global_fib_version()
        if current != self._snapshot:
            self._snapshot = current
            return False
        if self.fabric is not None and self.fabric.busy():
            return False
        if not self._all_running:
            self._all_running = all(
                r.state.value == "running" for r in self.routers
            )
        return self._all_running


class KneDeployment:
    """A running (emulated) instance of one topology."""

    def __init__(
        self,
        topology: Topology,
        *,
        cluster: Optional[KubeCluster] = None,
        kernel: Optional[SimKernel] = None,
        timers: TimerProfile = PRODUCTION_TIMERS,
        seed: int = 0,
    ) -> None:
        topology.validate()
        self.topology = topology
        self.kernel = kernel or SimKernel(seed=seed)
        self.cluster = cluster or KubeCluster()
        self.timers = timers
        self.fabric = Fabric(self.kernel)
        self.routers: dict[str, RouterOS] = {}
        self.pods: dict[str, Pod] = {}
        self._channels: dict[tuple[str, str], Channel] = {}
        self.report = DeploymentReport()
        self._deployed = False
        # Routers whose config push has completed (empty configs count:
        # the push event itself is the completion signal).
        self._configured: set[str] = set()
        # A repro.chaos.ChaosInjector arms itself here before deploy();
        # None means a perfectly reliable substrate (the default).
        self.chaos = None

        for spec in topology.nodes:
            quirks = quirks_for(spec.vendor, spec.os_version)
            self.pods[spec.name] = Pod(
                name=spec.name,
                vendor=spec.vendor,
                cpu=spec.cpu or quirks.container_cpu,
                memory_gb=spec.memory_gb or quirks.container_memory_gb,
            )

    # -- bring-up -------------------------------------------------------------

    def deploy(self, *, max_time: float = _DEPLOY_MAX_TIME) -> DeploymentReport:
        """Schedule, boot, wire, and configure the whole topology.

        Advances simulated time to the point where every router is
        running with its configuration applied (protocol convergence
        continues afterwards; see :meth:`wait_converged`). A bring-up
        that has not finished by ``max_time`` simulated seconds raises
        :class:`DeployTimeout` naming the stuck pods, instead of
        spinning the kernel until ``max_events``.
        """
        if self._deployed:
            raise RuntimeError("deployment already started")
        self._deployed = True
        scheduler = Scheduler(self.cluster)
        self.report.placements = scheduler.schedule(list(self.pods.values()))
        self.report.nodes_used = len(set(self.report.placements.values()))

        self._create_routers()
        self._wire_links()

        # Staggered container creation per kube node, after infra init.
        create_time: dict[str, float] = {}
        per_node_cursor: dict[str, float] = {}
        base = _CLUSTER_INIT + _IMAGE_PULL
        for pod in sorted(self.pods.values(), key=lambda p: p.name):
            assert pod.node is not None
            cursor = per_node_cursor.get(pod.node, base)
            cursor += self.kernel.jitter(*_POD_CREATE_STAGGER)
            per_node_cursor[pod.node] = cursor
            create_time[pod.name] = cursor

        for name, router in self.routers.items():
            pod = self.pods[name]
            quirks = router.quirks
            boot = self.kernel.rng.uniform(
                quirks.boot_time_min, quirks.boot_time_max
            )
            if self.chaos is not None:
                # Slow-boot faults stretch the boot deterministically
                # (factor 1.0 when the node is unaffected; no rng draw).
                boot *= self.chaos.boot_factor(name)
            start_at = create_time[name]
            pod.phase = PodPhase.BOOTING
            self.kernel.schedule_at(
                start_at,
                lambda r=router, b=boot: self._power_on(r, b),
                label=f"pod-create:{name}",
            )
            config = self.topology.node(name).config

            def _push(r: RouterOS = router, c: str = config, p: Pod = pod) -> None:
                p.phase = PodPhase.RUNNING
                p.running_at = self.kernel.now
                delay = self.kernel.jitter(*_CONFIG_PUSH_DELAY)
                collector = bus.ACTIVE
                if collector.enabled:
                    collector.emit(
                        "kube.pod.running", self.kernel.now, node=r.name
                    )
                self.kernel.schedule(
                    delay,
                    lambda: self._apply_config(r, c),
                    label=f"config:{r.name}",
                )

            router.on_boot(_push)

        # Run until every config push has happened, bounded by a
        # simulated-time deadline so a wedged bring-up fails loudly.
        def _all_configured() -> bool:
            return len(self._configured) == len(self.routers)

        try:
            self.kernel.run_until_quiet(
                0.0,
                poll=_all_configured,
                max_time=self.kernel.now + max_time,
                max_events=10_000_000,
            )
        except QuiescenceTimeout as exc:
            pending = self._pending_bringup()
            raise DeployTimeout(
                f"deployment incomplete after {self.kernel.now:.0f}s "
                f"simulated ({'queue drained' if exc.drained else 'deadline'}); "
                f"stuck: {', '.join(sorted(pending)) or 'unknown'}",
                pending=pending,
            ) from exc
        # run_until_quiet with 0 window returns at the first poll success;
        # record the startup cost now.
        self.report.startup_seconds = self.kernel.now
        return self.report

    def _apply_config(self, router: RouterOS, config: str) -> None:
        router.apply_config(config)
        self._configured.add(router.name)

    def _pending_bringup(self) -> dict[str, str]:
        """Pods that never finished bring-up, mapped to where they stuck."""
        pending: dict[str, str] = {}
        for name in self.routers:
            pod = self.pods[name]
            if pod.phase is not PodPhase.RUNNING:
                pending[name] = pod.phase.value
            elif name not in self._configured:
                pending[name] = "unconfigured"
        return pending

    def _power_on(self, router: RouterOS, boot_time: float) -> None:
        """Power a router on, with a per-pod boot span when tracing."""
        collector = bus.ACTIVE
        if collector.enabled:
            span = collector.begin(
                f"boot:{router.name}",
                self.kernel.now,
                category="kube.boot",
                node=router.name,
            )
            router.on_boot(lambda: bus.ACTIVE.end(span, self.kernel.now))
        router.power_on(boot_time)

    def _create_routers(self) -> None:
        for spec in self.topology.nodes:
            router = create_router(
                spec.vendor,
                spec.name,
                self.kernel,
                self.fabric,
                os_version=spec.os_version,
                timers=self.timers,
            )
            self.routers[spec.name] = router
            self.fabric.add_router(router)
            if self.chaos is not None:
                self.chaos.on_router_created(router)

    def _wire_links(self) -> None:
        for link in self.topology.links:
            a_router = self.routers[link.a.node]
            z_router = self.routers[link.z.node]
            a_port = a_router.port(link.a.interface)
            z_port = z_router.port(link.z.interface)
            to_z = Channel(
                self.kernel,
                z_port.receive,
                latency=_LINK_LATENCY,
                jitter=_LINK_JITTER,
                name=f"{link.a}->{link.z}",
            )
            to_a = Channel(
                self.kernel,
                a_port.receive,
                latency=_LINK_LATENCY,
                jitter=_LINK_JITTER,
                name=f"{link.z}->{link.a}",
            )
            a_port.attach(to_z)
            z_port.attach(to_a)
            self._channels[(link.a.node, link.a.interface)] = to_z
            self._channels[(link.z.node, link.z.interface)] = to_a
            self.fabric.add_wire(
                link.a.node, link.a.interface, link.z.node, link.z.interface
            )

    # -- convergence ---------------------------------------------------------------

    def wait_converged(
        self,
        *,
        quiet_period: float = 30.0,
        max_time: float = 86_400.0,
    ) -> float:
        """Run until the dataplane is stable everywhere.

        Returns the convergence duration in simulated seconds, measured
        from when this call started (i.e. excluding the quiet window and
        excluding infrastructure startup, matching the paper's
        convergence metric).

        When ``max_time`` elapses without quiescence this raises
        :class:`ConvergenceTimeout` naming the routers whose FIBs were
        still churning — it never reports a plausible-looking success
        number for a network that did not converge. The report records
        ``converged=False`` and a NaN duration in that case.
        """
        started = self.kernel.now
        detector = ConvergenceDetector(
            list(self.routers.values()), fabric=self.fabric
        )
        try:
            self.kernel.run_until_quiet(
                quiet_period,
                poll=detector.poll,
                max_time=started + max_time,
            )
        except QuiescenceTimeout as exc:
            self.report.converged = False
            self.report.convergence_seconds = float("nan")
            unstable = sorted(
                name
                for name, router in self.routers.items()
                if self.kernel.now - router.rib.fib.last_change_time
                <= quiet_period
            )
            raise ConvergenceTimeout(
                f"no convergence within {max_time:.0f}s simulated; "
                f"still churning: {', '.join(unstable) or 'none (external churn)'}",
                unstable=unstable,
                elapsed=self.kernel.now - started,
            ) from exc
        self.report.converged = True
        converged_at = max(
            [r.rib.fib.last_change_time for r in self.routers.values()] + [started]
        )
        self.report.convergence_seconds = max(0.0, converged_at - started)
        return self.report.convergence_seconds

    # -- operator surface --------------------------------------------------------------

    def ssh(self, node: str) -> SshSession:
        """An interactive session onto an emulated router."""
        return SshSession(self._router(node))

    def router(self, node: str) -> RouterOS:
        return self._router(node)

    def _router(self, node: str) -> RouterOS:
        router = self.routers.get(node)
        if router is None:
            raise KeyError(f"no such node: {node}")
        return router

    # -- scenario context (link cuts) -----------------------------------------------------

    def set_link_state(self, a_node: str, z_node: str, up: bool) -> Link:
        """Cut or restore the (first) link between two nodes."""
        link = self.topology.find_link(a_node, z_node)
        if link is None:
            raise KeyError(f"no link between {a_node} and {z_node}")
        self._set_link(link, up)
        return link

    def _set_link(self, link: Link, up: bool) -> None:
        ends = [(link.a.node, link.a.interface), (link.z.node, link.z.interface)]
        for node, interface in ends:
            channel = self._channels.get((node, interface))
            if channel is not None:
                if up:
                    channel.set_up()
                else:
                    channel.set_down()
            self.routers[node].ports[interface].set_link_state(up)

    def link_down(self, a_node: str, z_node: str) -> Link:
        return self.set_link_state(a_node, z_node, up=False)

    def link_up(self, a_node: str, z_node: str) -> Link:
        return self.set_link_state(a_node, z_node, up=True)

    # -- node lifecycle (what-if campaigns) ---------------------------------------------

    def node_down(self, name: str) -> list[Link]:
        """Kill a router's pod: every attached link drops at once.

        The router object stays around (its FIB freezes as-is, which is
        why AFT extraction must skip failed nodes — see
        :func:`repro.gnmi.server.dump_afts`'s ``nodes`` filter); what the
        rest of the network observes is the simultaneous loss of every
        adjacency, exactly what a hardware failure looks like from one
        hop away.
        """
        pod = self.pods.get(name)
        if pod is None:
            raise KeyError(f"no such node: {name}")
        if pod.phase is PodPhase.FAILED:
            return []
        links = list(self.topology.links_of(name))
        for link in links:
            self._set_link(link, up=False)
        pod.phase = PodPhase.FAILED
        collector = bus.ACTIVE
        if collector.enabled:
            collector.emit("kube.pod.failed", self.kernel.now, node=name)
        return links

    def node_up(self, name: str) -> list[Link]:
        """Restore a failed pod and re-enable its links.

        Only links whose far end is itself alive come back up — a link
        to another failed node stays down until that node recovers.
        """
        pod = self.pods.get(name)
        if pod is None:
            raise KeyError(f"no such node: {name}")
        if pod.phase is not PodPhase.FAILED:
            return []
        pod.phase = PodPhase.RUNNING
        restored: list[Link] = []
        for link in self.topology.links_of(name):
            other = link.z.node if link.a.node == name else link.a.node
            if self.pods[other].phase is PodPhase.FAILED:
                continue
            self._set_link(link, up=True)
            restored.append(link)
        collector = bus.ACTIVE
        if collector.enabled:
            collector.emit("kube.pod.restored", self.kernel.now, node=name)
        return restored

    def failed_nodes(self) -> set[str]:
        return {
            name
            for name, pod in self.pods.items()
            if pod.phase is PodPhase.FAILED
        }

    # -- health probes & recovery (chaos hardening) ------------------------------------

    def pod_health(self) -> dict[str, str]:
        """A kubelet-style health probe over every pod.

        Maps each node to ``healthy``, its pod phase (``failed``,
        ``booting``, ...), or ``unconfigured`` for a running router that
        never received its configuration.
        """
        health: dict[str, str] = {}
        for name, pod in self.pods.items():
            if pod.phase is not PodPhase.RUNNING:
                health[name] = pod.phase.value
            elif name not in self._configured:
                health[name] = "unconfigured"
            else:
                health[name] = "healthy"
        return health

    def restart_and_reconverge(
        self,
        name: str,
        *,
        quiet_period: float = 30.0,
        max_time: float = 86_400.0,
    ) -> float:
        """Restore a failed pod, then wait for the network to re-settle.

        The recovery half of the health-probe loop: returns the
        re-convergence duration, or raises :class:`ConvergenceTimeout`
        if the network never quiesces after the restart.
        """
        self.node_up(name)
        return self.wait_converged(
            quiet_period=quiet_period, max_time=max_time
        )
