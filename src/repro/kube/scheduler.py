"""Pod scheduler: first-fit-decreasing bin packing over node resources."""

from __future__ import annotations

from repro.kube.cluster import KubeCluster
from repro.kube.pod import Pod, PodPhase
from repro.obs import bus


class UnschedulableError(RuntimeError):
    """Raised when a pod cannot fit on any node."""

    def __init__(self, pod: Pod, cluster: KubeCluster) -> None:
        free = ", ".join(
            f"{n.name}: {n.free_cpu:.1f} vCPU / {n.free_memory_gb:.1f} GB"
            for n in cluster.nodes
        )
        super().__init__(
            f"0/{len(cluster)} nodes can host {pod.name} "
            f"(requests {pod.cpu} vCPU / {pod.memory_gb} GB; free: {free})"
        )
        self.pod = pod


class Scheduler:
    """Assign pods to nodes; deterministic and greedy like the default
    kube-scheduler's bin-packing profile."""

    def __init__(self, cluster: KubeCluster) -> None:
        self.cluster = cluster

    def schedule(self, pods: list[Pod]) -> dict[str, str]:
        """Place every pod; returns pod name -> node name.

        Pods are placed largest-first; each goes to the feasible node
        with the most free CPU (spread), which mirrors how KNE topologies
        balance across a cluster.
        """
        placements: dict[str, str] = {}
        ordered = sorted(pods, key=lambda p: (-p.cpu, -p.memory_gb, p.name))
        for pod in ordered:
            candidates = [
                n for n in self.cluster.nodes if n.fits(pod.cpu, pod.memory_gb)
            ]
            if not candidates:
                raise UnschedulableError(pod, self.cluster)
            target = max(candidates, key=lambda n: (n.free_cpu, n.free_memory_gb))
            target.allocate(pod.cpu, pod.memory_gb)
            pod.node = target.name
            pod.phase = PodPhase.SCHEDULED
            placements[pod.name] = target.name
            collector = bus.ACTIVE
            if collector.enabled:
                # Scheduling happens before the simulated clock starts.
                collector.emit(
                    "kube.pod.scheduled",
                    0.0,
                    node=pod.name,
                    kube_node=target.name,
                    cpu=pod.cpu,
                    memory_gb=pod.memory_gb,
                    free_cpu_after=target.free_cpu,
                    candidates=len(candidates),
                )
        return placements

    def capacity_for(self, cpu: float, memory_gb: float) -> int:
        """How many identical pods of this shape fit in the cluster."""
        total = 0
        for node in self.cluster.nodes:
            by_cpu = int((node.free_cpu + 1e-9) // cpu) if cpu else 1 << 30
            by_mem = (
                int((node.free_memory_gb + 1e-9) // memory_gb)
                if memory_gb
                else 1 << 30
            )
            total += min(by_cpu, by_mem)
        return total
