"""The model-based verification baseline ("native Batfish" stand-in).

Everything the paper argues *against* lives here, faithfully: a
hand-written configuration parser that recognizes only a subset of the
vendor language (and counts what it cannot parse), and an IBDP-style
centralized control-plane model that computes a dataplane algorithmically
instead of emulating message exchange.

The two documented model defects from the paper's Fig. 3 are
implemented deliberately (see :mod:`repro.batfish_model.issues`):
reproducing them is reproducing the paper.
"""

from repro.batfish_model.parser import ModelParseResult, parse_with_model
from repro.batfish_model.ibdp import ModelRun, run_model

__all__ = ["ModelParseResult", "ModelRun", "parse_with_model", "run_model"]
