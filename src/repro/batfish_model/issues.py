"""The model assumptions this baseline deliberately carries.

These are reproductions of real, documented Batfish behaviours the
paper's §5 ran into — not accidental bugs in this repo. Keeping them in
one annotated place makes the ablation explicit: flip a flag, and the
model stops diverging from the emulation on that axis.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelAssumptions:
    """Switches for the baseline's known modeling defects."""

    # Fig. 3, issue #1: the model applies interface configuration line
    # by line and assumes an interface cannot hold an IP address until
    # it has already been made routed (`no switchport`). An `ip address`
    # that appears first is silently dropped. The real cEOS applies the
    # stanza as a unit.
    order_sensitive_switchport: bool = True
    # Fig. 3, issue #2: `isis enable <tag>` is rejected as invalid
    # syntax when the interface has no active IP address at that point
    # in the parse — so a victim of issue #1 also loses its IGP
    # enablement, compounding the divergence.
    reject_isis_enable_without_address: bool = True
    # §6: the model idealizes transport — iBGP sessions are assumed up
    # whenever an IGP route to the peer exists, ignoring real session
    # establishment dynamics.
    assume_ibgp_transport: bool = True


DEFAULT_ASSUMPTIONS = ModelAssumptions()
FIXED_ASSUMPTIONS = ModelAssumptions(
    order_sensitive_switchport=False,
    reject_isis_enable_without_address=False,
)
