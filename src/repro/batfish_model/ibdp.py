"""IBDP-style control-plane model.

The centralized computation Batfish's Incremental Batfish Dataplane
performs: parse configurations, derive L3 adjacency, run an algorithmic
IS-IS SPF, then iterate a synchronous BGP exchange to a fixed point. No
messages, no timers, no ordering — exactly the idealization the paper
contrasts with emulation. The output is exported in the same AFT format
the emulation produces, so the verification stage is backend-agnostic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.batfish_model.issues import DEFAULT_ASSUMPTIONS, ModelAssumptions
from repro.batfish_model.parser import ModelParseResult, parse_with_model
from repro.dataplane.model import Dataplane
from repro.device.model import DeviceConfig
from repro.device.routing_policy import MatchResult
from repro.gnmi.aft import AftInterface, AftSnapshot
from repro.net.addr import Prefix, format_ipv4
from repro.protocols.bgp_attrs import (
    BgpPath,
    Origin,
    PathAttributes,
    best_path,
    intern_attrs,
)
from repro.rib.rib import Rib
from repro.rib.route import NextHop, Protocol, Route

_MAX_BGP_ROUNDS = 64


@dataclass
class ModelRun:
    """Result of one model-based dataplane computation."""

    parse_results: dict[str, ModelParseResult]
    snapshots: dict[str, AftSnapshot]

    @property
    def dataplane(self) -> Dataplane:
        return Dataplane.from_afts(self.snapshots)

    def unrecognized_by_device(self) -> dict[str, int]:
        return {
            name: result.unrecognized_count
            for name, result in self.parse_results.items()
        }


@dataclass
class _Device:
    name: str
    config: DeviceConfig
    rib: Rib = field(default_factory=Rib)
    # BGP model state
    adj_rib_in: dict[int, dict[Prefix, PathAttributes]] = field(
        default_factory=dict
    )
    local_rib: dict[Prefix, BgpPath] = field(default_factory=dict)
    originated: dict[Prefix, PathAttributes] = field(default_factory=dict)

    def local_addresses(self) -> list[int]:
        return self.config.local_addresses()

    def router_id(self) -> int:
        if self.config.bgp and self.config.bgp.router_id:
            return self.config.bgp.router_id
        loopback = self.config.loopback_address()
        if loopback is not None:
            return loopback
        addresses = self.local_addresses()
        return max(addresses) if addresses else 1


@dataclass(frozen=True)
class _Session:
    local: str
    peer: str
    local_ip: int
    peer_ip: int
    is_ebgp: bool


def run_model(
    configs: dict[str, str],
    assumptions: ModelAssumptions = DEFAULT_ASSUMPTIONS,
) -> ModelRun:
    """Compute a dataplane for ``configs`` with the reference model."""
    parse_results = {
        name: parse_with_model(text, assumptions)
        for name, text in configs.items()
    }
    devices = {
        name: _Device(name=name, config=result.device)
        for name, result in parse_results.items()
    }
    for device in devices.values():
        _install_kernel_routes(device)
    _run_isis_model(devices)
    for device in devices.values():
        device.rib.commit()
    _run_bgp_model(devices, assumptions)
    for device in devices.values():
        device.rib.commit()
    snapshots = {
        name: AftSnapshot.from_tables(
            name,
            device.rib.fib,
            _model_interfaces(device),
            acls={
                acl_name: tuple(acl.rules)
                for acl_name, acl in device.config.acls.items()
            },
        )
        for name, device in devices.items()
    }
    return ModelRun(parse_results=parse_results, snapshots=snapshots)


# -- kernel routes -------------------------------------------------------------


def _install_kernel_routes(device: _Device) -> None:
    for iface in device.config.interfaces.values():
        prefix = iface.connected_prefix()
        if prefix is None:
            continue
        device.rib.install(
            Route(
                prefix=prefix,
                protocol=Protocol.CONNECTED,
                next_hops=(NextHop(interface=iface.name),),
            )
        )
        assert iface.address is not None
        device.rib.install(
            Route(
                prefix=Prefix.containing(iface.address, 32),
                protocol=Protocol.LOCAL,
                next_hops=(NextHop(interface=iface.name),),
            )
        )
    for static in device.config.static_routes:
        if static.discard:
            hops: tuple[NextHop, ...] = ()
        elif static.interface is not None:
            hops = (NextHop(ip=static.next_hop, interface=static.interface),)
        else:
            assert static.next_hop is not None
            hops = (NextHop(ip=static.next_hop),)
        device.rib.install(
            Route(
                prefix=static.prefix,
                protocol=Protocol.STATIC,
                next_hops=hops,
                distance=static.distance,
            )
        )


def _model_interfaces(device: _Device) -> list[AftInterface]:
    out = []
    for name in sorted(device.config.interfaces):
        iface = device.config.interfaces[name]
        routed = iface.is_routed
        out.append(
            AftInterface(
                name=name,
                ipv4_address=(
                    format_ipv4(iface.address)
                    if routed and iface.address is not None
                    else None
                ),
                prefix_length=iface.prefix_length if routed else None,
                enabled=not iface.shutdown,
                acl_in=iface.acl_in,
                acl_out=iface.acl_out,
            )
        )
    return out


# -- IS-IS model -------------------------------------------------------------------


def _isis_interfaces(device: _Device) -> list:
    if device.config.isis is None:
        return []
    tag = device.config.isis.tag
    return [
        iface
        for iface in device.config.interfaces.values()
        if iface.is_routed
        and iface.isis is not None
        and iface.isis.enabled
        and iface.isis.tag == tag
    ]


def _run_isis_model(devices: dict[str, _Device]) -> None:
    """Centralized IS-IS: one global graph, one SPF per device."""
    # Subnet membership among active (non-passive) IS-IS interfaces.
    members: dict[Prefix, list[tuple[str, str, int, int]]] = {}
    advertised: dict[str, list[tuple[Prefix, int]]] = {}
    for name, device in devices.items():
        advertised[name] = []
        for iface in _isis_interfaces(device):
            prefix = iface.connected_prefix()
            assert prefix is not None and iface.isis is not None
            metric = iface.isis.metric
            advertised[name].append((prefix, metric))
            passive = iface.isis.passive or iface.is_loopback
            if not passive and prefix.length < 32:
                assert iface.address is not None
                members.setdefault(prefix, []).append(
                    (name, iface.name, iface.address, metric)
                )
    # Edges: devices sharing a subnet with IS-IS active on both sides.
    graph: dict[str, dict[str, tuple[int, str, int]]] = {
        name: {} for name in devices
    }
    for prefix, endpoints in members.items():
        del prefix
        for dev_a, if_a, addr_a, metric_a in endpoints:
            for dev_b, _if_b, addr_b, _metric_b in endpoints:
                if dev_a == dev_b:
                    continue
                current = graph[dev_a].get(dev_b)
                if current is None or metric_a < current[0]:
                    graph[dev_a][dev_b] = (metric_a, if_a, addr_b)
    for name, device in devices.items():
        if device.config.isis is None or not device.config.isis.net:
            continue
        distance, first_hop = _dijkstra(graph, name)
        own = {p for p, _m in advertised[name]}
        best: dict[Prefix, tuple[int, str]] = {}
        for other, dist in distance.items():
            if other == name:
                continue
            for prefix, metric in advertised.get(other, []):
                if prefix in own:
                    continue
                total = dist + metric
                current = best.get(prefix)
                if current is None or total < current[0]:
                    best[prefix] = (total, other)
        for prefix, (metric, target) in best.items():
            hop_device = first_hop.get(target)
            if hop_device is None:
                continue
            edge = graph[name].get(hop_device)
            if edge is None:
                continue
            _metric, out_iface, gateway = edge
            device.rib.install(
                Route(
                    prefix=prefix,
                    protocol=Protocol.ISIS,
                    next_hops=(NextHop(ip=gateway, interface=out_iface),),
                    metric=metric,
                )
            )


def _dijkstra(
    graph: dict[str, dict[str, tuple[int, str, int]]], source: str
) -> tuple[dict[str, int], dict[str, str]]:
    """Returns (distance, first-hop device) maps from ``source``."""
    distance = {source: 0}
    first_hop: dict[str, str] = {}
    heap: list[tuple[int, str]] = [(0, source)]
    visited: set[str] = set()
    while heap:
        dist, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        for neighbor, (metric, _iface, _gw) in graph.get(node, {}).items():
            candidate = dist + metric
            if candidate < distance.get(neighbor, 1 << 60):
                distance[neighbor] = candidate
                first_hop[neighbor] = neighbor if node == source else first_hop[node]
                heapq.heappush(heap, (candidate, neighbor))
    return distance, first_hop


# -- BGP model -----------------------------------------------------------------------


def _discover_sessions(
    devices: dict[str, _Device], assumptions: ModelAssumptions
) -> list[_Session]:
    owner: dict[int, str] = {}
    for name, device in devices.items():
        for address in device.local_addresses():
            owner[address] = name
    sessions = []
    for name, device in devices.items():
        bgp = device.config.bgp
        if bgp is None:
            continue
        for peer_ip, neighbor in bgp.neighbors.items():
            if neighbor.shutdown:
                continue
            peer_name = owner.get(peer_ip)
            if peer_name is None or peer_name == name:
                continue
            peer_bgp = devices[peer_name].config.bgp
            if peer_bgp is None or peer_bgp.asn != neighbor.remote_as:
                continue
            local_ip = _session_source(device, neighbor)
            if local_ip is None:
                continue
            reverse = peer_bgp.neighbors.get(local_ip)
            if reverse is None or reverse.remote_as != bgp.asn or reverse.shutdown:
                continue
            is_ebgp = bgp.asn != neighbor.remote_as
            if not is_ebgp and assumptions.assume_ibgp_transport:
                # Model assumption: iBGP transport exists iff an IGP
                # route covers the peer address.
                route = device.rib.longest_match(peer_ip)
                if route is None:
                    continue
            sessions.append(
                _Session(
                    local=name,
                    peer=peer_name,
                    local_ip=local_ip,
                    peer_ip=peer_ip,
                    is_ebgp=is_ebgp,
                )
            )
    return sessions


def _session_source(device: _Device, neighbor) -> Optional[int]:
    if neighbor.update_source is not None:
        iface = device.config.interfaces.get(neighbor.update_source)
        return iface.address if iface is not None else None
    for iface in device.config.routed_interfaces():
        prefix = iface.connected_prefix()
        if prefix is not None and prefix.contains(neighbor.peer_address):
            return iface.address
    return device.config.loopback_address()


def _originate(device: _Device) -> None:
    base = PathAttributes(next_hop=0, origin=Origin.IGP)
    bgp = device.config.bgp
    assert bgp is not None
    for prefix in bgp.networks:
        route = device.rib.best(prefix)
        if route is not None and route.protocol not in (
            Protocol.BGP_EXTERNAL,
            Protocol.BGP_INTERNAL,
        ):
            device.originated[prefix] = intern_attrs(base)
    if bgp.redistribute_connected:
        for iface in device.config.routed_interfaces():
            prefix = iface.connected_prefix()
            if prefix is not None:
                device.originated[prefix] = intern_attrs(
                    PathAttributes(next_hop=0, origin=Origin.INCOMPLETE)
                )
    if bgp.redistribute_isis:
        for route in device.rib.best_routes():
            if route.protocol is Protocol.ISIS:
                device.originated[route.prefix] = intern_attrs(
                    PathAttributes(
                        next_hop=0, origin=Origin.INCOMPLETE, med=route.metric
                    )
                )


def _run_bgp_model(
    devices: dict[str, _Device], assumptions: ModelAssumptions
) -> None:
    sessions = _discover_sessions(devices, assumptions)
    by_receiver: dict[str, list[_Session]] = {}
    for session in sessions:
        by_receiver.setdefault(session.peer, []).append(session)
    for device in devices.values():
        if device.config.bgp is not None:
            _originate(device)
    for _round in range(_MAX_BGP_ROUNDS):
        changed = False
        # Phase 1: everyone exports to every session peer.
        exports: dict[tuple[str, int], dict[Prefix, PathAttributes]] = {}
        for session in sessions:
            sender = devices[session.local]
            offer: dict[Prefix, PathAttributes] = {}
            for prefix, attrs in sender.originated.items():
                path = BgpPath(
                    attrs=attrs,
                    from_ebgp=False,
                    peer_ip=0,
                    peer_router_id=sender.router_id(),
                    is_local=True,
                )
                exported = _export(sender, session, prefix, path)
                if exported is not None:
                    offer[prefix] = exported
            for prefix, path in sender.local_rib.items():
                if path.is_local:
                    continue
                exported = _export(sender, session, prefix, path)
                if exported is not None:
                    offer[prefix] = exported
            exports[(session.peer, session.peer_ip)] = offer
        # Phase 2: everyone imports and re-decides.
        for session in sessions:
            receiver = devices[session.peer]
            offer = exports.get((session.peer, session.peer_ip), {})
            rib_in: dict[Prefix, PathAttributes] = {}
            receiver_bgp = receiver.config.bgp
            assert receiver_bgp is not None
            reverse_neighbor = receiver_bgp.neighbors.get(session.local_ip)
            for prefix, attrs in offer.items():
                if session.is_ebgp and receiver_bgp.asn in attrs.as_path:
                    continue
                final = attrs
                if reverse_neighbor is not None and reverse_neighbor.route_map_in:
                    route_map = receiver.config.route_maps.get(
                        reverse_neighbor.route_map_in
                    )
                    if route_map is None:
                        continue
                    verdict, final = route_map.evaluate(
                        prefix, attrs, receiver.config.prefix_lists
                    )
                    if verdict is not MatchResult.PERMIT:
                        continue
                rib_in[prefix] = intern_attrs(final)
            if receiver.adj_rib_in.get(session.local_ip) != rib_in:
                receiver.adj_rib_in[session.local_ip] = rib_in
                changed = True
        for device in devices.values():
            if device.config.bgp is None:
                continue
            changed |= _decide(device, devices, sessions)
        if not changed:
            break


def _export(
    sender: _Device, session: _Session, prefix: Prefix, path: BgpPath
) -> Optional[PathAttributes]:
    from dataclasses import replace

    if not path.is_local and path.peer_ip == session.peer_ip:
        return None
    bgp_config = sender.config.bgp
    assert bgp_config is not None
    if not session.is_ebgp and not path.from_ebgp and not path.is_local:
        # Route reflection, mirroring the live engine's rule.
        source_neighbor = bgp_config.neighbors.get(path.peer_ip)
        target_neighbor = bgp_config.neighbors.get(session.peer_ip)
        source_is_client = (
            source_neighbor is not None
            and source_neighbor.route_reflector_client
        )
        target_is_client = (
            target_neighbor is not None
            and target_neighbor.route_reflector_client
        )
        if not (source_is_client or target_is_client):
            return None
    attrs = path.attrs
    bgp = sender.config.bgp
    assert bgp is not None
    neighbor = bgp.neighbors.get(session.peer_ip)
    if session.is_ebgp:
        attrs = replace(
            attrs,
            as_path=(bgp.asn,) + attrs.as_path,
            next_hop=session.local_ip,
            local_pref=None,
            med=0,
        )
    else:
        updates = {}
        if (neighbor is not None and neighbor.next_hop_self) or attrs.next_hop == 0:
            updates["next_hop"] = session.local_ip
        if attrs.local_pref is None:
            updates["local_pref"] = 100
        if updates:
            attrs = replace(attrs, **updates)
    if neighbor is not None and neighbor.route_map_out:
        route_map = sender.config.route_maps.get(neighbor.route_map_out)
        if route_map is None:
            return None
        verdict, attrs = route_map.evaluate(
            prefix, attrs, sender.config.prefix_lists
        )
        if verdict is not MatchResult.PERMIT:
            return None
    if neighbor is not None and not neighbor.send_community and attrs.communities:
        attrs = replace(attrs, communities=())
    return intern_attrs(attrs)


def _decide(
    device: _Device,
    devices: dict[str, _Device],
    sessions: list[_Session],
) -> bool:
    peer_router_ids = {
        s.local_ip: devices[s.local].router_id()
        for s in sessions
        if s.peer == device.name
    }
    session_ebgp = {
        s.local_ip: s.is_ebgp for s in sessions if s.peer == device.name
    }

    def igp_metric(next_hop: int) -> Optional[int]:
        if next_hop == 0:
            return 0
        route = device.rib.longest_match(next_hop)
        if route is None or route.protocol in (
            Protocol.BGP_EXTERNAL,
            Protocol.BGP_INTERNAL,
        ):
            return None
        return route.metric

    prefixes: set[Prefix] = set(device.originated)
    for rib_in in device.adj_rib_in.values():
        prefixes.update(rib_in)
    prefixes.update(device.local_rib)
    changed = False
    for prefix in prefixes:
        paths: list[BgpPath] = []
        local = device.originated.get(prefix)
        if local is not None:
            paths.append(
                BgpPath(
                    attrs=local,
                    from_ebgp=False,
                    peer_ip=0,
                    peer_router_id=device.router_id(),
                    is_local=True,
                )
            )
        for peer_ip, rib_in in device.adj_rib_in.items():
            attrs = rib_in.get(prefix)
            if attrs is None:
                continue
            paths.append(
                BgpPath(
                    attrs=attrs,
                    from_ebgp=session_ebgp.get(peer_ip, True),
                    peer_ip=peer_ip,
                    peer_router_id=peer_router_ids.get(peer_ip, 0),
                )
            )
        new_best = best_path(paths, igp_metric)
        old_best = device.local_rib.get(prefix)
        if new_best == old_best:
            continue
        changed = True
        if new_best is None:
            device.local_rib.pop(prefix, None)
        else:
            device.local_rib[prefix] = new_best
        device.rib.withdraw(Protocol.BGP_EXTERNAL, prefix)
        device.rib.withdraw(Protocol.BGP_INTERNAL, prefix)
        if new_best is not None and not new_best.is_local:
            protocol = (
                Protocol.BGP_EXTERNAL
                if new_best.from_ebgp
                else Protocol.BGP_INTERNAL
            )
            device.rib.install(
                Route(
                    prefix=prefix,
                    protocol=protocol,
                    next_hops=(NextHop(ip=new_best.attrs.next_hop),),
                    metric=new_best.attrs.med,
                    source=new_best,
                )
            )
        device.rib.commit()
    return changed
