"""The baseline's partial-coverage configuration parser.

Recognizes the "most popular router features" subset a reference model
supports — interfaces, IS-IS, BGP, static routes, routing policy — and
*counts every line it cannot interpret*, which is the metric the paper's
E2 experiment reports (38–42 unrecognized lines per production-derived
configuration, covering management daemons, gRPC/gNMI/SSL services, and
MPLS/MPLS-TE).

The parser processes lines strictly in order, carrying the two
documented model defects (:mod:`repro.batfish_model.issues`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.batfish_model.issues import DEFAULT_ASSUMPTIONS, ModelAssumptions
from repro.device.acl import Acl
from repro.device.interfaces import InterfaceConfig, IsisInterfaceSettings
from repro.device.model import (
    BgpConfig,
    BgpNeighborConfig,
    DeviceConfig,
    IsisConfig,
    StaticRouteConfig,
)
from repro.device.routing_policy import (
    Community,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.net.addr import AddressError, Prefix, parse_ipv4

_SWITCHED_PREFIXES = ("Ethernet", "Port-Channel")


@dataclass
class UnrecognizedLine:
    """One line outside the model's grammar (the E2 unit of count)."""
    line_number: int
    text: str
    reason: str

    def __str__(self) -> str:
        return f"line {self.line_number}: {self.text.strip()!r} ({self.reason})"


@dataclass
class ModelParseResult:
    """Everything the model extracted from one configuration."""

    device: DeviceConfig
    total_lines: int = 0
    recognized_lines: int = 0
    unrecognized: list[UnrecognizedLine] = field(default_factory=list)

    @property
    def unrecognized_count(self) -> int:
        return len(self.unrecognized)

    @property
    def coverage(self) -> float:
        if self.total_lines == 0:
            return 1.0
        return self.recognized_lines / self.total_lines


class _ModelParser:
    """Strictly line-ordered parser with a fixed grammar subset."""

    def __init__(self, assumptions: ModelAssumptions) -> None:
        self.assumptions = assumptions
        self.device = DeviceConfig()
        self.result = ModelParseResult(device=self.device)
        self._iface: InterfaceConfig | None = None
        self._section: str | None = None
        self._route_map_clause: RouteMapClause | None = None
        self._acl: Acl | None = None
        self._acl_auto_seq = 10

    def parse(self, text: str) -> ModelParseResult:
        for number, raw in enumerate(text.splitlines(), start=1):
            stripped = raw.strip()
            if not stripped or stripped.startswith("!"):
                continue
            self.result.total_lines += 1
            if not raw.startswith((" ", "\t")):
                self._iface = None
                self._section = None
                self._route_map_clause = None
                recognized = self._top_level(number, stripped)
            else:
                recognized = self._body(number, stripped)
            if recognized:
                self.result.recognized_lines += 1
        return self.result

    def _miss(self, number: int, text: str, reason: str) -> bool:
        self.result.unrecognized.append(
            UnrecognizedLine(line_number=number, text=text, reason=reason)
        )
        return False

    # -- top level -------------------------------------------------------------

    def _top_level(self, number: int, line: str) -> bool:
        words = line.split()
        if line.startswith("hostname "):
            self.device.hostname = words[1]
        elif line.startswith("interface "):
            name = line.split(None, 1)[1]
            self._iface = self.device.interface(name)
            self._iface.switchport = name.startswith(_SWITCHED_PREFIXES)
            self._section = "interface"
        elif line.startswith("router isis"):
            tag = words[2] if len(words) > 2 else "default"
            self.device.isis = self.device.isis or IsisConfig(tag=tag)
            self.device.isis.tag = tag
            self._section = "isis"
        elif line.startswith("router bgp ") and words[2].isdigit():
            self.device.bgp = self.device.bgp or BgpConfig(asn=int(words[2]))
            self.device.bgp.asn = int(words[2])
            self._section = "bgp"
        elif line == "ip routing":
            self.device.ip_routing = True
        elif line.startswith("ip route "):
            return self._static_route(number, line, words)
        elif line.startswith("ip prefix-list "):
            return self._prefix_list(number, line, words)
        elif line.startswith("ip access-list ") and len(words) >= 3:
            self._acl = self.device.acls.setdefault(
                words[2], Acl(name=words[2])
            )
            self._acl_auto_seq = 10
            self._section = "access-list"
        elif line.startswith("route-map ") and len(words) >= 4:
            return self._route_map_head(number, line, words)
        elif line.startswith(("ntp ", "snmp-server ", "spanning-tree ",
                              "aaa ", "username ", "logging ", "banner ",
                              "clock ", "dns ", "ip name-server", "end")):
            # Day-one operational config the reference model does parse.
            self._section = "opaque-known"
        else:
            # Everything else — daemons, management api stanzas, MPLS,
            # traffic-engineering, transceivers, service models... — is
            # outside the model's grammar.
            self._section = "unknown"
            return self._miss(number, line, "unsupported feature")
        return True

    # -- section bodies ------------------------------------------------------------

    def _body(self, number: int, line: str) -> bool:
        if self._section == "interface":
            return self._interface_line(number, line)
        if self._section == "isis":
            return self._isis_line(number, line)
        if self._section == "bgp":
            return self._bgp_line(number, line)
        if self._section == "route-map":
            return self._route_map_line(number, line)
        if self._section == "access-list":
            return self._acl_line(number, line)
        if self._section == "opaque-known":
            return True
        return self._miss(number, line, "body of unsupported stanza")

    def _interface_line(self, number: int, line: str) -> bool:
        iface = self._iface
        assert iface is not None
        words = line.split()
        if line.startswith("description "):
            iface.description = line.split(None, 1)[1]
        elif line == "no switchport":
            iface.switchport = False
        elif line == "switchport":
            iface.switchport = True
        elif line.startswith("ip address "):
            if self.assumptions.order_sensitive_switchport and iface.switchport:
                # Issue #1: the model assumes routed-mode must already
                # be set; the address is silently dropped (recognized
                # syntax, wrong semantics — no warning emitted, which is
                # what made this dangerous).
                return True
            try:
                address_text, _, length = words[2].partition("/")
                iface.address = parse_ipv4(address_text)
                iface.prefix_length = int(length)
            except (IndexError, ValueError, AddressError):
                return self._miss(number, line, "malformed address")
        elif line == "shutdown":
            iface.shutdown = True
        elif line == "no shutdown":
            iface.shutdown = False
        elif line.startswith("isis enable "):
            if (
                self.assumptions.reject_isis_enable_without_address
                and not iface.has_address
            ):
                # Issue #2: reported as invalid syntax.
                return self._miss(number, line, "invalid syntax")
            tag = words[2] if len(words) > 2 else "default"
            iface.isis = iface.isis or IsisInterfaceSettings()
            iface.isis.tag = tag
        elif line.startswith("isis metric ") and words[2].isdigit():
            iface.isis = iface.isis or IsisInterfaceSettings()
            iface.isis.metric = int(words[2])
        elif line in ("isis passive", "isis passive-interface default"):
            iface.isis = iface.isis or IsisInterfaceSettings()
            iface.isis.passive = True
        elif line.startswith("ip access-group ") and len(words) == 4:
            if words[3] == "in":
                iface.acl_in = words[2]
            elif words[3] == "out":
                iface.acl_out = words[2]
            else:
                return self._miss(number, line, "bad access-group direction")
        elif line.startswith(("speed", "mtu", "load-interval")):
            pass
        else:
            return self._miss(number, line, "unsupported interface option")
        return True

    def _acl_line(self, number: int, line: str) -> bool:
        from repro.vendors.arista.config_parser import AristaConfigParser

        assert self._acl is not None
        words = line.split()
        try:
            if words and words[0].isdigit():
                seq = int(words[0])
                words = words[1:]
            else:
                seq = self._acl_auto_seq
            rule = AristaConfigParser._acl_rule(seq, words)
        except (IndexError, ValueError, AddressError):
            rule = None
        if rule is None:
            return self._miss(number, line, "unsupported access-list rule")
        self._acl.add(rule)
        self._acl_auto_seq = max(self._acl_auto_seq, seq) + 10
        return True

    def _isis_line(self, number: int, line: str) -> bool:
        isis = self.device.isis
        assert isis is not None
        if line.startswith("net "):
            isis.net = line.split()[1]
        elif line.startswith("address-family ipv4"):
            isis.ipv4_unicast = True
        elif line.startswith("is-type "):
            pass
        elif line == "passive-interface default":
            isis.passive_default = True
        else:
            return self._miss(number, line, "unsupported isis option")
        return True

    def _bgp_line(self, number: int, line: str) -> bool:
        bgp = self.device.bgp
        assert bgp is not None
        words = line.split()
        try:
            if line.startswith("router-id "):
                bgp.router_id = parse_ipv4(words[1])
            elif line.startswith("neighbor "):
                return self._bgp_neighbor(number, line, words, bgp)
            elif line.startswith("network "):
                bgp.networks.append(Prefix.parse(words[1]))
            elif line == "redistribute connected":
                bgp.redistribute_connected = True
            elif line.startswith("maximum-paths ") and words[1].isdigit():
                bgp.maximum_paths = int(words[1])
            elif line.startswith("address-family ipv4"):
                pass
            elif words[0] in ("bgp", "timers", "no"):
                pass
            else:
                return self._miss(number, line, "unsupported bgp option")
        except (IndexError, ValueError, AddressError):
            return self._miss(number, line, "malformed bgp option")
        return True

    def _bgp_neighbor(
        self, number: int, line: str, words: list[str], bgp: BgpConfig
    ) -> bool:
        try:
            peer = parse_ipv4(words[1])
        except AddressError:
            return self._miss(number, line, "malformed neighbor")
        neighbor = bgp.neighbors.setdefault(
            peer, BgpNeighborConfig(peer_address=peer, remote_as=0)
        )
        knob = words[2] if len(words) > 2 else ""
        rest = words[3:]
        if knob == "remote-as" and rest and rest[0].isdigit():
            neighbor.remote_as = int(rest[0])
        elif knob == "update-source" and rest:
            neighbor.update_source = rest[0]
        elif knob == "next-hop-self":
            neighbor.next_hop_self = True
        elif knob == "send-community":
            neighbor.send_community = True
        elif knob == "route-map" and len(rest) == 2 and rest[1] in ("in", "out"):
            if rest[1] == "in":
                neighbor.route_map_in = rest[0]
            else:
                neighbor.route_map_out = rest[0]
        elif knob == "description":
            neighbor.description = " ".join(rest)
        elif knob == "route-reflector-client":
            neighbor.route_reflector_client = True
        elif knob in ("activate", "maximum-routes", "timers"):
            pass
        else:
            return self._miss(number, line, "unsupported neighbor option")
        return True

    def _static_route(self, number: int, line: str, words: list[str]) -> bool:
        try:
            prefix = Prefix.parse(words[2])
            target = words[3]
        except (IndexError, AddressError):
            return self._miss(number, line, "malformed static route")
        if target.lower() == "null0":
            self.device.static_routes.append(
                StaticRouteConfig(prefix=prefix, discard=True)
            )
            return True
        try:
            next_hop = parse_ipv4(target)
        except AddressError:
            self.device.static_routes.append(
                StaticRouteConfig(prefix=prefix, interface=target)
            )
            return True
        self.device.static_routes.append(
            StaticRouteConfig(prefix=prefix, next_hop=next_hop)
        )
        return True

    def _prefix_list(self, number: int, line: str, words: list[str]) -> bool:
        try:
            name = words[2]
            seq = int(words[4])
            permit = words[5] == "permit"
            prefix = Prefix.parse(words[6])
        except (IndexError, ValueError, AddressError):
            return self._miss(number, line, "malformed prefix-list")
        ge = le = None
        rest = words[7:]
        while len(rest) >= 2:
            if rest[0] == "ge":
                ge = int(rest[1])
            elif rest[0] == "le":
                le = int(rest[1])
            rest = rest[2:]
        plist = self.device.prefix_lists.setdefault(name, PrefixList(name=name))
        plist.add(PrefixListEntry(seq=seq, permit=permit, prefix=prefix, ge=ge, le=le))
        return True

    def _route_map_head(self, number: int, line: str, words: list[str]) -> bool:
        try:
            name, action, seq = words[1], words[2], int(words[3])
        except (IndexError, ValueError):
            return self._miss(number, line, "malformed route-map")
        clause = RouteMapClause(seq=seq, permit=(action == "permit"))
        route_map = self.device.route_maps.setdefault(name, RouteMap(name=name))
        route_map.add(clause)
        self._route_map_clause = clause
        self._section = "route-map"
        return True

    def _route_map_line(self, number: int, line: str) -> bool:
        clause = self._route_map_clause
        assert clause is not None
        words = line.split()
        try:
            if line.startswith("match ip address prefix-list "):
                clause.match_prefix_list = words[-1]
            elif line.startswith("match community "):
                clause.match_community = Community.parse(words[-1])
            elif line.startswith("set local-preference "):
                clause.set_local_pref = int(words[-1])
            elif line.startswith("set metric "):
                clause.set_med = int(words[-1])
            elif line.startswith("set community "):
                clause.set_communities = tuple(
                    Community.parse(t) for t in words[2:] if t != "additive"
                )
            elif line.startswith("set as-path prepend "):
                clause.set_as_path_prepend = tuple(int(t) for t in words[3:])
            else:
                return self._miss(number, line, "unsupported route-map option")
        except ValueError:
            return self._miss(number, line, "malformed route-map option")
        return True


def parse_with_model(
    text: str,
    assumptions: ModelAssumptions = DEFAULT_ASSUMPTIONS,
) -> ModelParseResult:
    """Parse one configuration with the reference model's grammar."""
    return _ModelParser(assumptions).parse(text)
