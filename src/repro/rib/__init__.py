"""Routing information base and forwarding information base.

Each emulated router owns one :class:`Rib`. Protocol engines install
:class:`Route` objects into it; the RIB performs best-route selection by
administrative distance and metric, resolves recursive next hops, and
maintains the :class:`Fib` that the gNMI AFT export reads.
"""

from repro.rib.route import NextHop, Protocol, ResolvedNextHop, Route
from repro.rib.rib import Rib
from repro.rib.fib import Fib, FibAction, FibEntry

__all__ = [
    "Fib",
    "FibAction",
    "FibEntry",
    "NextHop",
    "Protocol",
    "ResolvedNextHop",
    "Rib",
    "Route",
]
