"""Best-route selection and next-hop resolution.

The RIB accepts one candidate :class:`Route` per (protocol, prefix) —
each protocol engine runs its own internal selection first, exactly as on
a real router (the BGP decision process picks one best path before
offering it to the RIB). The RIB then:

* picks the overall best route per prefix by (admin distance, metric);
* resolves next hops, recursively for bare-IP (BGP) next hops;
* maintains the device :class:`Fib` incrementally.

Recursive resolution makes BGP-over-IGP ordering observable: an iBGP
route whose next hop is not yet covered by an IGP route stays out of the
FIB until the IGP converges, which is a real effect the paper's
emulation-based approach captures and simple models often idealize.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.net.addr import Prefix
from repro.net.trie import PrefixTrie
from repro.rib.fib import Fib, FibAction, FibEntry
from repro.rib.route import NextHop, Protocol, ResolvedNextHop, Route

_IGP_PROTOCOLS = frozenset(
    {Protocol.LOCAL, Protocol.CONNECTED, Protocol.STATIC, Protocol.ISIS}
)
_MAX_RESOLUTION_DEPTH = 8


class Rib:
    """The unified routing table of one emulated device."""

    def __init__(self, clock: Callable[[], float] = lambda: 0.0) -> None:
        self._clock = clock
        self._routes: dict[Prefix, dict[Protocol, Route]] = {}
        self._best: PrefixTrie[Route] = PrefixTrie()
        self._recursive_prefixes: set[Prefix] = set()
        self._resolution_dirty = False
        # Bumped whenever a non-BGP (IGP-layer) best route changes;
        # drives BGP next-hop tracking without self-triggering on BGP's
        # own installs.
        self.igp_version = 0
        self.fib = Fib()

    # -- mutation ---------------------------------------------------------

    def install(self, route: Route) -> None:
        """Offer ``route`` as the ``route.protocol`` candidate for its prefix."""
        candidates = self._routes.setdefault(route.prefix, {})
        candidates[route.protocol] = route
        self._reselect(route.prefix)

    def withdraw(self, protocol: Protocol, prefix: Prefix) -> None:
        candidates = self._routes.get(prefix)
        if not candidates or protocol not in candidates:
            return
        del candidates[protocol]
        if not candidates:
            del self._routes[prefix]
        self._reselect(prefix)

    def withdraw_all(self, protocol: Protocol) -> None:
        for prefix in [
            p for p, cands in self._routes.items() if protocol in cands
        ]:
            self.withdraw(protocol, prefix)

    def commit(self) -> bool:
        """Re-resolve recursive routes if the IGP layer changed.

        Called by the router OS after each protocol event batch. Returns
        True if the FIB changed as a result.
        """
        if not self._resolution_dirty:
            return False
        self._resolution_dirty = False
        changed = False
        for prefix in list(self._recursive_prefixes):
            best = self._best_route(prefix)
            if best is not None:
                changed |= self._program(best)
        return changed

    # -- queries ------------------------------------------------------------

    def best_routes(self) -> Iterator[Route]:
        yield from self._best.values()

    def best(self, prefix: Prefix) -> Optional[Route]:
        return self._best.get(prefix)

    def routes_for(self, prefix: Prefix) -> list[Route]:
        return list(self._routes.get(prefix, {}).values())

    def longest_match(self, address: int) -> Optional[Route]:
        match = self._best.longest_match(address)
        return match[1] if match else None

    def resolve_ip(self, address: int) -> Optional[tuple[Route, int]]:
        """Resolve ``address`` to a directly connected route.

        Follows bare-IP next hops through the RIB until reaching a route
        whose next hop names an interface. Returns (final route, gateway
        ip) or None when unresolvable (or a resolution loop is hit).
        """
        gateway = address
        for _ in range(_MAX_RESOLUTION_DEPTH):
            route = self.longest_match(gateway)
            if route is None or not route.next_hops:
                return None
            hop = route.next_hops[0]
            if hop.interface is not None:
                return route, gateway
            assert hop.ip is not None
            if hop.ip == gateway:
                return None
            gateway = hop.ip
        return None

    def __len__(self) -> int:
        return len(self._best)

    # -- internals ------------------------------------------------------------

    def _best_route(self, prefix: Prefix) -> Optional[Route]:
        candidates = self._routes.get(prefix)
        if not candidates:
            return None
        return min(
            candidates.values(),
            key=lambda r: (
                r.effective_distance,
                # A device's own address beats the covering connected
                # route: /32 local entries must stay RECEIVE.
                r.protocol is not Protocol.LOCAL,
                r.metric,
                r.protocol.value,
            ),
        )

    def _reselect(self, prefix: Prefix) -> None:
        old = self._best.get(prefix)
        new = self._best_route(prefix)
        if new is old:
            # Same object re-installed: still reprogram (next hops may
            # differ only in resolution context), but cheaply.
            if new is not None:
                self._program(new)
            return
        if new is None:
            self._best.remove(prefix)
            self._recursive_prefixes.discard(prefix)
            self.fib.remove_entry(prefix, self._clock())
        else:
            self._best.insert(prefix, new)
            self._program(new)
        if self._touches_resolution(old) or self._touches_resolution(new):
            self._resolution_dirty = True
            self.igp_version += 1

    @staticmethod
    def _touches_resolution(route: Optional[Route]) -> bool:
        return route is not None and route.protocol in _IGP_PROTOCOLS

    def _program(self, route: Route) -> bool:
        """Compute and install the FIB entry for ``route``."""
        if not route.next_hops:
            entry = FibEntry(route.prefix, FibAction.DISCARD)
            return self.fib.set_entry(entry, self._clock())
        if route.protocol is Protocol.LOCAL:
            entry = FibEntry(route.prefix, FibAction.RECEIVE)
            return self.fib.set_entry(entry, self._clock())
        resolved: list[ResolvedNextHop] = []
        needs_recursion = False
        for hop in route.next_hops:
            if hop.interface is not None:
                resolved.append(ResolvedNextHop(hop.interface, hop.ip))
                continue
            needs_recursion = True
            assert hop.ip is not None
            resolution = self._resolve_recursive(hop.ip)
            if resolution is not None:
                resolved.extend(resolution)
        if needs_recursion:
            self._recursive_prefixes.add(route.prefix)
        else:
            self._recursive_prefixes.discard(route.prefix)
        if not resolved:
            # Unresolvable: keep out of the FIB entirely.
            return self.fib.remove_entry(route.prefix, self._clock())
        unique = tuple(dict.fromkeys(resolved))
        entry = FibEntry(route.prefix, FibAction.FORWARD, unique)
        return self.fib.set_entry(entry, self._clock())

    def _resolve_recursive(
        self, address: int, depth: int = 0
    ) -> Optional[list[ResolvedNextHop]]:
        if depth >= _MAX_RESOLUTION_DEPTH:
            return None
        route = self.longest_match(address)
        if route is None or route.protocol is Protocol.LOCAL:
            return None
        out: list[ResolvedNextHop] = []
        for hop in route.next_hops:
            if hop.interface is not None:
                if hop.ip is not None:
                    out.append(ResolvedNextHop(hop.interface, hop.ip))
                else:
                    # Connected route: the resolved gateway is the
                    # original address on the attached subnet.
                    out.append(ResolvedNextHop(hop.interface, address))
            elif hop.ip is not None and hop.ip != address:
                deeper = self._resolve_recursive(hop.ip, depth + 1)
                if deeper:
                    out.extend(deeper)
        return out or None
