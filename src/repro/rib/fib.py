"""Forwarding information base."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.net.addr import Prefix
from repro.net.trie import PrefixTrie
from repro.rib.route import ResolvedNextHop


class FibAction(enum.Enum):
    """What the dataplane does with a matching packet."""
    FORWARD = "forward"
    RECEIVE = "receive"  # address owned by this device
    DISCARD = "discard"  # null route


@dataclass(frozen=True)
class FibEntry:
    """One resolved forwarding entry."""
    prefix: Prefix
    action: FibAction
    next_hops: tuple[ResolvedNextHop, ...] = ()

    def __str__(self) -> str:
        if self.action is FibAction.FORWARD:
            hops = "; ".join(str(nh) for nh in self.next_hops)
            return f"{self.prefix} -> {hops}"
        return f"{self.prefix} -> {self.action.value}"


# Process-wide FIB change counter. Convergence detection over thousands
# of routers compares this single integer per event instead of walking
# every device table.
_GLOBAL_VERSION = 0


def global_fib_version() -> int:
    return _GLOBAL_VERSION


class Fib:
    """The resolved forwarding table of one device.

    Tracks a monotonically increasing ``version`` plus the simulated
    time of the last change — convergence detection watches these.
    """

    def __init__(self) -> None:
        self._trie: PrefixTrie[FibEntry] = PrefixTrie()
        self.version = 0
        self.last_change_time = 0.0

    @staticmethod
    def _bump_global() -> None:
        global _GLOBAL_VERSION
        _GLOBAL_VERSION += 1

    def set_entry(self, entry: FibEntry, now: float) -> bool:
        """Install or replace one entry; returns True if it changed."""
        old = self._trie.get(entry.prefix)
        if old == entry:
            return False
        self._trie.insert(entry.prefix, entry)
        self.version += 1
        self.last_change_time = now
        self._bump_global()
        return True

    def remove_entry(self, prefix: Prefix, now: float) -> bool:
        """Remove the entry for ``prefix``; returns True if one existed."""
        if self._trie.remove(prefix) is None:
            return False
        self.version += 1
        self.last_change_time = now
        self._bump_global()
        return True

    def replace_all(self, entries: list[FibEntry], now: float) -> bool:
        """Atomically swap in a new table; returns True if it changed."""
        new_map = {e.prefix: e for e in entries}
        old_map = {p: e for p, e in self._trie.items()}
        if new_map == old_map:
            return False
        self._trie.clear()
        for entry in entries:
            self._trie.insert(entry.prefix, entry)
        self.version += 1
        self.last_change_time = now
        self._bump_global()
        return True

    def lookup(self, address: int) -> Optional[FibEntry]:
        match = self._trie.longest_match(address)
        return match[1] if match else None

    def entries(self) -> Iterator[FibEntry]:
        yield from self._trie.values()

    def __len__(self) -> int:
        return len(self._trie)

    def __repr__(self) -> str:
        return f"Fib(entries={len(self._trie)}, version={self.version})"
