"""Route value types."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.net.addr import Prefix, format_ipv4


class Protocol(enum.Enum):
    """Route source protocols, with default administrative distances."""

    LOCAL = "local"
    CONNECTED = "connected"
    STATIC = "static"
    ISIS = "isis"
    BGP_EXTERNAL = "ebgp"
    BGP_INTERNAL = "ibgp"
    RSVP_TE = "rsvp-te"

    @property
    def admin_distance(self) -> int:
        return _ADMIN_DISTANCE[self]


_ADMIN_DISTANCE = {
    Protocol.LOCAL: 0,
    Protocol.CONNECTED: 0,
    Protocol.STATIC: 1,
    Protocol.RSVP_TE: 7,
    Protocol.BGP_EXTERNAL: 20,
    Protocol.ISIS: 115,
    Protocol.BGP_INTERNAL: 200,
}


@dataclass(frozen=True)
class NextHop:
    """An unresolved next hop as installed by a protocol.

    Either a directly attached interface (connected/local routes), an IP
    reachable over a connected subnet (IGP routes), or a bare IP needing
    recursive resolution (BGP next hops).
    """

    ip: Optional[int] = None
    interface: Optional[str] = None

    def __post_init__(self) -> None:
        if self.ip is None and self.interface is None:
            raise ValueError("next hop needs an ip, an interface, or both")

    def __str__(self) -> str:
        if self.ip is not None and self.interface is not None:
            return f"{format_ipv4(self.ip)} via {self.interface}"
        if self.ip is not None:
            return format_ipv4(self.ip)
        return f"directly via {self.interface}"


@dataclass(frozen=True)
class ResolvedNextHop:
    """A fully resolved forwarding action: out interface + gateway IP."""

    interface: str
    ip: Optional[int] = None

    def __str__(self) -> str:
        if self.ip is None:
            return f"attached via {self.interface}"
        return f"{format_ipv4(self.ip)} via {self.interface}"


@dataclass(frozen=True)
class Route:
    """A candidate route offered to the RIB by a protocol engine.

    ``metric`` breaks ties between same-protocol routes for the same
    prefix; cross-protocol ties go to the lower administrative distance.
    ``source`` is opaque protocol bookkeeping (e.g. the BGP path).
    """

    prefix: Prefix
    protocol: Protocol
    next_hops: tuple[NextHop, ...]
    metric: int = 0
    distance: Optional[int] = None
    source: Any = None

    @property
    def effective_distance(self) -> int:
        if self.distance is not None:
            return self.distance
        return self.protocol.admin_distance

    def __str__(self) -> str:
        hops = ", ".join(str(nh) for nh in self.next_hops) or "discard"
        return (
            f"{self.prefix} [{self.effective_distance}/{self.metric}] "
            f"{self.protocol.value} via {hops}"
        )
