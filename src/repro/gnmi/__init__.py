"""gNMI-style management interface and OpenConfig AFT data model.

The vendor-agnostic extraction boundary of the paper's system: after
convergence, the pipeline issues a gNMI Get for the AFT subtree on every
device and hands the resulting snapshots to the verification stage. All
vendors export the same OpenConfig-shaped structure, which is what makes
the verification stage vendor-independent.
"""

from repro.gnmi.aft import AftIpv4Entry, AftNextHop, AftNextHopGroup, AftSnapshot
from repro.gnmi.paths import GnmiPath, parse_path
from repro.gnmi.server import (
    ExtractionError,
    ExtractionReport,
    GnmiError,
    GnmiServer,
    GnmiUnavailableError,
    dump_afts,
    extract_afts,
)

__all__ = [
    "AftIpv4Entry",
    "AftNextHop",
    "AftNextHopGroup",
    "AftSnapshot",
    "ExtractionError",
    "ExtractionReport",
    "GnmiError",
    "GnmiServer",
    "GnmiUnavailableError",
    "dump_afts",
    "extract_afts",
    "parse_path",
]
