"""Per-device gNMI Get service.

Supports the paths the model-free pipeline uses:

* ``/network-instances/network-instance[name=default]/afts`` — the AFT
  dump (the paper's extraction step);
* ``/interfaces`` and ``/interfaces/interface[name=X]`` — interface
  state;
* ``/system/state/hostname``.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.gnmi.aft import AftSnapshot
from repro.gnmi.paths import GnmiPath, parse_path
from repro.obs import bus

if TYPE_CHECKING:
    from repro.vendors.base import RouterOS


class GnmiError(RuntimeError):
    """Raised for unsupported paths or unavailable targets."""


class GnmiServer:
    """The management RPC endpoint of one emulated router."""

    def __init__(self, router: "RouterOS") -> None:
        self.router = router

    def capabilities(self) -> dict:
        """The gNMI Capabilities response: supported models + encodings."""
        return {
            "supported-models": [
                {
                    "name": "openconfig-network-instance",
                    "organization": "OpenConfig working group",
                    "version": "1.3.0",
                },
                {
                    "name": "openconfig-interfaces",
                    "organization": "OpenConfig working group",
                    "version": "3.0.0",
                },
                {
                    "name": "openconfig-aft",
                    "organization": "OpenConfig working group",
                    "version": "2.3.0",
                },
            ],
            "supported-encodings": ["JSON_IETF"],
            "gnmi-version": "0.10.0",
        }

    def get(self, path: Union[str, GnmiPath]) -> dict:
        """Serve a gNMI Get for ``path``."""
        if self.router.state.value != "running":
            raise GnmiError(f"{self.router.name}: target unavailable (booting)")
        if isinstance(path, str):
            path = parse_path(path)
        if path.starts_with("network-instances"):
            return self._get_afts(path)
        if path.starts_with("interfaces"):
            return self._get_interfaces(path)
        if path.starts_with("system"):
            return {"system": {"state": {"hostname": self.router.name}}}
        if path.starts_with("acls"):
            return {"acls": self._snapshot().to_dict()["acls"]}
        raise GnmiError(f"unsupported path: {path}")

    def subscribe(self, path: Union[str, GnmiPath], callback) -> "Subscription":
        """gNMI Subscribe, ON_CHANGE mode: ``callback(update_dict)``
        fires whenever the device FIB changes. This is how a streaming
        pipeline watches for dataplane stabilization without polling."""
        if isinstance(path, str):
            path = parse_path(path)
        return Subscription(self, path, callback)

    def _snapshot(self) -> AftSnapshot:
        return AftSnapshot.from_router(self.router, now=self.router.kernel.now)

    def _get_afts(self, path: GnmiPath) -> dict:
        if len(path) >= 2:
            instance = path.elements[1]
            if instance.keys and instance.key("name") != "default":
                raise GnmiError(f"unknown network instance in {path}")
        full = self._snapshot().to_dict()
        return {"network-instances": full["network-instances"], "meta": full["meta"]}

    def _get_interfaces(self, path: GnmiPath) -> dict:
        full = self._snapshot().to_dict()
        interfaces = full["interfaces"]["interface"]
        if len(path) >= 2 and path.elements[1].keys:
            wanted = path.elements[1].key("name")
            interfaces = [i for i in interfaces if i["name"] == wanted]
            if not interfaces:
                raise GnmiError(f"no such interface: {wanted}")
        return {"interfaces": {"interface": interfaces}}


class Subscription:
    """A gNMI Subscribe (ON_CHANGE) handle."""

    def __init__(self, server: "GnmiServer", path, callback) -> None:
        self._server = server
        self._path = path
        self._callback = callback
        self._active = True
        server.router.on_fib_change(self._on_change)
        self.updates_delivered = 0

    def _on_change(self, version: int) -> None:
        if not self._active:
            return
        self.updates_delivered += 1
        self._callback(
            {
                "timestamp": self._server.router.kernel.now,
                "path": str(self._path),
                "sync-version": version,
                "update": self._server.get(self._path),
            }
        )

    def cancel(self) -> None:
        self._active = False


def dump_afts(
    deployment, nodes: Optional[Iterable[str]] = None
) -> dict[str, AftSnapshot]:
    """gNMI-extract AFT snapshots from every device in a deployment.

    This is the upper-to-lower-stage hand-off of the paper's Fig. 1: the
    output is pure data, decoupled from the running emulation.

    ``nodes`` restricts extraction to a subset of devices. What-if
    campaigns use it to skip killed pods: a failed node's router object
    still answers gNMI with its frozen pre-failure FIB, which must not
    masquerade as live forwarding state.
    """
    snapshots: dict[str, AftSnapshot] = {}
    collector = bus.ACTIVE
    wanted = set(nodes) if nodes is not None else None
    for name, router in deployment.routers.items():
        if wanted is not None and name not in wanted:
            continue
        started = time.perf_counter() if collector.enabled else 0.0
        server = GnmiServer(router)
        data = server.get("/network-instances/network-instance[name=default]/afts")
        interfaces = server.get("/interfaces")
        acls = server.get("/acls")
        merged = dict(data)
        merged["interfaces"] = interfaces["interfaces"]
        merged["acls"] = acls["acls"]
        snapshots[name] = AftSnapshot.from_dict(merged)
        if collector.enabled:
            collector.emit(
                "gnmi.aft.dump",
                router.kernel.now,
                node=name,
                entries=len(snapshots[name]),
                wall_ms=(time.perf_counter() - started) * 1e3,
            )
    return snapshots
