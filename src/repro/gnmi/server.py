"""Per-device gNMI Get service.

Supports the paths the model-free pipeline uses:

* ``/network-instances/network-instance[name=default]/afts`` — the AFT
  dump (the paper's extraction step);
* ``/interfaces`` and ``/interfaces/interface[name=X]`` — interface
  state;
* ``/system/state/hostname``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.gnmi.aft import AftSnapshot
from repro.gnmi.paths import GnmiPath, parse_path
from repro.net.addr import format_ipv4
from repro.obs import bus

if TYPE_CHECKING:
    from repro.vendors.base import RouterOS


class GnmiError(RuntimeError):
    """Raised for unsupported paths or unavailable targets."""


class GnmiUnavailableError(GnmiError):
    """A transient target failure: booting, crashed pod, or an injected
    RPC flake. Retryable — the hardened extraction path backs off and
    tries again instead of failing the whole pipeline."""


class ExtractionError(GnmiError):
    """Extraction exhausted its retry budget for one or more nodes.

    Raised by the strict :func:`dump_afts` wrapper; callers that can
    tolerate partial results use :func:`extract_afts` and consume the
    ``degraded`` manifest instead.
    """

    def __init__(self, degraded: dict[str, str]) -> None:
        self.degraded = dict(degraded)
        names = ", ".join(sorted(degraded))
        super().__init__(
            f"AFT extraction failed for {len(degraded)} node(s): {names}"
        )


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    try:
        return max(minimum, int(os.environ.get(name, default)))
    except (TypeError, ValueError):
        return default


def _env_float(name: str, default: float, minimum: float = 0.0) -> float:
    try:
        return max(minimum, float(os.environ.get(name, default)))
    except (TypeError, ValueError):
        return default


class GnmiServer:
    """The management RPC endpoint of one emulated router."""

    def __init__(self, router: "RouterOS") -> None:
        self.router = router

    def capabilities(self) -> dict:
        """The gNMI Capabilities response: supported models + encodings."""
        return {
            "supported-models": [
                {
                    "name": "openconfig-network-instance",
                    "organization": "OpenConfig working group",
                    "version": "1.3.0",
                },
                {
                    "name": "openconfig-interfaces",
                    "organization": "OpenConfig working group",
                    "version": "3.0.0",
                },
                {
                    "name": "openconfig-aft",
                    "organization": "OpenConfig working group",
                    "version": "2.3.0",
                },
            ],
            "supported-encodings": ["JSON_IETF"],
            "gnmi-version": "0.10.0",
        }

    def get(self, path: Union[str, GnmiPath]) -> dict:
        """Serve a gNMI Get for ``path``."""
        if self.router.state.value != "running":
            raise GnmiUnavailableError(
                f"{self.router.name}: target unavailable (booting)"
            )
        injector = getattr(self.router, "fault_injector", None)
        if injector is not None:
            # May raise GnmiUnavailableError (an injected RPC flake).
            injector.before_gnmi_get(self.router.name, str(path))
        if isinstance(path, str):
            path = parse_path(path)
        if path.starts_with("network-instances"):
            return self._get_afts(path)
        if path.starts_with("interfaces"):
            return self._get_interfaces(path)
        if path.starts_with("system"):
            return {"system": {"state": {"hostname": self.router.name}}}
        if path.starts_with("acls"):
            return {"acls": self._snapshot().to_dict()["acls"]}
        raise GnmiError(f"unsupported path: {path}")

    def subscribe(self, path: Union[str, GnmiPath], callback) -> "Subscription":
        """gNMI Subscribe, ON_CHANGE mode: ``callback(update_dict)``
        fires whenever the device FIB changes. This is how a streaming
        pipeline watches for dataplane stabilization without polling."""
        if isinstance(path, str):
            path = parse_path(path)
        return Subscription(self, path, callback)

    def _snapshot(self) -> AftSnapshot:
        return AftSnapshot.from_router(self.router, now=self.router.kernel.now)

    def _get_afts(self, path: GnmiPath) -> dict:
        if len(path) >= 2:
            instance = path.elements[1]
            if instance.keys and instance.key("name") != "default":
                raise GnmiError(f"unknown network instance in {path}")
        full = self._snapshot().to_dict()
        injector = getattr(self.router, "fault_injector", None)
        if injector is not None:
            # Stale or truncated AFT responses, keyed off the FIB
            # version counter carried in ``meta`` so the extraction
            # staleness re-check can catch them.
            full = injector.transform_aft(self.router.name, full)
        return {"network-instances": full["network-instances"], "meta": full["meta"]}

    def _get_interfaces(self, path: GnmiPath) -> dict:
        full = self._snapshot().to_dict()
        interfaces = full["interfaces"]["interface"]
        if len(path) >= 2 and path.elements[1].keys:
            wanted = path.elements[1].key("name")
            interfaces = [i for i in interfaces if i["name"] == wanted]
            if not interfaces:
                raise GnmiError(f"no such interface: {wanted}")
        return {"interfaces": {"interface": interfaces}}


class Subscription:
    """A gNMI Subscribe (ON_CHANGE) handle."""

    def __init__(self, server: "GnmiServer", path, callback) -> None:
        self._server = server
        self._path = path
        self._callback = callback
        self._active = True
        server.router.on_fib_change(self._on_change)
        self.updates_delivered = 0

    def _on_change(self, version: int) -> None:
        if not self._active:
            return
        self.updates_delivered += 1
        self._callback(
            {
                "timestamp": self._server.router.kernel.now,
                "path": str(self._path),
                "sync-version": version,
                "update": self._server.get(self._path),
            }
        )

    def cancel(self) -> None:
        self._active = False


@dataclass
class ExtractionReport:
    """The outcome of a hardened AFT extraction pass.

    ``afts`` holds every node that extracted cleanly; ``degraded`` maps
    each node that exhausted its retry budget to a reason string, and
    ``degraded_addresses`` carries those nodes' configured interface
    addresses (config-derived, so safe to report even when the frozen
    FIB is not) for the verification layer's ``UNKNOWN_DEGRADED``
    marking. ``retries`` counts per-node retry attempts.
    """

    afts: dict[str, AftSnapshot] = field(default_factory=dict)
    degraded: dict[str, str] = field(default_factory=dict)
    degraded_addresses: dict[str, list[str]] = field(default_factory=dict)
    retries: dict[str, int] = field(default_factory=dict)

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    @property
    def is_partial(self) -> bool:
        return bool(self.degraded)


def _configured_addresses(router) -> list[str]:
    """The router's configured interface addresses (incl. loopbacks).

    Addresses come from config, not the FIB, so they are trustworthy
    even for a node whose forwarding state could not be extracted —
    exactly what the degraded-node manifest needs.
    """
    addresses = []
    for name in sorted(router.ports):
        config = router.ports[name].config
        if config.is_routed and config.address is not None:
            addresses.append(format_ipv4(config.address))
    return addresses


def _extract_one(router) -> AftSnapshot:
    server = GnmiServer(router)
    data = server.get("/network-instances/network-instance[name=default]/afts")
    interfaces = server.get("/interfaces")
    acls = server.get("/acls")
    merged = dict(data)
    merged["interfaces"] = interfaces["interfaces"]
    merged["acls"] = acls["acls"]
    return AftSnapshot.from_dict(merged)


def extract_afts(
    deployment,
    nodes: Optional[Iterable[str]] = None,
    *,
    max_attempts: Optional[int] = None,
    backoff_base: Optional[float] = None,
    backoff_cap: Optional[float] = None,
) -> ExtractionReport:
    """gNMI-extract AFT snapshots with retry, backoff, and degradation.

    This is the upper-to-lower-stage hand-off of the paper's Fig. 1: the
    output is pure data, decoupled from the running emulation. Unlike
    the strict :func:`dump_afts`, this survives a faulty substrate:

    * a transient :class:`GnmiUnavailableError` (booting router, crashed
      pod, injected RPC flake) is retried up to ``max_attempts`` times
      with capped exponential backoff in *simulated* time — backing off
      runs the kernel forward, so a scheduled pod restart can heal the
      target between attempts;
    * every successful dump is re-checked for staleness: a snapshot
      whose ``fib_version`` no longer matches the live FIB (a dump that
      raced a convergence event, or an injected stale/truncated
      response) is discarded and retried;
    * a node still failing after the budget lands in the ``degraded``
      manifest with a reason, never silently in the result.

    Budgets default from ``MFV_CHAOS_RETRIES`` / ``MFV_CHAOS_BACKOFF`` /
    ``MFV_CHAOS_BACKOFF_CAP``. ``nodes`` restricts extraction to a
    subset of devices; unknown names raise ``KeyError`` rather than
    silently narrowing the snapshot.
    """
    if max_attempts is None:
        max_attempts = _env_int("MFV_CHAOS_RETRIES", 4)
    if backoff_base is None:
        backoff_base = _env_float("MFV_CHAOS_BACKOFF", 0.5)
    if backoff_cap is None:
        backoff_cap = _env_float("MFV_CHAOS_BACKOFF_CAP", 8.0)
    if nodes is not None:
        wanted = set(nodes)
        unknown = wanted - set(deployment.routers)
        if unknown:
            raise KeyError(
                "unknown node(s) in extraction request: "
                + ", ".join(sorted(unknown))
            )
        names = [n for n in deployment.routers if n in wanted]
    else:
        names = list(deployment.routers)

    report = ExtractionReport()
    collector = bus.ACTIVE
    kernel = deployment.kernel
    for name in names:
        router = deployment.routers[name]
        last_reason = ""
        for attempt in range(max_attempts):
            if attempt:
                report.retries[name] = report.retries.get(name, 0) + 1
                if collector.enabled:
                    collector.count("gnmi.retry")
                    collector.emit(
                        "gnmi.retry",
                        kernel.now,
                        node=name,
                        attempt=attempt,
                        reason=last_reason,
                    )
                # Capped exponential backoff in simulated time; running
                # the kernel forward lets restart/fault-expiry events
                # fire, so a retry can actually observe a healed target.
                delay = min(backoff_cap, backoff_base * (2 ** (attempt - 1)))
                registry = bus.metrics_registry()
                if registry.enabled:
                    registry.counter(
                        "gnmi.retries",
                        "Extraction retries by failure reason class",
                        ("reason",),
                    ).inc(reason=_reason_class(last_reason))
                    registry.histogram(
                        "gnmi.retry_backoff_sim_seconds",
                        "Simulated seconds slept before an extraction retry",
                        unit="sim",
                    ).observe(delay)
                kernel.run(until=kernel.now + delay)
            failed_nodes = getattr(deployment, "failed_nodes", None)
            if failed_nodes is not None and name in failed_nodes():
                last_reason = "pod-failed"
                continue
            started = time.perf_counter() if collector.enabled else 0.0
            try:
                snapshot = _extract_one(router)
            except GnmiUnavailableError as exc:
                last_reason = f"unavailable: {exc}"
                continue
            live_version = getattr(router.rib.fib, "version", None)
            if live_version is not None and snapshot.fib_version != live_version:
                last_reason = (
                    f"stale dump: fib_version={snapshot.fib_version} "
                    f"behind live version={live_version}"
                )
                continue
            report.afts[name] = snapshot
            if collector.enabled:
                collector.emit(
                    "gnmi.aft.dump",
                    kernel.now,
                    node=name,
                    entries=len(snapshot),
                    wall_ms=(time.perf_counter() - started) * 1e3,
                )
            break
        else:
            report.degraded[name] = last_reason or "retry budget exhausted"
            report.degraded_addresses[name] = _configured_addresses(router)
    return report


def _reason_class(reason: str) -> str:
    """Collapse a free-text retry reason onto a bounded label set.

    Labels feed metric series — an unbounded reason string (it embeds
    exception text and FIB versions) would explode cardinality.
    """
    if reason.startswith("unavailable"):
        return "unavailable"
    if reason.startswith("stale dump"):
        return "stale"
    if reason == "pod-failed":
        return "pod-failed"
    return "other"


def dump_afts(
    deployment, nodes: Optional[Iterable[str]] = None
) -> dict[str, AftSnapshot]:
    """gNMI-extract AFT snapshots from every device in a deployment.

    The strict wrapper over :func:`extract_afts`: any node that cannot
    be extracted within the retry budget raises :class:`ExtractionError`
    naming the degraded nodes — callers that want partial results use
    :func:`extract_afts` directly.

    ``nodes`` restricts extraction to a subset of devices. What-if
    campaigns use it to skip killed pods: a failed node's router object
    still answers gNMI with its frozen pre-failure FIB, which must not
    masquerade as live forwarding state. Unknown names raise
    ``KeyError``; an empty set extracts nothing.
    """
    report = extract_afts(deployment, nodes)
    if report.degraded:
        raise ExtractionError(report.degraded)
    return report.afts
