"""gNMI path grammar.

Paths follow the gNMI specification's string encoding: ``/`` separated
elements, each optionally carrying ``[key=value]`` qualifiers, e.g.::

    /network-instances/network-instance[name=default]/afts
    /interfaces/interface[name=Ethernet1]/state
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator


class PathError(ValueError):
    """Raised for malformed gNMI paths."""


_ELEM_RE = re.compile(
    r"^(?P<name>[^/\[\]]+)(?P<keys>(\[[^=\]]+=[^\]]*\])*)$"
)
_KEY_RE = re.compile(r"\[([^=\]]+)=([^\]]*)\]")


@dataclass(frozen=True)
class PathElem:
    """One path element with optional [key=value] qualifiers."""
    name: str
    keys: tuple[tuple[str, str], ...] = ()

    def key(self, name: str) -> str:
        for key, value in self.keys:
            if key == name:
                return value
        raise KeyError(name)

    def __str__(self) -> str:
        suffix = "".join(f"[{k}={v}]" for k, v in self.keys)
        return self.name + suffix


@dataclass(frozen=True)
class GnmiPath:
    """A parsed absolute gNMI path."""
    elements: tuple[PathElem, ...]

    def __str__(self) -> str:
        return "/" + "/".join(str(e) for e in self.elements)

    def __iter__(self) -> Iterator[PathElem]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(e.name for e in self.elements)

    def starts_with(self, *names: str) -> bool:
        return self.names[: len(names)] == names


def parse_path(text: str) -> GnmiPath:
    """Parse a gNMI string path."""
    text = text.strip()
    if not text.startswith("/"):
        raise PathError(f"path must be absolute: {text!r}")
    body = text[1:]
    if not body:
        return GnmiPath(elements=())
    elements = []
    for raw in _split_elements(body):
        match = _ELEM_RE.match(raw)
        if match is None:
            raise PathError(f"malformed path element: {raw!r}")
        keys = tuple(_KEY_RE.findall(match.group("keys") or ""))
        elements.append(PathElem(name=match.group("name"), keys=keys))
    return GnmiPath(elements=tuple(elements))


def _split_elements(body: str) -> Iterator[str]:
    """Split on '/' not inside [key=value] brackets."""
    depth = 0
    current: list[str] = []
    for char in body:
        if char == "[":
            depth += 1
        elif char == "]":
            depth = max(0, depth - 1)
        if char == "/" and depth == 0:
            if not current:
                raise PathError(f"empty path element in {body!r}")
            yield "".join(current)
            current = []
        else:
            current.append(char)
    if not current:
        raise PathError(f"trailing slash in {body!r}")
    yield "".join(current)
