"""OpenConfig-style Abstract Forwarding Table snapshots.

The structure mirrors the OpenConfig AFT model closely enough to be
recognizable: ipv4-unicast entries reference a next-hop-group, which
references next-hops carrying an (optional) gateway address and an
egress interface. ``entry_type`` distinguishes forward/receive/discard
actions, which OpenConfig encodes via dedicated next-hop types.

Snapshots are pure data (JSON-serializable); the verification stage
consumes only these, never the emulated routers — preserving the
paper's clean extraction boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.net.addr import Prefix, format_ipv4, parse_ipv4
from repro.rib.fib import FibAction

if TYPE_CHECKING:
    from repro.device.acl import AclRule
    from repro.vendors.base import RouterOS


@dataclass(frozen=True)
class AftNextHop:
    """A single next hop: egress interface + optional gateway."""
    index: int
    interface: str
    ip_address: Optional[str] = None


@dataclass(frozen=True)
class AftNextHopGroup:
    """An ECMP group referencing next-hop indices."""
    group_id: int
    next_hop_indices: tuple[int, ...]


@dataclass(frozen=True)
class AftIpv4Entry:
    """One ipv4-unicast AFT entry."""
    prefix: str
    entry_type: str  # "forward" | "receive" | "discard"
    next_hop_group: Optional[int] = None


@dataclass(frozen=True)
class AftInterface:
    """Extracted interface state (address, admin, ACL bindings)."""
    name: str
    ipv4_address: Optional[str]
    prefix_length: Optional[int]
    enabled: bool
    acl_in: Optional[str] = None
    acl_out: Optional[str] = None


@dataclass
class AftSnapshot:
    """One device's extracted forwarding state."""

    device: str
    entries: list[AftIpv4Entry] = field(default_factory=list)
    next_hop_groups: dict[int, AftNextHopGroup] = field(default_factory=dict)
    next_hops: dict[int, AftNextHop] = field(default_factory=dict)
    interfaces: list[AftInterface] = field(default_factory=list)
    # ACL sets referenced by interface bindings (openconfig-acl shape in
    # the serialized form). Keys are ACL names; values are rule tuples.
    acls: dict[str, tuple["AclRule", ...]] = field(default_factory=dict)
    extracted_at: float = 0.0
    # The source FIB's version counter at extraction time. The hardened
    # extraction path re-checks this against the live FIB to detect a
    # dump that raced a convergence event (or a stale fault).
    fib_version: int = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_router(cls, router: "RouterOS", now: float = 0.0) -> "AftSnapshot":
        """Extract the AFT from a live emulated router."""
        interfaces = []
        for name in sorted(router.ports):
            port = router.ports[name]
            config = port.config
            interfaces.append(
                AftInterface(
                    name=name,
                    ipv4_address=(
                        format_ipv4(config.address)
                        if config.is_routed and config.address is not None
                        else None
                    ),
                    prefix_length=(
                        config.prefix_length if config.is_routed else None
                    ),
                    enabled=port.is_up,
                    acl_in=config.acl_in,
                    acl_out=config.acl_out,
                )
            )
        acls = {
            name: tuple(acl.rules)
            for name, acl in router.config.acls.items()
        }
        return cls.from_tables(
            router.name, router.rib.fib, interfaces, acls=acls, now=now
        )

    @classmethod
    def from_tables(
        cls,
        device: str,
        fib,
        interfaces: list["AftInterface"],
        *,
        acls: Optional[dict[str, tuple]] = None,
        now: float = 0.0,
    ) -> "AftSnapshot":
        """Build a snapshot from a FIB and interface facts.

        Shared by the live gNMI extraction and the model-based baseline
        (whose computed dataplane is exported in the same format so the
        verification stage cannot tell the backends apart).
        """
        snapshot = cls(
            device=device,
            extracted_at=now,
            interfaces=list(interfaces),
            acls=dict(acls or {}),
            fib_version=getattr(fib, "version", 0),
        )
        nh_index = 0
        group_id = 0
        nh_cache: dict[tuple, int] = {}
        group_cache: dict[tuple[int, ...], int] = {}
        for entry in fib.entries():
            if entry.action is FibAction.FORWARD:
                indices = []
                for hop in entry.next_hops:
                    key = (hop.interface, hop.ip)
                    if key not in nh_cache:
                        nh_index += 1
                        nh_cache[key] = nh_index
                        snapshot.next_hops[nh_index] = AftNextHop(
                            index=nh_index,
                            interface=hop.interface,
                            ip_address=(
                                format_ipv4(hop.ip) if hop.ip is not None else None
                            ),
                        )
                    indices.append(nh_cache[key])
                group_key = tuple(sorted(indices))
                if group_key not in group_cache:
                    group_id += 1
                    group_cache[group_key] = group_id
                    snapshot.next_hop_groups[group_id] = AftNextHopGroup(
                        group_id=group_id, next_hop_indices=group_key
                    )
                snapshot.entries.append(
                    AftIpv4Entry(
                        prefix=str(entry.prefix),
                        entry_type="forward",
                        next_hop_group=group_cache[group_key],
                    )
                )
            else:
                kind = (
                    "receive" if entry.action is FibAction.RECEIVE else "discard"
                )
                snapshot.entries.append(
                    AftIpv4Entry(prefix=str(entry.prefix), entry_type=kind)
                )
        return snapshot

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """OpenConfig-shaped JSON structure."""
        return {
            "network-instances": {
                "network-instance": [
                    {
                        "name": "default",
                        "afts": {
                            "ipv4-unicast": {
                                "ipv4-entry": [
                                    {
                                        "prefix": e.prefix,
                                        "state": {
                                            "entry-type": e.entry_type,
                                            "next-hop-group": e.next_hop_group,
                                        },
                                    }
                                    for e in self.entries
                                ]
                            },
                            "next-hop-groups": {
                                "next-hop-group": [
                                    {
                                        "id": g.group_id,
                                        "next-hops": {
                                            "next-hop": [
                                                {"index": i}
                                                for i in g.next_hop_indices
                                            ]
                                        },
                                    }
                                    for g in self.next_hop_groups.values()
                                ]
                            },
                            "next-hops": {
                                "next-hop": [
                                    {
                                        "index": nh.index,
                                        "state": {
                                            "ip-address": nh.ip_address,
                                            "interface-ref": nh.interface,
                                        },
                                    }
                                    for nh in self.next_hops.values()
                                ]
                            },
                        },
                    }
                ]
            },
            "interfaces": {
                "interface": [
                    {
                        "name": i.name,
                        "state": {"enabled": i.enabled},
                        "ipv4": {
                            "address": i.ipv4_address,
                            "prefix-length": i.prefix_length,
                        },
                        "acl": {"ingress": i.acl_in, "egress": i.acl_out},
                    }
                    for i in self.interfaces
                ]
            },
            "acls": {
                "acl-set": [
                    {
                        "name": name,
                        "acl-entries": {
                            "acl-entry": [
                                {
                                    "sequence-id": rule.seq,
                                    "actions": {
                                        "forwarding-action": (
                                            "ACCEPT" if rule.permit else "DROP"
                                        )
                                    },
                                    "ipv4": {
                                        "protocol": rule.protocol,
                                        "source-address": (
                                            str(rule.src) if rule.src else None
                                        ),
                                        "destination-address": (
                                            str(rule.dst) if rule.dst else None
                                        ),
                                    },
                                    "transport": {
                                        "source-port": (
                                            list(rule.src_port)
                                            if rule.src_port
                                            else None
                                        ),
                                        "destination-port": (
                                            list(rule.dst_port)
                                            if rule.dst_port
                                            else None
                                        ),
                                    },
                                }
                                for rule in rules
                            ]
                        },
                    }
                    for name, rules in sorted(self.acls.items())
                ]
            },
            "meta": {
                "device": self.device,
                "extracted-at": self.extracted_at,
                "fib-version": self.fib_version,
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AftSnapshot":
        meta = data.get("meta", {})
        snapshot = cls(
            device=meta.get("device", ""),
            extracted_at=meta.get("extracted-at", 0.0),
            fib_version=meta.get("fib-version", 0),
        )
        instances = data["network-instances"]["network-instance"]
        afts = instances[0]["afts"]
        for raw in afts["next-hops"]["next-hop"]:
            nh = AftNextHop(
                index=raw["index"],
                interface=raw["state"]["interface-ref"],
                ip_address=raw["state"]["ip-address"],
            )
            snapshot.next_hops[nh.index] = nh
        for raw in afts["next-hop-groups"]["next-hop-group"]:
            group = AftNextHopGroup(
                group_id=raw["id"],
                next_hop_indices=tuple(
                    h["index"] for h in raw["next-hops"]["next-hop"]
                ),
            )
            snapshot.next_hop_groups[group.group_id] = group
        for raw in afts["ipv4-unicast"]["ipv4-entry"]:
            snapshot.entries.append(
                AftIpv4Entry(
                    prefix=raw["prefix"],
                    entry_type=raw["state"]["entry-type"],
                    next_hop_group=raw["state"]["next-hop-group"],
                )
            )
        for raw in data.get("interfaces", {}).get("interface", []):
            acl_binding = raw.get("acl", {})
            snapshot.interfaces.append(
                AftInterface(
                    name=raw["name"],
                    ipv4_address=raw["ipv4"]["address"],
                    prefix_length=raw["ipv4"]["prefix-length"],
                    enabled=raw["state"]["enabled"],
                    acl_in=acl_binding.get("ingress"),
                    acl_out=acl_binding.get("egress"),
                )
            )
        from repro.device.acl import AclRule

        for acl_set in data.get("acls", {}).get("acl-set", []):
            rules = []
            for raw in acl_set["acl-entries"]["acl-entry"]:
                ipv4 = raw.get("ipv4", {})
                transport = raw.get("transport", {})
                rules.append(
                    AclRule(
                        seq=raw["sequence-id"],
                        permit=(
                            raw["actions"]["forwarding-action"] == "ACCEPT"
                        ),
                        protocol=ipv4.get("protocol"),
                        src=(
                            Prefix.parse(ipv4["source-address"])
                            if ipv4.get("source-address")
                            else None
                        ),
                        dst=(
                            Prefix.parse(ipv4["destination-address"])
                            if ipv4.get("destination-address")
                            else None
                        ),
                        src_port=(
                            tuple(transport["source-port"])
                            if transport.get("source-port")
                            else None
                        ),
                        dst_port=(
                            tuple(transport["destination-port"])
                            if transport.get("destination-port")
                            else None
                        ),
                    )
                )
            snapshot.acls[acl_set["name"]] = tuple(rules)
        return snapshot

    # -- queries ---------------------------------------------------------------

    def local_addresses(self) -> list[int]:
        return [
            parse_ipv4(i.ipv4_address)
            for i in self.interfaces
            if i.ipv4_address is not None and i.enabled
        ]

    def forward_entries(self) -> list[tuple[Prefix, AftIpv4Entry]]:
        return [(Prefix.parse(e.prefix), e) for e in self.entries]

    def __len__(self) -> int:
        return len(self.entries)
