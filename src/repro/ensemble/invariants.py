"""Invariants evaluated per distinct converged state of an ensemble.

Each invariant contributes named *rows* — ``{row_name: (holds,
detail)}`` — against an :class:`OutcomeProbe`, one probe per distinct
``fib_fingerprint``. The probe runs the atom-graph reachability
analysis once and shares it across every invariant, so an outcome's
whole battery costs a single engine (built by the caller, typically
pinned in the :class:`~repro.service.store.SnapshotStore`).

Row universes may differ between outcomes: a partial snapshot answers
no rows for pairs whose proof would route through a degraded node.
The fold treats a missing row as "not evaluated here", never as a
violation.
"""

from __future__ import annotations

from typing import Optional

from repro.dataplane.forwarding import Disposition
from repro.dataplane.model import Dataplane
from repro.net.addr import parse_ipv4
from repro.verify.engine import AtomGraphEngine
from repro.verify.reachability import ReachabilityAnalysis, pairwise_matrix

_BLACKHOLE = frozenset({Disposition.NO_ROUTE, Disposition.NULL_ROUTED})

#: Row-name prefix for the per-pair reachability rows.
REACH_PREFIX = "reach:"


class OutcomeProbe:
    """One distinct converged state, with lazily shared analyses.

    Everything an invariant can ask for funnels through one
    :class:`ReachabilityAnalysis` (hence one engine): the classified
    reachability rows, the all-pairs matrix, and sample walks.
    """

    def __init__(
        self,
        dataplane: Dataplane,
        *,
        engine: Optional[AtomGraphEngine] = None,
    ) -> None:
        self.dataplane = dataplane
        self.analysis = ReachabilityAnalysis(dataplane, engine=engine)
        self._rows = None
        self._matrix = None

    def reach_rows(self):
        if self._rows is None:
            self._rows = self.analysis.analyze()
        return self._rows

    def matrix(self):
        if self._matrix is None:
            self._matrix = pairwise_matrix(
                self.dataplane, engine=self.analysis.engine
            )
        return self._matrix

    def walk(self, ingress: str, destination: int):
        return self.analysis.walk(ingress, destination)

    def degraded_pairs(self) -> set:
        """(src, dst) pairs whose verdict is UNKNOWN_DEGRADED.

        Pairs whose destination node vanished from the dataplane are
        already absent from the matrix; this catches the subtler case —
        both endpoints extracted, but the path's proof runs through a
        degraded node.
        """
        dataplane = self.dataplane
        if not (dataplane.degraded_nodes or dataplane.degraded_owned):
            return set()
        pairs = set()
        for row in self.reach_rows():
            if Disposition.UNKNOWN_DEGRADED not in row.dispositions:
                continue
            for name, device in dataplane.devices.items():
                if name == row.ingress:
                    continue
                if any(
                    address in row.dst_set
                    for address in device.local_addresses
                ):
                    pairs.add((row.ingress, name))
        return pairs


class EnsembleInvariant:
    """Base: named boolean rows evaluated against one outcome probe."""

    name = "invariant"

    def rows(self, probe: OutcomeProbe) -> dict[str, tuple[bool, str]]:
        raise NotImplementedError


class NoForwardingLoop(EnsembleInvariant):
    """No (ingress, destination set) forwards in a cycle."""

    name = "no-forwarding-loop"

    def rows(self, probe: OutcomeProbe) -> dict[str, tuple[bool, str]]:
        looping = [
            row
            for row in probe.reach_rows()
            if Disposition.LOOP in row.dispositions
        ]
        detail = str(looping[0]) if looping else ""
        return {self.name: (not looping, detail)}


class NoBlackhole(EnsembleInvariant):
    """No owned destination is dropped (NO_ROUTE / NULL_ROUTED)."""

    name = "no-blackhole"

    def rows(self, probe: OutcomeProbe) -> dict[str, tuple[bool, str]]:
        owned = set(probe.dataplane.address_owner)
        holes = []
        for row in probe.reach_rows():
            if not (_BLACKHOLE & row.dispositions):
                continue
            if any(address in row.dst_set for address in owned):
                holes.append(row)
        detail = str(holes[0]) if holes else ""
        return {self.name: (not holes, detail)}


class PairwiseReachable(EnsembleInvariant):
    """One row per device pair: ``reach:src->dst``.

    Pairs answering UNKNOWN_DEGRADED are omitted from the outcome's
    rows entirely — absence of proof stays out of the fold denominator,
    matching the chaos runner's stability scoring.
    """

    name = "pairwise-reachable"

    def rows(self, probe: OutcomeProbe) -> dict[str, tuple[bool, str]]:
        degraded = probe.degraded_pairs()
        return {
            f"{REACH_PREFIX}{src}->{dst}": (
                ok,
                "" if ok else f"{src} cannot reach {dst}",
            )
            for (src, dst), ok in sorted(probe.matrix().items())
            if (src, dst) not in degraded
        }


class Waypoint(EnsembleInvariant):
    """Every successful path to ``dst`` traverses device ``via``."""

    def __init__(self, dst: str, via: str) -> None:
        self.dst = dst
        self.address = parse_ipv4(dst)
        self.via = via
        self.name = f"waypoint:{dst}-via-{via}"

    def rows(self, probe: OutcomeProbe) -> dict[str, tuple[bool, str]]:
        for ingress in probe.dataplane.node_names():
            if ingress == self.via:
                continue
            result = probe.walk(ingress, self.address)
            for trace in result.traces:
                if not trace.disposition.is_success:
                    continue
                if all(hop.device != self.via for hop in trace.hops):
                    return {
                        self.name: (
                            False,
                            f"{ingress} path skips waypoint {self.via}",
                        )
                    }
        return {self.name: (True, "")}


def default_ensemble_invariants() -> list[EnsembleInvariant]:
    """The standard battery: loops, blackholes, all-pairs rows."""
    return [NoForwardingLoop(), NoBlackhole(), PairwiseReachable()]
