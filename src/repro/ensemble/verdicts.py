"""The ensemble verdict algebra: fold per-outcome findings into
holds-always / holds-sometimes / never.

One invariant *row* (a named predicate such as ``reach:r1->r2`` or
``no-forwarding-loop``) is observed once per distinct converged state,
weighted by how many ensemble members converged there. Folding the
observations yields exactly one of three verdicts:

* ``holds-always`` — the row held in every run that could evaluate it;
* ``never`` — it held in none;
* ``holds-sometimes`` — the interesting case: seed- or fault-dependent
  behaviour, reported with concrete witnesses (the member seed, its
  fault plan, and for temporal rows the violating interval).

Rows absent from some outcomes (pairs touching a degraded node, say)
fold over only the outcomes that answered them — ``UNKNOWN_DEGRADED``
is an absence of proof, so it never lands in a verdict's denominator.

Determinism is load-bearing: observations carry stable sort keys and
witnesses dedup by outcome fingerprint, so the dedup-by-fingerprint
fold and the brute-force per-seed oracle produce byte-identical
verdict lists (asserted row-for-row in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

HOLDS_ALWAYS = "holds-always"
HOLDS_SOMETIMES = "holds-sometimes"
NEVER = "never"

#: Witness cap per verdict — one witness proves a SOMETIMES; a few more
#: help debugging; an unbounded list just bloats the report.
MAX_WITNESSES = 4


@dataclass(frozen=True)
class EnsembleWitness:
    """One concrete run exhibiting a violation.

    ``plan`` is the fault-plan name ("" for a fault-free member; the
    service path reuses it for the snapshot name). ``t_start``/``t_end``
    carry the violating interval for temporal rows.
    """

    seed: int
    plan: str = ""
    fingerprint: int = 0
    detail: str = ""
    t_start: Optional[float] = None
    t_end: Optional[float] = None

    @property
    def label(self) -> str:
        text = f"seed {self.seed}"
        if self.plan:
            text += f" + {self.plan}"
        return text

    def to_dict(self) -> dict:
        out = {
            "seed": self.seed,
            "plan": self.plan,
            "fingerprint": f"{self.fingerprint:#x}",
            "detail": self.detail,
        }
        if self.t_start is not None:
            out["t_start"] = self.t_start
            out["t_end"] = self.t_end
        return out


@dataclass(frozen=True)
class RowObservation:
    """One row evaluated against one outcome (or one run).

    ``weight`` is the outcome's multiplicity — the dedup fold passes
    the member count, the brute-force oracle passes 1 per run; the two
    sum to the same totals by construction.
    """

    holds: bool
    weight: int
    witness: EnsembleWitness


@dataclass(frozen=True)
class InvariantVerdict:
    """One folded row: the verdict plus its evidence."""

    invariant: str
    verdict: str
    holds: int
    total: int
    witnesses: tuple[EnsembleWitness, ...] = ()

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "verdict": self.verdict,
            "holds": self.holds,
            "total": self.total,
            "witnesses": [w.to_dict() for w in self.witnesses],
        }

    def __str__(self) -> str:
        text = (
            f"{self.invariant}: {self.verdict} "
            f"({self.holds}/{self.total})"
        )
        if self.witnesses:
            witness = self.witnesses[0]
            text += f" — witness {witness.label}"
            if witness.t_start is not None:
                text += f" [{witness.t_start:.1f}, {witness.t_end:.1f})s"
            if witness.detail:
                text += f": {witness.detail}"
        return text


def fold(
    invariant: str, observations: Iterable[RowObservation]
) -> InvariantVerdict:
    """Fold one row's observations into a verdict.

    Witnesses are violating runs, deduped by outcome fingerprint (every
    member of a violating outcome violates identically — one witness
    per distinct failure mode, the lowest (seed, plan) member), so the
    weighted fold and the per-run oracle fold agree exactly.
    """
    observations = list(observations)
    total = sum(o.weight for o in observations)
    held = sum(o.weight for o in observations if o.holds)
    if held == total:
        verdict = HOLDS_ALWAYS
    elif held == 0:
        verdict = NEVER
    else:
        verdict = HOLDS_SOMETIMES
    failing: dict[int, EnsembleWitness] = {}
    for obs in observations:
        if obs.holds:
            continue
        witness = obs.witness
        kept = failing.get(witness.fingerprint)
        if kept is None or (witness.seed, witness.plan) < (kept.seed, kept.plan):
            failing[witness.fingerprint] = witness
    witnesses = tuple(
        sorted(failing.values(), key=lambda w: (w.seed, w.plan))
    )[:MAX_WITNESSES]
    return InvariantVerdict(
        invariant=invariant,
        verdict=verdict,
        holds=held,
        total=total,
        witnesses=witnesses,
    )


def fold_observations(
    rows: Mapping[str, Iterable[RowObservation]]
) -> list[InvariantVerdict]:
    """Fold every row, sorted by invariant name for stable reports."""
    return [fold(name, rows[name]) for name in sorted(rows)]
