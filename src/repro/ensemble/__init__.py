"""Nondeterminism-aware verification over seeded ensembles.

Runs the (seed x fault-plan) matrix, dedups converged states by
``fib_fingerprint``, and folds every invariant across the distinct
outcomes into holds-always / holds-sometimes / never verdicts with
concrete witnesses.
"""

from repro.ensemble.invariants import (
    REACH_PREFIX,
    EnsembleInvariant,
    NoBlackhole,
    NoForwardingLoop,
    OutcomeProbe,
    PairwiseReachable,
    Waypoint,
    default_ensemble_invariants,
)
from repro.ensemble.runner import (
    EnsembleOutcome,
    EnsembleReport,
    EnsembleRunner,
    RunRecord,
    brute_force_verdicts,
    fold_records,
    temporal_invariant_names,
)
from repro.ensemble.verdicts import (
    HOLDS_ALWAYS,
    HOLDS_SOMETIMES,
    MAX_WITNESSES,
    NEVER,
    EnsembleWitness,
    InvariantVerdict,
    RowObservation,
    fold,
    fold_observations,
)

__all__ = [
    "HOLDS_ALWAYS",
    "HOLDS_SOMETIMES",
    "MAX_WITNESSES",
    "NEVER",
    "REACH_PREFIX",
    "EnsembleInvariant",
    "EnsembleOutcome",
    "EnsembleReport",
    "EnsembleRunner",
    "EnsembleWitness",
    "InvariantVerdict",
    "NoBlackhole",
    "NoForwardingLoop",
    "OutcomeProbe",
    "PairwiseReachable",
    "RowObservation",
    "RunRecord",
    "Waypoint",
    "brute_force_verdicts",
    "default_ensemble_invariants",
    "fold",
    "fold_observations",
    "fold_records",
    "temporal_invariant_names",
]
