"""The ensemble runner: N seeded runs, one set-level verdict.

The paper's §6 mitigation (run the emulation many times in parallel and
compare dataplanes) is promoted here from a boolean "deterministic?"
flag to ACORN-style verification of the *set* of possible converged
states: a seed sweep — optionally crossed with a set of
:class:`~repro.chaos.plan.FaultPlan`\\ s so timing and fault
nondeterminism are both sampled — whose outcomes dedup by
``fib_fingerprint``. Most seeds converge identically, so the ensemble
pays one atom-graph engine per *distinct* converged state (pinned in a
:class:`~repro.service.store.SnapshotStore`), then folds every
invariant row across the outcomes into holds-always / holds-sometimes
/ never with concrete witnesses.

Execution shards the (seed, plan) matrix round-robin across a process
pool exactly like :class:`~repro.whatif.campaign.WhatIfCampaign` —
each shard runs its members on one warm backend in its own process and
ships plain-data run records back; verification and the fold happen in
the parent, where the obs collector and the store live. Temporal
streams (``temporal=``) are evaluated *per member run* — transient
behaviour differs between seeds even when the final states collide —
and fold into ``temporal:*`` rows whose witnesses carry the violating
``[t_start, t_end)`` interval.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.chaos.plan import FaultPlan
from repro.core.context import ScenarioContext
from repro.core.pipeline import ModelFreeBackend
from repro.core.snapshot import Snapshot
from repro.ensemble.invariants import (
    EnsembleInvariant,
    OutcomeProbe,
    default_ensemble_invariants,
)
from repro.ensemble.verdicts import (
    HOLDS_ALWAYS,
    HOLDS_SOMETIMES,
    NEVER,
    EnsembleWitness,
    InvariantVerdict,
    RowObservation,
    fold_observations,
)
from repro.obs import bus
from repro.protocols.timers import PRODUCTION_TIMERS, TimerProfile
from repro.service.store import SnapshotStore, env_int
from repro.topo.model import Topology

logger = logging.getLogger(__name__)

DEFAULT_SEEDS = 4
TEMPORAL_PREFIX = "temporal:"


@dataclass(frozen=True)
class RunRecord:
    """One member run — plain data, so it crosses the pool boundary."""

    seed: int
    plan_name: str
    snapshot: Snapshot
    #: ``TemporalReport.to_dict()`` of this member's run ({} when the
    #: ensemble did not opt into temporal verification).
    temporal: dict = field(default_factory=dict)

    @property
    def fingerprint(self) -> int:
        return self.snapshot.dataplane.fib_fingerprint()


@dataclass
class EnsembleOutcome:
    """One distinct converged state and every member that reached it."""

    fingerprint: int
    snapshot: Snapshot
    #: (seed, plan_name) in submission order; the first member is the
    #: outcome's canonical witness.
    members: list = field(default_factory=list)
    degraded: tuple = ()

    @property
    def multiplicity(self) -> int:
        return len(self.members)

    def to_dict(self) -> dict:
        return {
            "fingerprint": f"{self.fingerprint:#x}",
            "multiplicity": self.multiplicity,
            "members": [
                {"seed": seed, "plan": plan} for seed, plan in self.members
            ],
            "degraded_nodes": list(self.degraded),
        }


@dataclass
class EnsembleReport:
    """The whole ensemble's output: outcomes plus folded verdicts."""

    topology_name: str
    runs: int
    outcomes: list = field(default_factory=list)
    verdicts: list = field(default_factory=list)
    seeds: tuple = ()
    plans: tuple = ()
    temporal_invariants: tuple = ()
    workers: int = 1

    @property
    def distinct(self) -> int:
        return len(self.outcomes)

    @property
    def deterministic(self) -> bool:
        return self.distinct <= 1

    @property
    def unstable(self) -> list:
        """Every verdict that is not holds-always (exit-code 2 rows)."""
        return [v for v in self.verdicts if v.verdict != HOLDS_ALWAYS]

    def verdict_counts(self) -> dict[str, int]:
        counts = {HOLDS_ALWAYS: 0, HOLDS_SOMETIMES: 0, NEVER: 0}
        for verdict in self.verdicts:
            counts[verdict.verdict] += 1
        return counts

    def to_dict(self) -> dict:
        return {
            "topology": self.topology_name,
            "runs": self.runs,
            "distinct_outcomes": self.distinct,
            "deterministic": self.deterministic,
            "seeds": list(self.seeds),
            "plans": list(self.plans),
            "temporal_invariants": list(self.temporal_invariants),
            "workers": self.workers,
            "verdict_counts": self.verdict_counts(),
            "outcomes": [o.to_dict() for o in self.outcomes],
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    def render(self) -> str:
        counts = self.verdict_counts()
        lines = [
            f"ensemble: {self.topology_name} — {self.runs} run(s), "
            f"{self.distinct} distinct outcome(s)"
            + (f", {self.workers} workers" if self.workers > 1 else ""),
            "",
            "outcomes:",
        ]
        for outcome in self.outcomes:
            members = ", ".join(
                f"seed {seed}" + (f"+{plan}" if plan else "")
                for seed, plan in outcome.members
            )
            suffix = (
                f"  degraded: {', '.join(outcome.degraded)}"
                if outcome.degraded
                else ""
            )
            lines.append(
                f"  {outcome.fingerprint:#018x}  x{outcome.multiplicity}"
                f"  [{members}]{suffix}"
            )
        lines.append("")
        lines.append(
            f"verdicts: {counts[HOLDS_ALWAYS]} holds-always, "
            f"{counts[HOLDS_SOMETIMES]} holds-sometimes, "
            f"{counts[NEVER]} never"
        )
        for verdict in self.unstable:
            lines.append(f"  {verdict}")
        return "\n".join(lines)


def temporal_invariant_names(temporal) -> tuple:
    """The temporal row names a ``temporal=`` spec will produce."""
    if temporal is None or temporal is False:
        return ()
    if temporal is True:
        from repro.temporal import default_invariants

        return tuple(i.name for i in default_invariants())
    return tuple(i.name for i in temporal)


def fold_records(
    records: Sequence[RunRecord],
    *,
    invariants: Sequence[EnsembleInvariant],
    temporal_names: tuple = (),
    engine_of: Optional[Callable[[Snapshot], object]] = None,
    dedup: bool = True,
    observe: bool = True,
    topology_name: str = "",
    seeds: tuple = (),
    plans: tuple = (),
    workers: int = 1,
) -> EnsembleReport:
    """Dedup run records by fingerprint and fold every invariant row.

    ``dedup=False`` is the brute-force oracle shape: every record is
    its own outcome (weight 1, one engine each), which the dedup path
    must match verdict-for-verdict. ``engine_of`` supplies the engine
    per outcome snapshot — a store's pinned engine on the dedup path, a
    cold throwaway build on the oracle path, or None for the
    content-keyed module cache.
    """
    collector = bus.ACTIVE
    emit = observe and collector.enabled
    outcomes: list[EnsembleOutcome] = []
    index_of: dict[int, int] = {}
    for record in records:
        fingerprint = record.fingerprint
        index = index_of.get(fingerprint) if dedup else None
        if index is None:
            if dedup:
                index_of[fingerprint] = len(outcomes)
            outcomes.append(
                EnsembleOutcome(
                    fingerprint=fingerprint,
                    snapshot=record.snapshot,
                    degraded=tuple(sorted(record.snapshot.degraded_nodes)),
                )
            )
            index = len(outcomes) - 1
        elif emit:
            collector.count("ensemble.dedup_hits")
        outcomes[index].members.append((record.seed, record.plan_name))

    observations: dict[str, list[RowObservation]] = {}
    for outcome in outcomes:
        seed, plan = outcome.members[0]
        if invariants:
            engine = (
                engine_of(outcome.snapshot) if engine_of is not None else None
            )
            probe = OutcomeProbe(outcome.snapshot.dataplane, engine=engine)
        for invariant in invariants:
            for name, (holds, detail) in invariant.rows(probe).items():
                observations.setdefault(name, []).append(
                    RowObservation(
                        holds=holds,
                        weight=outcome.multiplicity,
                        witness=EnsembleWitness(
                            seed=seed,
                            plan=plan,
                            fingerprint=outcome.fingerprint,
                            detail=detail,
                        ),
                    )
                )
        if emit:
            collector.emit(
                "ensemble.outcome",
                outcome.snapshot.convergence_seconds,
                fingerprint=f"{outcome.fingerprint:#x}",
                multiplicity=outcome.multiplicity,
                seed=seed,
                plan=plan,
                degraded=len(outcome.degraded),
            )

    # Temporal rows fold per member run, never per outcome: two seeds
    # can converge to the same final fingerprint via different
    # transient behaviour, and the transient is the point.
    if temporal_names:
        for record in records:
            by_invariant: dict[str, list[dict]] = {}
            for interval in record.temporal.get("intervals", []):
                by_invariant.setdefault(
                    interval.get("invariant", ""), []
                ).append(interval)
            for name in temporal_names:
                bad = by_invariant.get(name, [])
                first = bad[0] if bad else {}
                observations.setdefault(
                    f"{TEMPORAL_PREFIX}{name}", []
                ).append(
                    RowObservation(
                        holds=not bad,
                        weight=1,
                        witness=EnsembleWitness(
                            seed=record.seed,
                            plan=record.plan_name,
                            fingerprint=record.fingerprint,
                            detail=first.get("detail", ""),
                            t_start=first.get("t_start"),
                            t_end=first.get("t_end"),
                        ),
                    )
                )

    verdicts = fold_observations(observations)
    report = EnsembleReport(
        topology_name=topology_name,
        runs=len(records),
        outcomes=outcomes,
        verdicts=verdicts,
        seeds=tuple(seeds),
        plans=tuple(plans),
        temporal_invariants=tuple(
            f"{TEMPORAL_PREFIX}{name}" for name in temporal_names
        ),
        workers=workers,
    )
    if emit:
        collector.count("ensemble.runs", len(records))
        collector.count("ensemble.outcomes", len(outcomes))
        for verdict in report.unstable:
            collector.count("ensemble.unstable")
            witness = verdict.witnesses[0] if verdict.witnesses else None
            collector.emit(
                "ensemble.verdict",
                0.0,
                invariant=verdict.invariant,
                verdict=verdict.verdict,
                holds=verdict.holds,
                total=verdict.total,
                witness_seed=witness.seed if witness else None,
                witness_plan=witness.plan if witness else "",
                t_start=witness.t_start if witness else None,
                t_end=witness.t_end if witness else None,
            )
    registry = bus.metrics_registry()
    if observe and registry.enabled:
        registry.counter(
            "ensemble.runs", "Member runs executed by ensembles"
        ).inc(len(records))
        registry.counter(
            "ensemble.outcomes", "Distinct converged states across ensembles"
        ).inc(len(outcomes))
        verdicts_metric = registry.counter(
            "ensemble.verdicts",
            "Folded invariant verdicts by class",
            ("verdict",),
        )
        for kind, count in report.verdict_counts().items():
            if count:
                verdicts_metric.inc(count, verdict=kind)
    return report


def brute_force_verdicts(
    records: Sequence[RunRecord],
    *,
    invariants: Optional[Sequence[EnsembleInvariant]] = None,
    temporal_names: tuple = (),
) -> list[InvariantVerdict]:
    """The no-dedup oracle: verify every member run independently.

    Each record gets its own cold, uncached engine and a weight-1
    observation per row — what a naive per-seed loop would pay. Tests
    assert the deduped ensemble matches this row-for-row; the bench
    measures how much slower it is.
    """
    from repro.verify.engine import AtomGraphEngine

    battery = (
        list(invariants)
        if invariants is not None
        else default_ensemble_invariants()
    )
    report = fold_records(
        records,
        invariants=battery,
        temporal_names=temporal_names,
        engine_of=lambda snap: AtomGraphEngine(snap.dataplane, _observe=False),
        dedup=False,
        observe=False,
    )
    return report.verdicts


class EnsembleRunner:
    """Run the (seed x plan) matrix and verify the outcome set."""

    def __init__(
        self,
        topology: Topology,
        *,
        context: Optional[ScenarioContext] = None,
        seeds: Optional[Sequence[int]] = None,
        plans: Optional[Sequence[Optional[FaultPlan]]] = None,
        invariants: Optional[Sequence[EnsembleInvariant]] = None,
        temporal=None,
        cluster=None,
        timers: TimerProfile = PRODUCTION_TIMERS,
        quiet_period: float = 30.0,
        convergence_max_time: float = 86_400.0,
        store: Optional[SnapshotStore] = None,
    ) -> None:
        self.topology = topology
        self.context = context if context is not None else ScenarioContext()
        if seeds is None:
            seeds = range(env_int("MFV_ENSEMBLE_SEEDS", DEFAULT_SEEDS))
        self.seeds = tuple(seeds)
        plan_list = list(plans) if plans else [None]
        self.plans = plan_list
        self.invariants = (
            list(invariants)
            if invariants is not None
            else default_ensemble_invariants()
        )
        self.temporal = temporal
        self.cluster = cluster
        self.timers = timers
        self.quiet_period = quiet_period
        self.convergence_max_time = convergence_max_time
        # The store pins one engine per distinct outcome — the dedup
        # economics. Sized to hold the whole matrix so a small default
        # capacity never evicts mid-fold.
        self.store = (
            store
            if store is not None
            else SnapshotStore(
                capacity=max(8, len(self.seeds) * len(plan_list))
            )
        )
        #: Per-member records of the most recent :meth:`run` — the
        #: deprecated multirun wrapper and tests read these.
        self.last_records: list[RunRecord] = []

    @property
    def matrix(self) -> list:
        """(seed, plan) members in submission order: seeds major."""
        return [(seed, plan) for seed in self.seeds for plan in self.plans]

    def run(self, workers: Optional[int] = None) -> EnsembleReport:
        """Execute every member and fold the verdicts.

        ``workers > 1`` (default: ``MFV_ENSEMBLE_WORKERS``) shards the
        matrix round-robin across a process pool, one warm backend per
        shard; falls back to the sequential path when the pool cannot
        start, like the what-if campaign.
        """
        count = (
            workers
            if workers is not None
            else env_int("MFV_ENSEMBLE_WORKERS", 1)
        )
        members = self.matrix
        records = None
        used = 1
        if count > 1 and len(members) > 1:
            try:
                records = self._run_parallel(members, count)
                used = min(count, len(members))
            except Exception as exc:  # pool unavailable (sandbox, pickling)
                logger.warning(
                    "process-pool ensemble failed (%s); running sequentially",
                    exc,
                )
        if records is None:
            records = self._run_sequential(members)
        self.last_records = records
        return fold_records(
            records,
            invariants=self.invariants,
            temporal_names=temporal_invariant_names(self.temporal),
            engine_of=self.store.engine,
            topology_name=self.topology.name,
            seeds=self.seeds,
            plans=tuple(_plan_name(plan) for plan in self.plans),
            workers=used,
        )

    # -- execution ---------------------------------------------------------------

    def _run_sequential(self, members) -> list[RunRecord]:
        backend = ModelFreeBackend(
            self.topology,
            cluster=self.cluster,
            timers=self.timers,
            quiet_period=self.quiet_period,
            convergence_max_time=self.convergence_max_time,
        )
        return [
            _execute_member(backend, self.context, seed, plan, self.temporal)
            for seed, plan in members
        ]

    def _run_parallel(self, members, workers: int) -> list[RunRecord]:
        from concurrent.futures import ProcessPoolExecutor

        shards = [members[i::workers] for i in range(workers)]
        shards = [shard for shard in shards if shard]
        payloads = [
            (
                self.topology,
                shard,
                self.context,
                self.timers,
                self.quiet_period,
                self.convergence_max_time,
                self.temporal,
            )
            for shard in shards
        ]
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            shard_records = list(pool.map(_ensemble_shard, payloads))
        by_member = {}
        for records in shard_records:
            for record in records:
                by_member[(record.seed, record.plan_name)] = record
        # Original matrix order, not shard order.
        return [
            by_member[(seed, _plan_name(plan))] for seed, plan in members
        ]


def _plan_name(plan: Optional[FaultPlan]) -> str:
    return "" if plan is None else plan.name


def _execute_member(
    backend: ModelFreeBackend,
    context: ScenarioContext,
    seed: int,
    plan: Optional[FaultPlan],
    temporal,
) -> RunRecord:
    name = f"ensemble:seed-{seed}"
    if plan is not None:
        name += f":{plan.name}"
    snapshot = backend.run(
        context,
        seed=seed,
        snapshot_name=name,
        chaos=plan,
        temporal=temporal,
    )
    return RunRecord(
        seed=seed,
        plan_name=_plan_name(plan),
        snapshot=snapshot,
        temporal=dict(snapshot.metadata.get("temporal", {})),
    )


def _ensemble_shard(payload) -> list:
    """Pool worker: run one member shard on its own warm backend.

    Module-level (not a closure) so it pickles; the worker process has
    the default no-op obs collector — shard runs are untraced by
    design, and the parent re-emits ensemble events when it folds.
    """
    (
        topology,
        members,
        context,
        timers,
        quiet_period,
        max_time,
        temporal,
    ) = payload
    backend = ModelFreeBackend(
        topology,
        timers=timers,
        quiet_period=quiet_period,
        convergence_max_time=max_time,
    )
    return [
        _execute_member(backend, context, seed, plan, temporal)
        for seed, plan in members
    ]
