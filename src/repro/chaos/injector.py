"""The injector: arms a :class:`FaultPlan` against one deployment.

Everything is driven by the deployment's simulated-time kernel:
activations are kernel events, loss draws come from the kernel's seeded
rng, and gNMI faults fire synchronously inside the extraction path — so
one (plan, topology, seed) triple replays byte-identically, including
its failures. The injector keeps a ``log`` of every activation and
firing, which is what the determinism regression test compares.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.chaos.plan import (
    ConvergenceStall,
    FaultPlan,
    GnmiFlake,
    LinkLoss,
    PodCrash,
    StaleAft,
)
from repro.gnmi.aft import AftSnapshot
from repro.gnmi.server import GnmiUnavailableError
from repro.net.addr import Prefix
from repro.obs import bus
from repro.rib.fib import Fib, FibAction, FibEntry

if TYPE_CHECKING:
    from repro.kube.kne import KneDeployment

#: Category for fault activations/firings on the obs timeline.
CHAOS_FAULT = "chaos.fault"

# The stall fault churns a scratch FIB on this prefix (TEST-NET-3,
# never routed by any corpus topology).
_STALL_PREFIX = Prefix.parse("203.0.113.255/32")


class ChaosInjector:
    """Applies one :class:`FaultPlan` to one deployment.

    Must be armed *before* ``deploy()`` so boot-time faults and early
    activations land; arming an empty plan changes nothing (no rng
    draws, no events), which is what keeps fault-free runs
    byte-identical to a build without chaos at all.
    """

    def __init__(self, deployment: "KneDeployment", plan: FaultPlan) -> None:
        self.deployment = deployment
        self.plan = plan
        #: (sim_time, "activate"|"fire", kind, target) — the replayable
        #: record the determinism test asserts on.
        self.log: list[tuple[float, str, str, str]] = []
        self._slow_boots = plan.slow_boots()
        # node -> remaining injected RPC failures
        self._flakes: dict[str, int] = {}
        # node -> {"remaining", "payload" (captured stale dict or None),
        #          "truncate"}
        self._stale: dict[str, dict] = {}
        self._stall_fib = Fib()
        self._stall_present = False
        self._armed = False

    # -- arming ---------------------------------------------------------------

    def arm(self) -> "ChaosInjector":
        """Attach to the deployment and schedule every timed fault."""
        if self._armed:
            return self
        self._armed = True
        self.deployment.chaos = self
        for router in self.deployment.routers.values():
            router.fault_injector = self
        kernel = self.deployment.kernel
        for fault in self.plan.scheduled():
            kernel.schedule_at(
                max(fault.at, kernel.now),
                lambda f=fault: self._activate(f),
                label=f"chaos:{fault.kind}",
            )
        return self

    @property
    def schedule_horizon(self) -> float:
        """Latest scheduled activation time (0.0 for a boot-only plan).

        A fast-converging corpus can quiesce *before* a fault's
        activation time; the pipeline uses this horizon to keep the
        clock running until the whole plan has fired.
        """
        return max((f.at for f in self.plan.scheduled()), default=0.0)

    def on_router_created(self, router) -> None:
        """Deployment hook: every new router gets the gNMI fault hook."""
        router.fault_injector = self

    def boot_factor(self, node: str) -> float:
        """Deploy hook: boot-time stretch for ``node`` (1.0 = none)."""
        return self._slow_boots.get(node, 1.0)

    # -- activation -----------------------------------------------------------

    def _record(self, action: str, kind: str, target: str) -> None:
        now = self.deployment.kernel.now
        self.log.append((now, action, kind, target))
        collector = bus.ACTIVE
        if collector.enabled:
            collector.count("chaos.faults")
            collector.emit(
                CHAOS_FAULT, now, action=action, kind=kind, target=target
            )
        registry = bus.metrics_registry()
        if registry.enabled:
            registry.counter(
                "chaos.fault_records",
                "Chaos activations and firings by fault kind",
                ("action", "kind"),
            ).inc(action=action, kind=kind)

    def _activate(self, fault) -> None:
        self._record("activate", fault.kind, fault.target)
        if isinstance(fault, PodCrash):
            self.deployment.node_down(fault.node)
            if fault.restart_after is not None:
                self.deployment.kernel.schedule(
                    fault.restart_after,
                    lambda: self._restore(fault),
                    label=f"chaos:restart:{fault.node}",
                )
        elif isinstance(fault, GnmiFlake):
            self._flakes[fault.node] = (
                self._flakes.get(fault.node, 0) + fault.failures
            )
        elif isinstance(fault, StaleAft):
            payload: Optional[dict] = None
            if not fault.truncate:
                router = self.deployment.routers[fault.node]
                payload = AftSnapshot.from_router(
                    router, now=self.deployment.kernel.now
                ).to_dict()
                # The served snapshot must read as predating the live
                # FIB, or the extraction staleness re-check could not
                # tell it from a fresh dump.
                meta = dict(payload.get("meta", {}))
                meta["fib-version"] = max(
                    0, int(meta.get("fib-version", 1)) - 1
                )
                payload["meta"] = meta
            self._stale[fault.node] = {
                "remaining": fault.serves,
                "payload": payload,
                "truncate": fault.truncate,
            }
        elif isinstance(fault, LinkLoss):
            self._set_loss(fault, fault.drop_rate)
            self.deployment.kernel.schedule(
                fault.duration,
                lambda: self._clear_loss(fault),
                label="chaos:link-heal",
            )
        elif isinstance(fault, ConvergenceStall):
            self._stall_tick(
                until=self.deployment.kernel.now + fault.duration,
                period=fault.period,
            )

    def _restore(self, fault: PodCrash) -> None:
        self._record("fire", "pod-restart", fault.node)
        self.deployment.node_up(fault.node)

    def _loss_channels(self, fault: LinkLoss):
        link = self.deployment.topology.find_link(fault.a, fault.z)
        if link is None:
            return []
        channels = []
        for node, interface in (
            (link.a.node, link.a.interface),
            (link.z.node, link.z.interface),
        ):
            channel = self.deployment._channels.get((node, interface))
            if channel is not None:
                channels.append(channel)
        return channels

    def _set_loss(self, fault: LinkLoss, rate: float) -> None:
        for channel in self._loss_channels(fault):
            channel.drop_rate = rate

    def _clear_loss(self, fault: LinkLoss) -> None:
        self._record("fire", "link-heal", fault.target)
        self._set_loss(fault, 0.0)

    def _stall_tick(self, *, until: float, period: float) -> None:
        """Alternate a scratch-FIB insert/remove: each tick bumps the
        process-wide FIB version, so the convergence detector never
        observes a quiet window while the stall lasts."""
        kernel = self.deployment.kernel
        if self._stall_present:
            self._stall_fib.remove_entry(_STALL_PREFIX, kernel.now)
        else:
            self._stall_fib.set_entry(
                FibEntry(prefix=_STALL_PREFIX, action=FibAction.DISCARD),
                kernel.now,
            )
        self._stall_present = not self._stall_present
        if kernel.now + period <= until:
            kernel.schedule(
                period,
                lambda: self._stall_tick(until=until, period=period),
                label="chaos:stall",
            )
        else:
            self._record("fire", "stall-end", "global")

    # -- gNMI hooks (called from GnmiServer) ----------------------------------

    def before_gnmi_get(self, node: str, path: str) -> None:
        """Raise a transient failure if a flake is active for ``node``."""
        remaining = self._flakes.get(node, 0)
        if remaining <= 0:
            return
        self._flakes[node] = remaining - 1
        self._record("fire", "gnmi-flake", node)
        raise GnmiUnavailableError(
            f"{node}: injected gNMI flake on {path} "
            f"({remaining - 1} failure(s) left)"
        )

    def transform_aft(self, node: str, full: dict) -> dict:
        """Serve a stale or truncated AFT response while a fault holds.

        Both variants report a FIB version behind the live counter,
        which the extraction staleness re-check detects.
        """
        state = self._stale.get(node)
        if not state or state["remaining"] <= 0:
            return full
        state["remaining"] -= 1
        if state["payload"] is not None:
            self._record("fire", "stale-aft", node)
            return state["payload"]
        self._record("fire", "truncated-aft", node)
        return _truncate_response(full)

    def fired(self, kind: Optional[str] = None) -> int:
        """How many faults (optionally of one kind) actually fired.

        Counts ``fire`` log entries only; activations are visible via
        ``len(log)``.
        """
        return sum(
            1
            for _, action, k, _ in self.log
            if action == "fire" and (kind is None or k == kind)
        )


def _truncate_response(full: dict) -> dict:
    """A copy of ``full`` with the AFT entry list cut in half and the
    reported FIB version knocked back one — a dump torn mid-write."""
    out = dict(full)
    instances = [dict(i) for i in full["network-instances"]["network-instance"]]
    afts = dict(instances[0]["afts"])
    ipv4 = dict(afts["ipv4-unicast"])
    entries = list(ipv4["ipv4-entry"])
    ipv4["ipv4-entry"] = entries[: max(1, len(entries) // 2)]
    afts["ipv4-unicast"] = ipv4
    instances[0]["afts"] = afts
    out["network-instances"] = {"network-instance": instances}
    meta = dict(full.get("meta", {}))
    meta["fib-version"] = max(0, int(meta.get("fib-version", 1)) - 1)
    out["meta"] = meta
    return out
