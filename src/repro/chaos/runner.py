"""Run a corpus scenario under a fault plan and score the damage.

The runner executes the model-free pipeline twice over the same
topology/context/seed — once fault-free, once under the plan — and
reports *verdict stability*: the fraction of pairwise reachability
verdicts common to both runs that agree. Answers that exist only under
degradation (pairs involving a degraded node) are excluded from the
stability denominator and reported separately as the degraded-verdict
fraction, because ``UNKNOWN_DEGRADED`` is an absence of proof, not a
disagreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.chaos.plan import FaultPlan
from repro.core.context import ScenarioContext
from repro.core.pipeline import ModelFreeBackend
from repro.core.snapshot import Snapshot
from repro.dataplane.forwarding import Disposition
from repro.dataplane.model import Dataplane
from repro.protocols.timers import PRODUCTION_TIMERS, TimerProfile
from repro.topo.model import Topology
from repro.verify.reachability import ReachabilityAnalysis, pairwise_matrix


def pairwise_verdicts(dataplane: Dataplane) -> dict[str, bool]:
    """The all-pairs matrix with JSON-friendly ``src->dst`` keys."""
    return {
        f"{src}->{dst}": reachable
        for (src, dst), reachable in sorted(pairwise_matrix(dataplane).items())
    }


def verdict_stability(
    baseline: dict[str, bool], faulted: dict[str, bool]
) -> float:
    """Fraction of verdicts present in both runs that agree."""
    common = set(baseline) & set(faulted)
    if not common:
        return 1.0
    agreeing = sum(1 for key in common if baseline[key] == faulted[key])
    return agreeing / len(common)


def degraded_fraction(dataplane: Dataplane) -> float:
    """Fraction of reachability rows answering UNKNOWN_DEGRADED."""
    rows = ReachabilityAnalysis(dataplane).analyze()
    if not rows:
        return 0.0
    degraded = sum(
        1
        for row in rows
        if Disposition.UNKNOWN_DEGRADED in row.dispositions
    )
    return degraded / len(rows)


@dataclass
class ChaosRunReport:
    """Everything the ``mfv chaos`` verb and the bench report."""

    plan: dict
    seed: int
    survived: bool
    degraded_nodes: dict[str, str] = field(default_factory=dict)
    retries: dict[str, int] = field(default_factory=dict)
    fault_log: list = field(default_factory=list)
    stability: float = 1.0
    degraded_verdict_fraction: float = 0.0
    baseline_verification: dict = field(default_factory=dict)
    chaos_verification: dict = field(default_factory=dict)
    baseline_snapshot: Optional[Snapshot] = None
    chaos_snapshot: Optional[Snapshot] = None
    #: ``TemporalReport.to_dict()`` of the faulted run (``temporal=``
    #: opt-in): how the network misbehaved *while* the faults landed,
    #: not just where it ended up.
    temporal: dict = field(default_factory=dict)
    #: Present when ``run_chaos(seeds=...)`` scored the plan over an
    #: ensemble of faulted runs rather than one seed: the seed list,
    #: per-seed stability, and how many distinct faulted outcomes the
    #: sweep produced. ``stability`` then pools agreement across seeds.
    ensemble: dict = field(default_factory=dict)

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    def to_dict(self) -> dict:
        out = {
            "plan": self.plan,
            "seed": self.seed,
            "survived": self.survived,
            "degraded_nodes": dict(self.degraded_nodes),
            "retries": dict(self.retries),
            "total_retries": self.total_retries,
            "faults_fired": len(self.fault_log),
            "stability": self.stability,
            "degraded_verdict_fraction": self.degraded_verdict_fraction,
            "baseline_verification": self.baseline_verification,
            "chaos_verification": self.chaos_verification,
        }
        if self.temporal:
            out["temporal"] = self.temporal
        if self.ensemble:
            out["ensemble"] = self.ensemble
        return out


def run_chaos(
    topology: Topology,
    plan: FaultPlan,
    *,
    context: Optional[ScenarioContext] = None,
    seed: int = 0,
    timers: TimerProfile = PRODUCTION_TIMERS,
    quiet_period: float = 30.0,
    convergence_max_time: float = 86_400.0,
    temporal=None,
    seeds: Optional[Sequence[int]] = None,
) -> ChaosRunReport:
    """Fault-free baseline + faulted run, scored for verdict stability.

    Both runs share the topology, context, and seed, so with an empty
    plan the two snapshots' verdicts are byte-identical — the bench's
    fault-free regression gate.

    ``temporal`` (True or a sequence of temporal invariants) records a
    checkpoint stream through the *faulted* run, so the scenario is
    also scored on its transient behavior — the report's ``temporal``
    dict carries the violation intervals.

    ``seeds`` scores the plan over an *ensemble* of faulted runs: one
    baseline/faulted pair per seed on the same warm backend, stability
    pooled across every pair (agreements over common verdicts, summed
    across seeds). Fault timing is seed-jittered, so one seed's
    stability is a sample, not a verdict. Degraded pairs stay out of
    every denominator, and identical faulted fingerprints share one
    verdict computation. The report's scalar fields (snapshots, logs,
    verification) come from the first seed; the ``ensemble`` dict
    carries the per-seed breakdown.
    """
    seed_list = tuple(seeds) if seeds is not None else (seed,)
    if not seed_list:
        seed_list = (seed,)
    sweep = len(seed_list) > 1
    backend = ModelFreeBackend(
        topology,
        timers=timers,
        quiet_period=quiet_period,
        convergence_max_time=convergence_max_time,
    )
    # fingerprint -> pairwise verdicts, shared across the sweep: seeds
    # (and baseline/faulted pairs) that converge identically pay one
    # matrix, mirroring the ensemble runner's outcome dedup.
    verdict_cache: dict[int, dict[str, bool]] = {}

    def verdicts_of(snapshot: Snapshot) -> dict[str, bool]:
        fingerprint = snapshot.dataplane.fib_fingerprint()
        cached = verdict_cache.get(fingerprint)
        if cached is None:
            cached = pairwise_verdicts(snapshot.dataplane)
            verdict_cache[fingerprint] = cached
        return cached

    pairs = []
    for run_seed in seed_list:
        suffix = f":seed-{run_seed}" if sweep else ""
        baseline = backend.run(
            context,
            seed=run_seed,
            snapshot_name=f"chaos:baseline{suffix}",
            verify=True,
        )
        faulted = backend.run(
            context,
            seed=run_seed,
            snapshot_name=f"chaos:{plan.name}{suffix}",
            verify=True,
            chaos=plan,
            temporal=temporal,
        )
        pairs.append((run_seed, baseline, faulted))

    agreeing = 0
    common_total = 0
    per_seed_stability = {}
    degraded_fractions = []
    for run_seed, baseline, faulted in pairs:
        base_verdicts = verdicts_of(baseline)
        fault_verdicts = verdicts_of(faulted)
        common = set(base_verdicts) & set(fault_verdicts)
        agreeing += sum(
            1 for key in common if base_verdicts[key] == fault_verdicts[key]
        )
        common_total += len(common)
        per_seed_stability[run_seed] = verdict_stability(
            base_verdicts, fault_verdicts
        )
        degraded_fractions.append(degraded_fraction(faulted.dataplane))

    stability = agreeing / common_total if common_total else 1.0
    ensemble_info = {}
    if sweep:
        distinct_faulted = len(
            {f.dataplane.fib_fingerprint() for _, _, f in pairs}
        )
        ensemble_info = {
            "seeds": list(seed_list),
            "per_seed_stability": {
                str(s): round(v, 6) for s, v in per_seed_stability.items()
            },
            "distinct_faulted_outcomes": distinct_faulted,
        }

    first_seed, baseline, faulted = pairs[0]
    chaos_meta = faulted.metadata.get("chaos", {})
    return ChaosRunReport(
        plan=plan.describe(),
        seed=first_seed,
        survived=True,
        degraded_nodes=dict(faulted.degraded_nodes),
        retries=dict(faulted.metadata.get("extraction_retries", {})),
        fault_log=list(chaos_meta.get("log", [])),
        stability=stability,
        degraded_verdict_fraction=(
            sum(degraded_fractions) / len(degraded_fractions)
        ),
        baseline_verification=dict(baseline.metadata.get("verification", {})),
        chaos_verification=dict(faulted.metadata.get("verification", {})),
        baseline_snapshot=baseline,
        chaos_snapshot=faulted,
        temporal=dict(faulted.metadata.get("temporal", {})),
        ensemble=ensemble_info,
    )
