"""repro.chaos — deterministic fault injection for the emulation substrate.

A seeded, declarative fault layer in the spirit of chaos engineering:
:class:`~repro.chaos.plan.FaultPlan` describes pod crashes, slow boots,
gNMI flakes, stale/truncated AFT responses, lossy virtual wires, and
convergence stalls; :class:`~repro.chaos.injector.ChaosInjector` arms a
plan against one deployment, driving every fault from the simulated-time
kernel so any seed replays byte-identically; and
:func:`~repro.chaos.runner.run_chaos` scores a corpus scenario's verdict
stability under a plan against its fault-free baseline.

The point is not the faults — it is proving the *pipeline* degrades
gracefully: retries with capped backoff, health probes with
restart-and-reconverge, and partial snapshots whose degraded nodes
answer ``UNKNOWN_DEGRADED`` instead of a fabricated ``NO_ROUTE``.
"""

from repro.chaos.injector import CHAOS_FAULT, ChaosInjector
from repro.chaos.plan import (
    ConvergenceStall,
    Fault,
    FaultPlan,
    GnmiFlake,
    LinkLoss,
    PodCrash,
    SlowBoot,
    StaleAft,
    acceptance_plan,
    sampled_plan,
)
from repro.chaos.runner import ChaosRunReport, run_chaos

__all__ = [
    "CHAOS_FAULT",
    "ChaosInjector",
    "ChaosRunReport",
    "ConvergenceStall",
    "Fault",
    "FaultPlan",
    "GnmiFlake",
    "LinkLoss",
    "PodCrash",
    "SlowBoot",
    "StaleAft",
    "acceptance_plan",
    "run_chaos",
    "sampled_plan",
]
