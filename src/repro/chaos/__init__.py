"""repro.chaos — deterministic fault injection for the emulation substrate.

A seeded, declarative fault layer in the spirit of chaos engineering:
:class:`~repro.chaos.plan.FaultPlan` describes pod crashes, slow boots,
gNMI flakes, stale/truncated AFT responses, lossy virtual wires, and
convergence stalls; :class:`~repro.chaos.injector.ChaosInjector` arms a
plan against one deployment, driving every fault from the simulated-time
kernel so any seed replays byte-identically; and
:func:`~repro.chaos.runner.run_chaos` scores a corpus scenario's verdict
stability under a plan against its fault-free baseline.

The point is not the faults — it is proving the *pipeline* degrades
gracefully: retries with capped backoff, health probes with
restart-and-reconverge, and partial snapshots whose degraded nodes
answer ``UNKNOWN_DEGRADED`` instead of a fabricated ``NO_ROUTE``.

The same discipline extends one layer up:
:class:`~repro.chaos.service_plan.ServiceFaultPlan` breaks the
verification *service* (SIGKILLed worker processes, journal-write
stalls, store eviction storms), keyed to deterministic service counters
so crash schedules replay exactly; :class:`ServiceChaos` arms one
against a running service.
"""

from repro.chaos.injector import CHAOS_FAULT, ChaosInjector
from repro.chaos.plan import (
    ConvergenceStall,
    Fault,
    FaultPlan,
    GnmiFlake,
    LinkLoss,
    PodCrash,
    SlowBoot,
    StaleAft,
    acceptance_plan,
    sampled_plan,
)
from repro.chaos.runner import ChaosRunReport, run_chaos
from repro.chaos.service_plan import (
    EvictionStorm,
    JournalStall,
    ServiceChaos,
    ServiceFault,
    ServiceFaultPlan,
    WorkerCrash,
    sampled_service_plan,
)

__all__ = [
    "CHAOS_FAULT",
    "ChaosInjector",
    "ChaosRunReport",
    "ConvergenceStall",
    "EvictionStorm",
    "Fault",
    "FaultPlan",
    "GnmiFlake",
    "JournalStall",
    "LinkLoss",
    "PodCrash",
    "ServiceChaos",
    "ServiceFault",
    "ServiceFaultPlan",
    "SlowBoot",
    "StaleAft",
    "WorkerCrash",
    "acceptance_plan",
    "run_chaos",
    "sampled_plan",
    "sampled_service_plan",
]
