"""Declarative, picklable fault plans.

A :class:`FaultPlan` is to substrate faults what
:class:`~repro.whatif.scenarios.FaultScenario` is to topology faults: a
frozen description of *what goes wrong and when*, with no references to
live objects, so plans can be pickled to workers, stored in corpus
files, and replayed byte-identically for a fixed seed. All timing is
simulated time; the :class:`~repro.chaos.injector.ChaosInjector`
schedules activations on the deployment's kernel.

Fault taxonomy (one dataclass per layer of the substrate):

* :class:`PodCrash` / :class:`SlowBoot` — kube layer;
* :class:`GnmiFlake` / :class:`StaleAft` — management RPC layer;
* :class:`LinkLoss` — sim/channel layer (lossy virtual wires);
* :class:`ConvergenceStall` — control-plane churn that defeats the
  convergence detector until it subsides.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Union

KIND_POD_CRASH = "pod-crash"
KIND_SLOW_BOOT = "slow-boot"
KIND_GNMI_FLAKE = "gnmi-flake"
KIND_STALE_AFT = "stale-aft"
KIND_LINK_LOSS = "link-loss"
KIND_CONVERGENCE_STALL = "convergence-stall"


@dataclass(frozen=True)
class PodCrash:
    """Kill ``node``'s pod at simulated time ``at``.

    With ``restart_after`` set, the pod is restored that many simulated
    seconds later (links to live peers come back and the network
    re-converges); with None it stays down, which is how a node ends up
    in the snapshot's ``degraded_nodes`` manifest.
    """

    node: str
    at: float
    restart_after: Union[float, None] = None

    @property
    def kind(self) -> str:
        return KIND_POD_CRASH

    @property
    def target(self) -> str:
        return self.node


@dataclass(frozen=True)
class SlowBoot:
    """Stretch ``node``'s boot time by ``factor`` (takes effect at
    deploy; the ``at`` of scheduled faults does not apply)."""

    node: str
    factor: float = 3.0

    @property
    def kind(self) -> str:
        return KIND_SLOW_BOOT

    @property
    def target(self) -> str:
        return self.node


@dataclass(frozen=True)
class GnmiFlake:
    """From ``at`` on, the next ``failures`` gNMI Gets against ``node``
    raise a transient ``GnmiUnavailableError`` — the classic RPC flake
    the retry/backoff path must absorb."""

    node: str
    failures: int = 2
    at: float = 0.0

    @property
    def kind(self) -> str:
        return KIND_GNMI_FLAKE

    @property
    def target(self) -> str:
        return self.node


@dataclass(frozen=True)
class StaleAft:
    """From ``at`` on, the next ``serves`` AFT dumps from ``node`` are
    wrong: a response captured at activation time (stale), or — with
    ``truncate`` — the live response with its entry list cut short. Both
    carry a FIB version behind the live counter, which is what the
    extraction staleness re-check keys off."""

    node: str
    serves: int = 1
    at: float = 0.0
    truncate: bool = False

    @property
    def kind(self) -> str:
        return KIND_STALE_AFT

    @property
    def target(self) -> str:
        return self.node


@dataclass(frozen=True)
class LinkLoss:
    """Make the (first) link between ``a`` and ``z`` lossy: each
    direction drops sends with probability ``drop_rate`` from ``at``
    until ``at + duration`` (drawn from the kernel's seeded rng, so the
    loss pattern replays exactly)."""

    a: str
    z: str
    drop_rate: float = 0.1
    at: float = 0.0
    duration: float = 60.0

    @property
    def kind(self) -> str:
        return KIND_LINK_LOSS

    @property
    def target(self) -> str:
        return f"{self.a}<->{self.z}"


@dataclass(frozen=True)
class ConvergenceStall:
    """Inject global FIB-version churn every ``period`` seconds from
    ``at`` until ``at + duration``: the convergence detector never sees
    a quiet window while the stall lasts, which is how the watchdog's
    ``ConvergenceTimeout`` path gets exercised."""

    at: float = 0.0
    duration: float = 120.0
    period: float = 1.0

    @property
    def kind(self) -> str:
        return KIND_CONVERGENCE_STALL

    @property
    def target(self) -> str:
        return "global"


Fault = Union[
    PodCrash, SlowBoot, GnmiFlake, StaleAft, LinkLoss, ConvergenceStall
]


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded schedule of substrate faults.

    ``seed`` identifies the plan for reporting and drives any plan
    *generation* (see :func:`sampled_plan`); fault *timing* is fully
    declarative, so two runs of the same plan against the same topology
    seed replay identically.
    """

    name: str = "chaos"
    seed: int = 0
    faults: tuple = ()

    @property
    def is_empty(self) -> bool:
        return not self.faults

    def scheduled(self) -> list:
        """Faults with a scheduled activation, in firing order.

        SlowBoot is excluded — it modulates deploy-time boot draws
        rather than firing as a kernel event.
        """
        timed = [f for f in self.faults if not isinstance(f, SlowBoot)]
        return sorted(timed, key=lambda f: (f.at, f.kind, f.target))

    def slow_boots(self) -> dict[str, float]:
        factors: dict[str, float] = {}
        for fault in self.faults:
            if isinstance(fault, SlowBoot):
                factors[fault.node] = max(
                    factors.get(fault.node, 1.0), fault.factor
                )
        return factors

    def describe(self) -> dict:
        """JSON-friendly description (CLI/bench reporting)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [
                {"kind": f.kind, "target": f.target}
                for f in self.faults
            ],
        }

    def __len__(self) -> int:
        return len(self.faults)


def acceptance_plan(
    nodes: list[str],
    *,
    crash_at: float = 900.0,
    flake_failures: int = 2,
) -> FaultPlan:
    """The ISSUE's acceptance scenario: transient gNMI flakes on two
    nodes plus one unrecovered pod crash. Deterministic (no sampling):
    the flaked and crashed nodes are the first names in sorted order.
    """
    ordered = sorted(nodes)
    if not ordered:
        return FaultPlan(name="acceptance", faults=())
    crashed = ordered[0]
    flaked = ordered[1:3] or ordered[:1]
    faults: list[Fault] = [
        GnmiFlake(node=node, failures=flake_failures) for node in flaked
    ]
    faults.append(PodCrash(node=crashed, at=crash_at))
    return FaultPlan(name="acceptance", faults=tuple(faults))


def sampled_plan(
    nodes: list[str],
    *,
    seed: int = 0,
    intensity: int = 3,
    crash: bool = True,
    crash_at: float = 900.0,
) -> FaultPlan:
    """A randomly sampled plan over ``nodes`` (its own ``Random(seed)``,
    never the kernel's rng): ``intensity`` gNMI flake/stale faults, plus
    optionally one pod crash. Same seed, same plan — the CLI's default
    plan source."""
    rng = random.Random(seed)
    ordered = sorted(nodes)
    faults: list[Fault] = []
    for _ in range(max(0, intensity)):
        node = rng.choice(ordered)
        if rng.random() < 0.5:
            faults.append(
                GnmiFlake(node=node, failures=rng.randint(1, 3))
            )
        else:
            faults.append(
                StaleAft(node=node, serves=1, truncate=rng.random() < 0.5)
            )
    if crash and ordered:
        faults.append(PodCrash(node=rng.choice(ordered), at=crash_at))
    return FaultPlan(name=f"sampled-{seed}", seed=seed, faults=tuple(faults))
