"""Service-level chaos: seeded faults against the verification service.

:class:`~repro.chaos.plan.FaultPlan` breaks the emulation substrate;
:class:`ServiceFaultPlan` breaks the *service* that answers questions
about it — worker processes SIGKILLed mid-job, journal writes stalled,
the snapshot store hit by eviction storms. Faults are declarative and
keyed to deterministic service counters (the Nth dispatch, the Nth
journal record, the Nth submission), never wall-clock time, so a plan
replays exactly: the resilience tests assert that a replayed crash
schedule yields byte-identical answers to an undisturbed run.

:class:`ServiceChaos` arms a plan against one
:class:`~repro.service.service.VerificationService` by installing the
service's chaos hooks (``pool.on_dispatch``, ``journal.stall_hook``,
``service.on_submit``) and restores them on disarm; each fault fires at
most once and is recorded in ``fired`` for reporting.
"""

from __future__ import annotations

import logging
import random
import time
from dataclasses import dataclass
from typing import Optional, Union

logger = logging.getLogger(__name__)

KIND_WORKER_CRASH = "worker-crash"
KIND_JOURNAL_STALL = "journal-stall"
KIND_EVICTION_STORM = "eviction-storm"


@dataclass(frozen=True)
class WorkerCrash:
    """SIGKILL the worker executing the ``at_dispatch``-th dispatched
    job (1-based, counted across the pool). Requires the supervised
    process pool — thread workers share the service's fate and cannot
    be crashed in isolation."""

    at_dispatch: int

    @property
    def kind(self) -> str:
        return KIND_WORKER_CRASH

    @property
    def target(self) -> str:
        return f"dispatch#{self.at_dispatch}"


@dataclass(frozen=True)
class JournalStall:
    """Stall the journal append path for ``stall_s`` wall seconds when
    the ``at_record``-th record (0-based ``records_written`` count) is
    about to be appended — the slow-disk / fsync-storm failure mode the
    submission path must survive without dropping accepted work."""

    at_record: int
    stall_s: float = 0.05

    @property
    def kind(self) -> str:
        return KIND_JOURNAL_STALL

    @property
    def target(self) -> str:
        return f"record#{self.at_record}"


@dataclass(frozen=True)
class EvictionStorm:
    """Forcibly evict ``evict`` LRU entries from the snapshot store on
    the ``at_submit``-th submission (1-based) — mass cache-pressure
    that exercises the ``DeploymentLostError`` retry path under load."""

    at_submit: int
    evict: int = 2

    @property
    def kind(self) -> str:
        return KIND_EVICTION_STORM

    @property
    def target(self) -> str:
        return f"submit#{self.at_submit}"


ServiceFault = Union[WorkerCrash, JournalStall, EvictionStorm]


@dataclass(frozen=True)
class ServiceFaultPlan:
    """A named, seeded schedule of service-plane faults."""

    name: str = "service-chaos"
    seed: int = 0
    faults: tuple = ()

    @property
    def is_empty(self) -> bool:
        return not self.faults

    def worker_crashes(self) -> list[WorkerCrash]:
        return [f for f in self.faults if isinstance(f, WorkerCrash)]

    def journal_stalls(self) -> list[JournalStall]:
        return [f for f in self.faults if isinstance(f, JournalStall)]

    def eviction_storms(self) -> list[EvictionStorm]:
        return [f for f in self.faults if isinstance(f, EvictionStorm)]

    def describe(self) -> dict:
        """JSON-friendly description (CLI/bench reporting)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [
                {"kind": f.kind, "target": f.target}
                for f in self.faults
            ],
        }

    def __len__(self) -> int:
        return len(self.faults)


def sampled_service_plan(
    *,
    seed: int = 0,
    crashes: int = 2,
    dispatch_span: int = 8,
    stalls: int = 1,
    storms: int = 0,
) -> ServiceFaultPlan:
    """A randomly sampled service plan (its own ``Random(seed)``):
    ``crashes`` worker kills spread over the first ``dispatch_span``
    dispatches, plus optional journal stalls and eviction storms. Same
    seed, same plan — the resilience bench's crash-schedule source."""
    rng = random.Random(seed)
    span = max(1, dispatch_span)
    indices = rng.sample(range(1, span + 1), min(max(0, crashes), span))
    faults: list[ServiceFault] = [
        WorkerCrash(at_dispatch=i) for i in sorted(indices)
    ]
    for _ in range(max(0, stalls)):
        faults.append(
            JournalStall(
                at_record=rng.randint(1, 4 * span),
                stall_s=rng.uniform(0.01, 0.05),
            )
        )
    for _ in range(max(0, storms)):
        faults.append(
            EvictionStorm(at_submit=rng.randint(1, span), evict=2)
        )
    return ServiceFaultPlan(
        name=f"service-sampled-{seed}", seed=seed, faults=tuple(faults)
    )


class ServiceChaos:
    """Arms one :class:`ServiceFaultPlan` against a running service.

    Context manager: hooks install on ``__enter__``/:meth:`arm` and the
    previous hooks are restored on ``__exit__``/:meth:`disarm`. Faults
    fire at most once; ``fired`` holds ``{"kind", "target", "at"}``
    records in firing order for reports and assertions.
    """

    def __init__(self, service, plan: ServiceFaultPlan) -> None:
        self.service = service
        self.plan = plan
        self.fired: list[dict] = []
        self._armed = False
        self._prev_dispatch = None
        self._prev_stall = None
        self._prev_submit = None
        self._pending_crashes = {
            f.at_dispatch: f for f in plan.worker_crashes()
        }
        self._pending_stalls = {
            f.at_record: f for f in plan.journal_stalls()
        }
        self._pending_storms = {
            f.at_submit: f for f in plan.eviction_storms()
        }

    # -- lifecycle ------------------------------------------------------------

    def arm(self) -> "ServiceChaos":
        if self._armed:
            return self
        pool = self.service.pool
        if self._pending_crashes and not hasattr(pool, "kill_worker"):
            raise ValueError(
                "worker-crash faults need worker_mode='process' "
                "(thread workers share the service's fate)"
            )
        if self._pending_crashes:
            self._prev_dispatch = pool.on_dispatch
            pool.on_dispatch = self._on_dispatch
        if self._pending_stalls and self.service.journal is not None:
            self._prev_stall = self.service.journal.stall_hook
            self.service.journal.stall_hook = self._on_journal_record
        if self._pending_storms:
            self._prev_submit = self.service.on_submit
            self.service.on_submit = self._on_submit
        self._armed = True
        return self

    def disarm(self) -> None:
        if not self._armed:
            return
        pool = self.service.pool
        if self._pending_crashes or self._prev_dispatch is not None:
            if hasattr(pool, "on_dispatch"):
                pool.on_dispatch = self._prev_dispatch
        if self.service.journal is not None and (
            self.service.journal.stall_hook is self._on_journal_record
        ):
            self.service.journal.stall_hook = self._prev_stall
        if self.service.on_submit is self._on_submit:
            self.service.on_submit = self._prev_submit
        self._armed = False

    def __enter__(self) -> "ServiceChaos":
        return self.arm()

    def __exit__(self, *exc) -> None:
        self.disarm()

    # -- hook implementations --------------------------------------------------

    def _record(self, fault) -> None:
        self.fired.append(
            {"kind": fault.kind, "target": fault.target, "at": time.time()}
        )

    def _on_dispatch(self, job, worker_index: int, dispatch_index: int):
        fault = self._pending_crashes.pop(dispatch_index, None)
        if fault is not None:
            logger.info(
                "chaos: killing worker %d at dispatch %d (job %s)",
                worker_index, dispatch_index, job.id,
            )
            self.service.pool.kill_worker(worker_index)
            self._record(fault)
        if self._prev_dispatch is not None:
            self._prev_dispatch(job, worker_index, dispatch_index)

    def _on_journal_record(self, record_index: int) -> None:
        fault = self._pending_stalls.pop(record_index, None)
        if fault is not None:
            logger.info(
                "chaos: stalling journal %.3fs at record %d",
                fault.stall_s, record_index,
            )
            time.sleep(fault.stall_s)
            self._record(fault)
        if self._prev_stall is not None:
            self._prev_stall(record_index)

    def _on_submit(self, submit_index: int) -> None:
        fault = self._pending_storms.pop(submit_index, None)
        if fault is not None:
            evicted = self.service.store.evict(fault.evict)
            logger.info(
                "chaos: eviction storm at submit %d evicted %d",
                submit_index, evicted,
            )
            self._record(fault)
        if self._prev_submit is not None:
            self._prev_submit(submit_index)


__all__ = [
    "EvictionStorm",
    "JournalStall",
    "ServiceChaos",
    "ServiceFault",
    "ServiceFaultPlan",
    "WorkerCrash",
    "sampled_service_plan",
]
