"""Temporal invariants and their violation intervals.

A temporal invariant is a predicate evaluated at every checkpoint of a
:class:`~repro.temporal.checkpoints.CheckpointStream`; the evaluator
turns per-checkpoint findings into half-open intervals ``[t_start,
t_end)`` — the violation held from the checkpoint at ``t_start`` and
was first observed clear at ``t_end``. An interval that clears before
the final checkpoint is *transient*: it is precisely the class of
defect a post-convergence snapshot verification can never see. An
interval still open at the final checkpoint is persistent and would
also be caught by ``mfv verify``; it is reported here too, flagged
``transient=False``, so the temporal report subsumes the snapshot one.

``max_sim_s`` on the loop/blackhole invariants is a tolerance: transient
intervals lasting no longer than that many simulated seconds are
expected convergence noise and suppressed. Persistent intervals are
never suppressed — they last forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dataplane.forwarding import Disposition
from repro.net.addr import format_ipv4

NO_TRANSIENT_LOOP = "no-transient-loop"
BLACKHOLE_WINDOW = "blackhole-window"
MAX_CHURN = "max-churn"
WAYPOINT_ALWAYS = "waypoint-always"

_BLACKHOLE = frozenset({Disposition.NO_ROUTE, Disposition.NULL_ROUTED})


@dataclass(frozen=True)
class ViolationInterval:
    """One violation's lifetime, with its witness atom.

    ``ingress``/``destination`` witness the violating flow (empty for
    network-wide invariants like churn). ``transient`` is True when the
    violation cleared before the stream's final checkpoint.
    """

    invariant: str
    t_start: float
    t_end: float
    ingress: str = ""
    destination: str = ""
    detail: str = ""
    transient: bool = True

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration": self.duration,
            "ingress": self.ingress,
            "destination": self.destination,
            "detail": self.detail,
            "transient": self.transient,
        }

    def __str__(self) -> str:
        witness = ""
        if self.ingress or self.destination:
            witness = f" {self.ingress}->{self.destination}"
        tail = f" ({self.detail})" if self.detail else ""
        kind = "transient" if self.transient else "persistent"
        return (
            f"[{self.t_start:10.1f}, {self.t_end:10.1f})s "
            f"{self.invariant:<17}{witness} {kind}{tail}"
        )


class TemporalInvariant:
    """Base: findings active at one checkpoint, keyed for continuity.

    ``findings(probe)`` returns ``{key: detail}``; the evaluator opens
    an interval when a key first appears and closes it when the key
    vanishes. Keys must therefore be stable across checkpoints for the
    same logical violation — (ingress, destination) pairs for flow
    invariants, a constant for network-wide ones.
    """

    name = "invariant"
    #: Transient intervals lasting <= this many sim-seconds are noise.
    max_sim_s = 0.0

    def findings(self, probe) -> dict:
        raise NotImplementedError


class NoTransientLoop(TemporalInvariant):
    """No forwarding loop, even mid-convergence, lasting > ``max_sim_s``."""

    name = NO_TRANSIENT_LOOP

    def __init__(self, max_sim_s: float = 0.0) -> None:
        self.max_sim_s = max_sim_s

    def findings(self, probe) -> dict:
        active = {}
        for ingress, address, owner in probe.flows():
            if Disposition.LOOP in probe.dispositions(ingress, address):
                active[(ingress, address)] = (
                    f"loop toward {owner}"
                )
        return active


class BlackholeWindow(TemporalInvariant):
    """Traffic to ``dst`` (default: every owned address) must not fall
    into NO_ROUTE/NULL_ROUTED for longer than ``max_sim_s``."""

    name = BLACKHOLE_WINDOW

    def __init__(
        self, dst: Optional[str] = None, max_sim_s: float = 0.0
    ) -> None:
        self.dst = dst
        self.max_sim_s = max_sim_s

    def findings(self, probe) -> dict:
        active = {}
        for ingress, address, owner in probe.flows(dst=self.dst):
            if probe.dispositions(ingress, address) & _BLACKHOLE:
                active[(ingress, address)] = f"blackhole toward {owner}"
        return active


class MaxChurn(TemporalInvariant):
    """Route-install rate across the network stays <= ``installs_per_s``.

    Rate is measured per checkpoint window: installs coalesced into the
    checkpoint divided by sim-time elapsed since the previous one.
    """

    name = MAX_CHURN

    def __init__(self, installs_per_s: float) -> None:
        self.installs_per_s = installs_per_s

    def findings(self, probe) -> dict:
        rate = probe.install_rate()
        if rate is not None and rate > self.installs_per_s:
            return {
                "rate": (
                    f"{rate:.1f} installs/s > "
                    f"limit {self.installs_per_s:.1f}"
                )
            }
        return {}


class WaypointAlways(TemporalInvariant):
    """Every successful path to ``dst`` traverses device ``via`` at
    every checkpoint — service-chain insertion that must hold even
    while routes are moving."""

    name = WAYPOINT_ALWAYS

    def __init__(self, dst: str, via: str, max_sim_s: float = 0.0) -> None:
        from repro.net.addr import parse_ipv4

        self.dst = dst
        self.address = parse_ipv4(dst)
        self.via = via
        self.max_sim_s = max_sim_s

    def findings(self, probe) -> dict:
        active = {}
        for ingress in probe.ingresses:
            if ingress == self.via:
                continue
            result = probe.walk(ingress, self.address)
            for trace in result.traces:
                if not trace.disposition.is_success:
                    continue
                if all(hop.device != self.via for hop in trace.hops):
                    active[(ingress, self.address)] = (
                        f"path skips waypoint {self.via}"
                    )
                    break
        return active


def default_invariants() -> list[TemporalInvariant]:
    """The `mfv temporal` defaults: loops and blackholes, zero
    tolerance — every positive-width transient window is reported."""
    return [NoTransientLoop(), BlackholeWindow()]


def describe_key(key) -> tuple[str, str]:
    """(ingress, destination-text) for an invariant finding key."""
    if isinstance(key, tuple) and len(key) == 2:
        ingress, address = key
        return str(ingress), format_ipv4(address)
    return "", ""
