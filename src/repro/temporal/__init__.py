"""repro.temporal — transient-state verification.

Check invariants *during* convergence, not just after: record a
checkpoint stream of per-device FIB deltas off the live kernel, replay
it through one warm (delta-capable) engine, and report violations as
``[t_start, t_end)`` intervals with witness atoms. See
``docs/architecture.md`` § Transient-state verification.
"""

from repro.temporal.checkpoints import (
    Checkpoint,
    CheckpointRecorder,
    CheckpointStream,
)
from repro.temporal.evaluator import (
    CheckpointProbe,
    TemporalReport,
    evaluate_stream,
)
from repro.temporal.invariants import (
    BlackholeWindow,
    MaxChurn,
    NoTransientLoop,
    TemporalInvariant,
    ViolationInterval,
    WaypointAlways,
    default_invariants,
)

__all__ = [
    "BlackholeWindow",
    "Checkpoint",
    "CheckpointProbe",
    "CheckpointRecorder",
    "CheckpointStream",
    "MaxChurn",
    "NoTransientLoop",
    "TemporalInvariant",
    "TemporalReport",
    "ViolationInterval",
    "WaypointAlways",
    "default_invariants",
    "evaluate_stream",
]
