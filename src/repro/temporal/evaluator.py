"""Incremental temporal evaluation over a checkpoint stream.

One warm :class:`~repro.verify.engine.AtomGraphEngine` is threaded
through the stream with ``apply_delta`` — each checkpoint costs a
sparse patch, not a rebuild — and every invariant is evaluated against
every checkpoint. Findings are stitched into
:class:`~repro.temporal.invariants.ViolationInterval` rows.

``use_delta=False`` is the brute-force oracle: a cold, fully
precomputed engine per checkpoint, identical interval logic. The test
suite holds the two modes to row-for-row equality; the benchmark holds
them ≥5× apart in wall time. When a delta is structurally unappliable
(or dirties more atoms than ``MFV_DELTA_THRESHOLD`` allows), the
incremental mode falls back to a cold build for that step and keeps
going — correctness never depends on the fast path being available.

Flow universe: every owned address that exists at *any* checkpoint,
against every ingress device. Using a single checkpoint's address map
would drop exactly the destinations a flap temporarily un-owns.

Metrics (registry + flat trace counters, matching the ``verify.delta_*``
plane): ``verify.temporal_checkpoints``, ``verify.temporal_violations``,
``verify.temporal_fallbacks``, and the ``verify.temporal_apply_seconds``
per-step histogram.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.dataplane.forwarding import ForwardingWalk, WalkResult
from repro.obs import bus
from repro.temporal.checkpoints import Checkpoint, CheckpointStream
from repro.temporal.invariants import (
    TemporalInvariant,
    ViolationInterval,
    describe_key,
)
from repro.verify.engine import AtomGraphEngine, DeltaUnapplicable


class CheckpointProbe:
    """What one invariant may ask about one checkpoint."""

    def __init__(
        self,
        checkpoint: Checkpoint,
        engine: AtomGraphEngine,
        universe: dict[int, str],
        ingresses: Sequence[str],
        prev_t: Optional[float],
    ) -> None:
        self.checkpoint = checkpoint
        self.engine = engine
        self.universe = universe
        self.ingresses = ingresses
        self._prev_t = prev_t
        self._walker: Optional[ForwardingWalk] = None

    @property
    def t(self) -> float:
        return self.checkpoint.t

    def flows(self, dst: Optional[str] = None):
        """(ingress, address, owner) triples over the flow universe."""
        from repro.net.addr import parse_ipv4

        wanted = None if dst is None else parse_ipv4(dst)
        for address in sorted(self.universe):
            if wanted is not None and address != wanted:
                continue
            owner = self.universe[address]
            for ingress in self.ingresses:
                if ingress == owner:
                    continue
                yield ingress, address, owner

    def dispositions(self, ingress: str, address: int) -> frozenset:
        return self.engine.dispositions(
            ingress, self.engine.atom_index_of(address)
        )

    def walk(self, ingress: str, address: int) -> WalkResult:
        if self._walker is None:
            self._walker = ForwardingWalk(self.checkpoint.dataplane)
        return self._walker.walk(ingress, address)

    def install_rate(self) -> Optional[float]:
        """Installs per sim-second over this checkpoint's window."""
        if self._prev_t is None:
            return None
        elapsed = self.t - self._prev_t
        if elapsed <= 0:
            return None
        return self.checkpoint.installs / elapsed


@dataclass
class TemporalReport:
    """Violation intervals plus how the evaluation went."""

    intervals: list[ViolationInterval] = field(default_factory=list)
    checkpoints: int = 0
    fallbacks: int = 0
    fallback_reasons: list[str] = field(default_factory=list)
    apply_seconds: list[float] = field(default_factory=list)
    use_delta: bool = True

    @property
    def transient(self) -> list[ViolationInterval]:
        return [i for i in self.intervals if i.transient]

    @property
    def persistent(self) -> list[ViolationInterval]:
        return [i for i in self.intervals if not i.transient]

    def to_dict(self) -> dict:
        return {
            "checkpoints": self.checkpoints,
            "violations": len(self.intervals),
            "transient": len(self.transient),
            "persistent": len(self.persistent),
            "fallbacks": self.fallbacks,
            "fallback_reasons": list(self.fallback_reasons),
            "apply_seconds_total": sum(self.apply_seconds),
            "use_delta": self.use_delta,
            "intervals": [i.to_dict() for i in self.intervals],
        }

    def render(self) -> str:
        lines = [
            f"Temporal verification: {self.checkpoints} checkpoints, "
            f"{len(self.intervals)} violation interval(s) "
            f"({len(self.transient)} transient, "
            f"{len(self.persistent)} persistent)"
        ]
        for interval in self.intervals:
            lines.append(f"  {interval}")
        if self.fallbacks:
            lines.append(
                f"  ({self.fallbacks} step(s) fell back to a cold rebuild: "
                f"{', '.join(self.fallback_reasons)})"
            )
        return "\n".join(lines)


def _cold_engine(checkpoint: Checkpoint) -> AtomGraphEngine:
    engine = AtomGraphEngine(checkpoint.dataplane, _observe=False)
    engine.precompute()
    return engine


def evaluate_stream(
    stream: CheckpointStream,
    invariants: Optional[Sequence[TemporalInvariant]] = None,
    *,
    use_delta: bool = True,
) -> TemporalReport:
    """Evaluate ``invariants`` at every checkpoint of ``stream``.

    Intervals are ordered by (t_start, invariant, witness) so
    incremental and oracle runs compare row-for-row.
    """
    from repro.temporal.invariants import default_invariants

    checks = (
        list(invariants) if invariants is not None else default_invariants()
    )
    report = TemporalReport(checkpoints=len(stream), use_delta=use_delta)
    if not stream.checkpoints:
        return report
    universe = stream.destination_universe()
    ingresses = stream.node_names()
    registry = bus.metrics_registry()

    # (invariant-index, key) -> (t_start, ingress, destination, detail)
    open_intervals: dict = {}
    closed: list[ViolationInterval] = []

    engine: Optional[AtomGraphEngine] = None
    prev_t: Optional[float] = None
    for checkpoint in stream.checkpoints:
        start = time.perf_counter()
        if engine is None or not use_delta or checkpoint.delta is None:
            engine = _cold_engine(checkpoint)
        else:
            try:
                engine = engine.apply_delta(checkpoint.delta)
            except DeltaUnapplicable as exc:
                report.fallbacks += 1
                report.fallback_reasons.append(exc.reason)
                engine = _cold_engine(checkpoint)
        step_seconds = time.perf_counter() - start
        report.apply_seconds.append(step_seconds)
        if registry.enabled:
            registry.histogram(
                "verify.temporal_apply_seconds",
                "Wall seconds advancing the warm engine one checkpoint",
            ).observe(step_seconds)

        probe = CheckpointProbe(
            checkpoint, engine, universe, ingresses, prev_t
        )
        for slot, invariant in enumerate(checks):
            active = invariant.findings(probe)
            for key, detail in active.items():
                handle = (slot, key)
                if handle not in open_intervals:
                    ingress, destination = describe_key(key)
                    open_intervals[handle] = (
                        checkpoint.t,
                        ingress,
                        destination,
                        str(detail),
                    )
            for handle in [
                h
                for h in open_intervals
                if h[0] == slot and h[1] not in active
            ]:
                t_start, ingress, destination, detail = open_intervals.pop(
                    handle
                )
                interval = ViolationInterval(
                    invariant=invariant.name,
                    t_start=t_start,
                    t_end=checkpoint.t,
                    ingress=ingress,
                    destination=destination,
                    detail=detail,
                    transient=True,
                )
                if interval.duration > invariant.max_sim_s:
                    closed.append(interval)
        prev_t = checkpoint.t

    final_t = stream.final.t
    for (slot, _key), (t_start, ingress, destination, detail) in sorted(
        open_intervals.items(),
        key=lambda item: (item[1][0], item[0][0], item[1][1], item[1][2]),
    ):
        # Still violating at the last (converged) checkpoint: persistent,
        # never suppressed by the transient tolerance.
        closed.append(
            ViolationInterval(
                invariant=checks[slot].name,
                t_start=t_start,
                t_end=final_t,
                ingress=ingress,
                destination=destination,
                detail=detail,
                transient=False,
            )
        )

    report.intervals = sorted(
        closed,
        key=lambda i: (i.t_start, i.invariant, i.ingress, i.destination),
    )

    collector = bus.ACTIVE
    if registry.enabled:
        registry.counter(
            "verify.temporal_checkpoints",
            "Checkpoints evaluated for temporal invariants",
        ).inc(len(stream))
        registry.counter(
            "verify.temporal_violations",
            "Temporal violation intervals reported",
        ).inc(len(report.intervals))
        if report.fallbacks:
            registry.counter(
                "verify.temporal_fallbacks",
                "Temporal steps that fell back to a cold engine build",
            ).inc(report.fallbacks)
    if collector.enabled:
        for interval in report.intervals:
            collector.emit(
                "temporal.violation",
                interval.t_start,
                node=interval.ingress,
                invariant=interval.invariant,
                t_end=interval.t_end,
                destination=interval.destination,
                transient=interval.transient,
                detail=interval.detail,
            )
    return report
