"""Checkpoint stream: per-device FIB deltas captured mid-convergence.

Every verdict the rest of the system emits is computed on a quiesced
snapshot — this module records what the dataplane looked like *between*
quiescences. A :class:`CheckpointRecorder` hooks the live routers' FIB
change notifications, and whenever a `route.install` burst ends (the
coalescing window ``MFV_TEMPORAL_COALESCE`` of simulated seconds passes
with the capture pending), it dumps AFTs from just the dirty devices,
evolves the previous dataplane around them
(:meth:`~repro.dataplane.model.Dataplane.evolve` shares every untouched
device object), and stores the resulting
:class:`~repro.dataplane.delta.DataplaneDelta`. The product is an
ordered :class:`CheckpointStream` — cheap deltas, not full snapshots —
that the temporal evaluator replays through one warm engine.

Capture scheduling rides the kernel itself: the capture event is
scheduled at maximum priority, so at a given sim-instant it runs after
every protocol event, and k installs in one instant cost exactly one
checkpoint even with a zero-width window. The window is a throttle, not
a debounce — sustained churn still yields a checkpoint per window, so a
slow convergence cannot starve the stream.

``MFV_TEMPORAL_MAX_CHECKPOINTS`` bounds stream length: past the cap,
the recorder merges the adjacent pair of interior checkpoints spanning
the smallest time window, fusing their deltas with
:meth:`DataplaneDelta.compose` — endpoints are never dropped, so the
initial and final states stay exact and only mid-stream resolution
degrades.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.dataplane.delta import DataplaneDelta
from repro.dataplane.model import Dataplane
from repro.gnmi.aft import AftSnapshot
from repro.obs import bus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kube.kne import KneDeployment

_DEFAULT_COALESCE = 0.25
_DEFAULT_MAX_CHECKPOINTS = 256
# Above every protocol/chaos event priority: a capture at time t runs
# only after everything else scheduled at t, so one sim-instant's
# install burst is always seen whole.
_CAPTURE_PRIORITY = 1 << 30


def _coalesce_window() -> float:
    """``MFV_TEMPORAL_COALESCE`` (simulated seconds, >= 0)."""
    raw = os.environ.get("MFV_TEMPORAL_COALESCE", "")
    if raw:
        try:
            return max(0.0, float(raw))
        except ValueError:
            pass
    return _DEFAULT_COALESCE


def _max_checkpoints() -> int:
    """``MFV_TEMPORAL_MAX_CHECKPOINTS`` (>= 2: endpoints survive)."""
    raw = os.environ.get("MFV_TEMPORAL_MAX_CHECKPOINTS", "")
    if raw:
        try:
            return max(2, int(raw))
        except ValueError:
            pass
    return _DEFAULT_MAX_CHECKPOINTS


@dataclass
class Checkpoint:
    """One intermediate forwarding state, with the delta that made it.

    ``delta`` is None only for index 0 (the stream's base state);
    every later checkpoint satisfies ``delta.base is`` the previous
    checkpoint's dataplane and ``delta.target is`` its own — the chain
    invariant :meth:`AtomGraphEngine.apply_delta` requires.
    """

    index: int
    t: float
    dataplane: Dataplane
    delta: Optional[DataplaneDelta]
    dirty_devices: tuple[str, ...] = ()
    #: route.install notifications coalesced into this checkpoint.
    installs: int = 0
    #: The AFT dumps backing this checkpoint (all devices at index 0,
    #: dirty devices only afterwards) — kept for trace serialization;
    #: the dataplane itself does not retain its source snapshots.
    snapshots: dict[str, AftSnapshot] = field(default_factory=dict)


@dataclass
class CheckpointStream:
    """An ordered sequence of checkpoints over one convergence episode."""

    checkpoints: list[Checkpoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.checkpoints)

    @property
    def initial(self) -> Checkpoint:
        return self.checkpoints[0]

    @property
    def final(self) -> Checkpoint:
        return self.checkpoints[-1]

    def deltas(self) -> list[DataplaneDelta]:
        return [cp.delta for cp in self.checkpoints if cp.delta is not None]

    def node_names(self) -> list[str]:
        return self.initial.dataplane.node_names()

    def destination_universe(self) -> dict[int, str]:
        """Owned address -> owner, unioned over *all* checkpoints.

        A link flap removes the link's /31 addresses from the down-state
        dataplane's ownership map; evaluating against any single
        checkpoint's map would silently drop exactly the destinations
        whose transient behaviour is under test. First sighting wins so
        the owner label is stable across the stream.
        """
        universe: dict[int, str] = {}
        for checkpoint in self.checkpoints:
            for address, owner in checkpoint.dataplane.address_owner.items():
                universe.setdefault(address, owner)
            for address, owner in checkpoint.dataplane.degraded_owned.items():
                universe.setdefault(address, owner)
        return universe

    # -- (de)serialization: replayable traces for `mfv temporal --replay` ----

    def to_dict(self) -> dict:
        """JSON-friendly trace: full AFT dump at checkpoint 0, touched
        devices only afterwards (mirroring the delta structure)."""
        out = []
        for checkpoint in self.checkpoints:
            out.append(
                {
                    "t": checkpoint.t,
                    "installs": checkpoint.installs,
                    "devices": {
                        name: snap.to_dict()
                        for name, snap in sorted(checkpoint.snapshots.items())
                    },
                }
            )
        return {"format": "mfv-temporal-stream/1", "checkpoints": out}

    @classmethod
    def from_dict(cls, data: dict) -> "CheckpointStream":
        stream = cls()
        previous: Optional[Dataplane] = None
        for index, raw in enumerate(data.get("checkpoints", [])):
            snapshots = {
                name: AftSnapshot.from_dict(payload)
                for name, payload in raw.get("devices", {}).items()
            }
            if previous is None:
                dataplane = Dataplane.from_afts(snapshots)
                delta = None
            else:
                dataplane = Dataplane.evolve(previous, snapshots)
                delta = DataplaneDelta(previous, dataplane)
            stream.checkpoints.append(
                Checkpoint(
                    index=index,
                    t=float(raw.get("t", 0.0)),
                    dataplane=dataplane,
                    delta=delta,
                    dirty_devices=tuple(sorted(snapshots)),
                    installs=int(raw.get("installs", 0)),
                    snapshots=snapshots,
                )
            )
            previous = dataplane
        if not stream.checkpoints:
            raise ValueError("temporal stream has no checkpoints")
        return stream

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path) -> "CheckpointStream":
        return cls.from_dict(json.loads(Path(path).read_text()))


class CheckpointRecorder:
    """Records a :class:`CheckpointStream` off a live deployment.

    Lifecycle: construct around a deployed :class:`KneDeployment`,
    :meth:`arm` before the churn you care about (captures the base
    state and registers FIB listeners), let the kernel run (converge,
    apply a fault, re-converge...), then :meth:`finalize` — which
    unhooks the listeners, flushes any pending capture, and returns the
    stream. The recorder is single-shot.
    """

    def __init__(
        self,
        deployment: "KneDeployment",
        *,
        coalesce: Optional[float] = None,
        max_checkpoints: Optional[int] = None,
    ) -> None:
        self.deployment = deployment
        self.kernel = deployment.kernel
        self.coalesce = (
            _coalesce_window() if coalesce is None else max(0.0, coalesce)
        )
        self.max_checkpoints = (
            _max_checkpoints()
            if max_checkpoints is None
            else max(2, max_checkpoints)
        )
        self.checkpoints: list[Checkpoint] = []
        #: Adjacent-checkpoint merges performed to respect the cap.
        self.compactions = 0
        self._armed = False
        self._finalized = False
        self._dataplane: Optional[Dataplane] = None
        self._dirty: set[str] = set()
        self._installs = 0
        self._pending = None  # the scheduled capture Event, if any
        self._handles: dict[str, object] = {}

    # -- lifecycle -----------------------------------------------------------

    def arm(self) -> None:
        if self._armed:
            raise RuntimeError("temporal recorder is already armed")
        if self._finalized:
            raise RuntimeError("temporal recorder is single-shot")
        self._armed = True
        snapshots = {
            name: AftSnapshot.from_router(router, now=self.kernel.now)
            for name, router in self.deployment.routers.items()
        }
        self._dataplane = Dataplane.from_afts(snapshots)
        self.checkpoints.append(
            Checkpoint(
                index=0,
                t=self.kernel.now,
                dataplane=self._dataplane,
                delta=None,
                snapshots=snapshots,
            )
        )
        for name, router in self.deployment.routers.items():
            handle = (
                lambda version, device=name: self._on_install(device, version)
            )
            router.on_fib_change(handle)
            self._handles[name] = handle

    def finalize(self) -> CheckpointStream:
        """Unhook, flush the trailing burst, and return the stream."""
        if not self._armed:
            raise RuntimeError("temporal recorder was never armed")
        if self._finalized:
            raise RuntimeError("temporal recorder is single-shot")
        self._finalized = True
        for name, handle in self._handles.items():
            router = self.deployment.routers.get(name)
            if router is not None:
                router.remove_fib_change(handle)
        self._handles.clear()
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._capture()
        collector = bus.ACTIVE
        if collector.enabled:
            collector.count(
                "temporal.checkpoints_recorded", len(self.checkpoints)
            )
        return CheckpointStream(checkpoints=list(self.checkpoints))

    # -- kernel-side machinery -----------------------------------------------

    def _on_install(self, device: str, version: int) -> None:
        del version
        self._dirty.add(device)
        self._installs += 1
        if self._pending is None:
            # A throttle, not a debounce: later installs do NOT push the
            # capture back, so sustained churn checkpoints every window.
            self._pending = self.kernel.schedule(
                self.coalesce,
                self._capture_pending,
                priority=_CAPTURE_PRIORITY,
                label="temporal-checkpoint",
            )

    def _capture_pending(self) -> None:
        self._pending = None
        self._capture()

    def _capture(self) -> None:
        if not self._dirty or self._dataplane is None:
            return
        dirty = sorted(self._dirty)
        self._dirty.clear()
        installs = self._installs
        self._installs = 0
        snapshots = {
            name: AftSnapshot.from_router(
                self.deployment.routers[name], now=self.kernel.now
            )
            for name in dirty
            if name in self.deployment.routers
        }
        evolved = Dataplane.evolve(self._dataplane, snapshots)
        delta = DataplaneDelta(self._dataplane, evolved)
        if delta.is_empty:
            # FIB version ticked but the forwarding content is
            # identical (e.g. a route replaced by an equal one); fold
            # the installs into the next real checkpoint instead.
            self._installs += installs
            return
        touched = delta.touched_devices or tuple(dirty)
        checkpoint = Checkpoint(
            index=len(self.checkpoints),
            t=self.kernel.now,
            dataplane=evolved,
            delta=delta,
            dirty_devices=touched,
            installs=installs,
            snapshots={
                name: snap
                for name, snap in snapshots.items()
                if name in touched
            },
        )
        self._dataplane = evolved
        self.checkpoints.append(checkpoint)
        collector = bus.ACTIVE
        if collector.enabled:
            collector.emit(
                "temporal.checkpoint",
                self.kernel.now,
                index=checkpoint.index,
                devices=len(checkpoint.dirty_devices),
                installs=installs,
            )
        self._enforce_cap()

    def _enforce_cap(self) -> None:
        while len(self.checkpoints) > self.max_checkpoints:
            # Merge the interior checkpoint whose removal loses the
            # least temporal resolution: j minimizing t[j+1] - t[j-1].
            best_j = min(
                range(1, len(self.checkpoints) - 1),
                key=lambda j: self.checkpoints[j + 1].t
                - self.checkpoints[j - 1].t,
            )
            removed = self.checkpoints.pop(best_j)
            successor = self.checkpoints[best_j]
            successor.delta = DataplaneDelta.compose(
                removed.delta, successor.delta
            )
            successor.dirty_devices = successor.delta.touched_devices
            successor.installs += removed.installs
            # Later dumps win; drop devices the merge reverted entirely.
            merged = {**removed.snapshots, **successor.snapshots}
            touched = set(successor.dirty_devices)
            successor.snapshots = {
                name: snap for name, snap in merged.items() if name in touched
            }
            for index, checkpoint in enumerate(self.checkpoints):
                checkpoint.index = index
            self.compactions += 1
