"""IPv4 access lists.

ACLs are the one dataplane feature that matches beyond the destination
address, which is why the verifier carries a full
:class:`~repro.net.headerspace.HeaderSpace` through its walks: an ACL
splits traffic into a permitted piece (which continues) and a denied
piece (which terminates with a deny disposition) — exactly, not by
sampling.

First-match semantics with an implicit deny, like every router since
the beginning of time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.addr import Prefix
from repro.net.headerspace import Field, HeaderSpace, Rect
from repro.net.intervals import IntervalSet

# Protocol keywords -> IP protocol numbers.
PROTOCOL_NUMBERS = {"icmp": 1, "tcp": 6, "udp": 17}


@dataclass(frozen=True)
class AclRule:
    """One numbered permit/deny rule."""

    seq: int
    permit: bool
    protocol: Optional[int] = None  # None = "ip" (any protocol)
    src: Optional[Prefix] = None  # None = any
    dst: Optional[Prefix] = None
    src_port: Optional[tuple[int, int]] = None  # inclusive range
    dst_port: Optional[tuple[int, int]] = None

    def match_space(self) -> HeaderSpace:
        """The set of packets this rule matches."""
        rect = Rect()
        if self.protocol is not None:
            rect = rect.with_field(Field.IP_PROTO, IntervalSet.of(self.protocol))
        if self.src is not None:
            rect = rect.with_field(
                Field.SRC_IP, IntervalSet.from_prefix(self.src)
            )
        if self.dst is not None:
            rect = rect.with_field(
                Field.DST_IP, IntervalSet.from_prefix(self.dst)
            )
        if self.src_port is not None:
            rect = rect.with_field(
                Field.SRC_PORT, IntervalSet.span(*self.src_port)
            )
        if self.dst_port is not None:
            rect = rect.with_field(
                Field.DST_PORT, IntervalSet.span(*self.dst_port)
            )
        return HeaderSpace((rect,))

    def describe(self) -> str:
        action = "permit" if self.permit else "deny"
        proto = {1: "icmp", 6: "tcp", 17: "udp"}.get(self.protocol, "ip")
        src = str(self.src) if self.src else "any"
        dst = str(self.dst) if self.dst else "any"
        text = f"{self.seq} {action} {proto} {src} {dst}"
        if self.dst_port:
            lo, hi = self.dst_port
            text += f" eq {lo}" if lo == hi else f" range {lo} {hi}"
        return text


@dataclass
class Acl:
    """A named, ordered access list."""

    name: str
    rules: list[AclRule] = field(default_factory=list)
    _permit_cache: Optional[HeaderSpace] = field(
        default=None, repr=False, compare=False
    )

    def add(self, rule: AclRule) -> None:
        self.rules.append(rule)
        self.rules.sort(key=lambda r: r.seq)
        self._permit_cache = None

    def permit_space(self) -> HeaderSpace:
        """The exact set of packets this ACL permits.

        First-match expansion: rule *i* applies only to traffic not
        matched by rules before it; everything unmatched hits the
        implicit deny.
        """
        if self._permit_cache is not None:
            return self._permit_cache
        permitted = HeaderSpace.empty()
        remaining = HeaderSpace.full()
        for rule in self.rules:
            matched = remaining & rule.match_space()
            if rule.permit:
                permitted = permitted | matched
            remaining = remaining - rule.match_space()
            if remaining.is_empty():
                break
        self._permit_cache = permitted
        return permitted

    def permits_packet(self, packet) -> bool:
        for rule in self.rules:
            if rule.match_space().contains_packet(packet):
                return rule.permit
        return False
