"""Interface configuration."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.net.addr import Prefix


@dataclass
class InterfaceConfig:
    """Configured state of one interface.

    ``switchport`` models the L2/L3 mode: a switchport has no IP
    configuration active. Vendor parsers decide how mode and address
    interact (this interaction is exactly the Fig. 3 model defect — see
    :mod:`repro.batfish_model.issues`).
    """

    name: str
    description: str = ""
    address: Optional[int] = None
    prefix_length: Optional[int] = None
    switchport: bool = False
    shutdown: bool = False
    isis: Optional["IsisInterfaceSettings"] = None
    mpls_enabled: bool = False
    speed_gbps: float = 10.0
    acl_in: Optional[str] = None
    acl_out: Optional[str] = None

    @property
    def has_address(self) -> bool:
        return self.address is not None and self.prefix_length is not None

    @property
    def is_routed(self) -> bool:
        """Does this interface participate in L3 forwarding?"""
        return self.has_address and not self.switchport and not self.shutdown

    def connected_prefix(self) -> Optional[Prefix]:
        """The subnet this interface attaches to, if routed."""
        if not self.is_routed:
            return None
        assert self.address is not None and self.prefix_length is not None
        return Prefix.containing(self.address, self.prefix_length)

    @property
    def is_loopback(self) -> bool:
        """Loopback-style interfaces across vendor naming conventions:
        ``LoopbackN`` (EOS), ``loN``/``systemN`` (SR Linux)."""
        lowered = self.name.lower()
        if lowered.startswith(("loopback", "system")):
            return True
        return bool(re.match(r"^lo\d", lowered))


@dataclass
class IsisInterfaceSettings:
    """Per-interface IS-IS knobs."""

    tag: str = "default"
    enabled: bool = True
    passive: bool = False
    metric: int = 10
