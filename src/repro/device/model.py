"""Top-level device configuration model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.device.acl import Acl
from repro.device.interfaces import InterfaceConfig, IsisInterfaceSettings
from repro.device.routing_policy import PrefixList, RouteMap
from repro.net.addr import Prefix

# Re-exported under the historical name used elsewhere in the package.
IsisInterfaceConfig = IsisInterfaceSettings


@dataclass
class IsisConfig:
    """``router isis <tag>`` process configuration."""

    tag: str = "default"
    net: str = ""
    ipv4_unicast: bool = True
    passive_default: bool = False
    spf_delay: float = 0.2

    @property
    def system_id(self) -> str:
        """The 6-byte system-id portion of the configured NET.

        A NET like ``49.0001.1010.1040.1030.00`` decomposes as
        area (``49.0001``) . system-id (``1010.1040.1030``) . selector.
        """
        parts = self.net.split(".")
        if len(parts) < 4:
            return ""
        return ".".join(parts[-4:-1])

    @property
    def area(self) -> str:
        parts = self.net.split(".")
        if len(parts) < 4:
            return ""
        return ".".join(parts[: len(parts) - 4])


@dataclass
class BgpNeighborConfig:
    """One ``neighbor <ip> ...`` block."""

    peer_address: int
    remote_as: int
    description: str = ""
    update_source: Optional[str] = None
    next_hop_self: bool = False
    send_community: bool = False
    route_map_in: Optional[str] = None
    route_map_out: Optional[str] = None
    ebgp_multihop: int = 0
    shutdown: bool = False
    route_reflector_client: bool = False


@dataclass
class BgpConfig:
    """``router bgp <asn>`` process configuration."""

    asn: int
    router_id: Optional[int] = None
    neighbors: dict[int, BgpNeighborConfig] = field(default_factory=dict)
    networks: list[Prefix] = field(default_factory=list)
    redistribute_connected: bool = False
    redistribute_isis: bool = False
    maximum_paths: int = 1


@dataclass
class MplsTunnelConfig:
    """An RSVP-TE tunnel definition (head-end view)."""

    name: str
    destination: int
    setup_priority: int = 7
    bandwidth_mbps: float = 0.0


@dataclass
class MplsConfig:
    """MPLS / traffic-engineering configuration."""

    enabled: bool = False
    traffic_eng: bool = False
    rsvp_refresh_interval: Optional[float] = None
    tunnels: list[MplsTunnelConfig] = field(default_factory=list)


@dataclass
class StaticRouteConfig:
    """One ``ip route`` statement."""
    prefix: Prefix
    next_hop: Optional[int] = None
    interface: Optional[str] = None
    distance: int = 1
    discard: bool = False


@dataclass
class DeviceConfig:
    """Everything a vendor parser extracts from a configuration file.

    ``management_services`` and ``daemons`` capture lines that have no
    dataplane effect (gRPC/gNMI servers, SSL profiles, PowerManager and
    friends); the emulation accepts them — unlike the model-based
    baseline, which reports them as unrecognized.
    """

    hostname: str = ""
    interfaces: dict[str, InterfaceConfig] = field(default_factory=dict)
    isis: Optional[IsisConfig] = None
    bgp: Optional[BgpConfig] = None
    mpls: MplsConfig = field(default_factory=MplsConfig)
    static_routes: list[StaticRouteConfig] = field(default_factory=list)
    route_maps: dict[str, RouteMap] = field(default_factory=dict)
    prefix_lists: dict[str, PrefixList] = field(default_factory=dict)
    acls: dict[str, "Acl"] = field(default_factory=dict)
    management_services: list[str] = field(default_factory=list)
    daemons: list[str] = field(default_factory=list)
    ip_routing: bool = True

    def interface(self, name: str) -> InterfaceConfig:
        """Get-or-create the configuration object for ``name``."""
        if name not in self.interfaces:
            self.interfaces[name] = InterfaceConfig(name=name)
        return self.interfaces[name]

    def routed_interfaces(self) -> list[InterfaceConfig]:
        return [i for i in self.interfaces.values() if i.is_routed]

    def local_addresses(self) -> list[int]:
        """All addresses owned by this device."""
        return [
            i.address
            for i in self.interfaces.values()
            if i.is_routed and i.address is not None
        ]

    def loopback_address(self) -> Optional[int]:
        for iface in self.interfaces.values():
            if iface.is_loopback and iface.is_routed:
                return iface.address
        return None
