"""Vendor-neutral device configuration model.

Vendor config parsers (:mod:`repro.vendors`) translate native
configuration text into these structures; the protocol engines
(:mod:`repro.protocols`) consume them. This is the emulator's analogue of
a router's internal configuration database — *not* a verification model:
it holds what the operator configured, with vendor semantics applied by
the vendor OS.
"""

from repro.device.acl import Acl, AclRule
from repro.device.interfaces import InterfaceConfig, IsisInterfaceSettings
from repro.device.model import (
    BgpConfig,
    BgpNeighborConfig,
    DeviceConfig,
    IsisConfig,
    IsisInterfaceConfig,
    MplsConfig,
    MplsTunnelConfig,
    StaticRouteConfig,
)
from repro.device.routing_policy import (
    Community,
    MatchResult,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)

__all__ = [
    "Acl",
    "AclRule",
    "BgpConfig",
    "BgpNeighborConfig",
    "Community",
    "DeviceConfig",
    "InterfaceConfig",
    "IsisConfig",
    "IsisInterfaceConfig",
    "IsisInterfaceSettings",
    "MatchResult",
    "MplsConfig",
    "MplsTunnelConfig",
    "PrefixList",
    "PrefixListEntry",
    "RouteMap",
    "RouteMapClause",
    "StaticRouteConfig",
]
