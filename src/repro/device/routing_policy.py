"""Routing policy: prefix lists, communities, route maps.

These are evaluated by the BGP engine on import/export, with the same
first-match semantics real routers use: clauses are tried in sequence
number order; a matching permit clause applies its ``set`` actions; a
matching deny clause rejects the route; a route matching no clause is
denied (implicit deny).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.net.addr import Prefix

if TYPE_CHECKING:
    from repro.protocols.bgp_attrs import PathAttributes


@dataclass(frozen=True, order=True)
class Community:
    """A standard BGP community (asn:value)."""

    asn: int
    value: int

    @classmethod
    def parse(cls, text: str) -> "Community":
        asn_text, _, value_text = text.partition(":")
        try:
            return cls(int(asn_text), int(value_text))
        except ValueError as exc:
            raise ValueError(f"malformed community: {text!r}") from exc

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"


@dataclass(frozen=True)
class PrefixListEntry:
    """One ``seq N permit/deny prefix [ge X] [le Y]`` entry."""

    seq: int
    permit: bool
    prefix: Prefix
    ge: Optional[int] = None
    le: Optional[int] = None

    def matches(self, candidate: Prefix) -> bool:
        if not self.prefix.contains_prefix(candidate):
            return False
        lo = self.ge if self.ge is not None else self.prefix.length
        hi = self.le if self.le is not None else (
            32 if self.ge is not None else self.prefix.length
        )
        return lo <= candidate.length <= hi


@dataclass
class PrefixList:
    """An ordered prefix list with first-match semantics."""

    name: str
    entries: list[PrefixListEntry] = field(default_factory=list)

    def add(self, entry: PrefixListEntry) -> None:
        self.entries.append(entry)
        self.entries.sort(key=lambda e: e.seq)

    def permits(self, candidate: Prefix) -> bool:
        for entry in self.entries:
            if entry.matches(candidate):
                return entry.permit
        return False


class MatchResult(enum.Enum):
    """Outcome of evaluating a route map against a route."""
    PERMIT = "permit"
    DENY = "deny"
    NO_MATCH = "no-match"


@dataclass
class RouteMapClause:
    """One numbered permit/deny clause of a route map."""

    seq: int
    permit: bool
    match_prefix_list: Optional[str] = None
    match_community: Optional[Community] = None
    match_as_path_contains: Optional[int] = None
    set_local_pref: Optional[int] = None
    set_med: Optional[int] = None
    set_communities: tuple[Community, ...] = ()
    set_as_path_prepend: tuple[int, ...] = ()
    set_next_hop: Optional[int] = None

    def matches(
        self,
        prefix: Prefix,
        attrs: "PathAttributes",
        prefix_lists: dict[str, PrefixList],
    ) -> bool:
        if self.match_prefix_list is not None:
            plist = prefix_lists.get(self.match_prefix_list)
            if plist is None or not plist.permits(prefix):
                return False
        if self.match_community is not None:
            if self.match_community not in attrs.communities:
                return False
        if self.match_as_path_contains is not None:
            if self.match_as_path_contains not in attrs.as_path:
                return False
        return True

    def apply(self, attrs: "PathAttributes") -> "PathAttributes":
        updated = attrs
        if self.set_local_pref is not None:
            updated = replace(updated, local_pref=self.set_local_pref)
        if self.set_med is not None:
            updated = replace(updated, med=self.set_med)
        if self.set_communities:
            merged = tuple(
                sorted(set(updated.communities) | set(self.set_communities))
            )
            updated = replace(updated, communities=merged)
        if self.set_as_path_prepend:
            updated = replace(
                updated, as_path=self.set_as_path_prepend + updated.as_path
            )
        if self.set_next_hop is not None:
            updated = replace(updated, next_hop=self.set_next_hop)
        return updated


@dataclass
class RouteMap:
    """A named, ordered collection of clauses."""

    name: str
    clauses: list[RouteMapClause] = field(default_factory=list)

    def add(self, clause: RouteMapClause) -> None:
        self.clauses.append(clause)
        self.clauses.sort(key=lambda c: c.seq)

    def evaluate(
        self,
        prefix: Prefix,
        attrs: "PathAttributes",
        prefix_lists: dict[str, PrefixList],
    ) -> tuple[MatchResult, "PathAttributes"]:
        """Run the route map; returns (verdict, possibly-updated attrs)."""
        for clause in self.clauses:
            if clause.matches(prefix, attrs, prefix_lists):
                if not clause.permit:
                    return MatchResult.DENY, attrs
                return MatchResult.PERMIT, clause.apply(attrs)
        return MatchResult.NO_MATCH, attrs
