"""Snapshot-level differential comparison."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.snapshot import Snapshot
from repro.net.headerspace import HeaderSpace
from repro.verify.differential import DifferentialRow, differential_reachability


def compare_snapshots(
    reference: Snapshot,
    snapshot: Snapshot,
    *,
    ingress_nodes: Optional[Iterable[str]] = None,
    dst_space: Optional[HeaderSpace] = None,
) -> list[DifferentialRow]:
    """Differential reachability between two snapshots.

    Works across backends: comparing an emulation snapshot against a
    model snapshot of the same configurations is the paper's E3
    methodology for finding model defects.
    """
    return differential_reachability(
        reference.dataplane,
        snapshot.dataplane,
        ingress_nodes=ingress_nodes,
        dst_space=dst_space,
    )
