"""Nondeterminism exploration: many seeds, one verdict.

The paper's §6 notes that one emulation run yields one converged state,
while ordering/timing can admit several. The mitigation it proposes —
run the emulation multiple times (in parallel) and compare the resulting
dataplanes — is implemented here: N seeded runs, pairwise differential
reachability, and a report of which behaviour is seed-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.context import ScenarioContext
from repro.core.pipeline import ModelFreeBackend
from repro.core.snapshot import Snapshot
from repro.dataplane.forwarding import dst_atoms
from repro.verify.differential import DifferentialRow, differential_reachability


@dataclass
class MultiRunResult:
    """Snapshots from every seed plus all pairwise differences."""
    snapshots: list[Snapshot]
    # (seed_a, seed_b) -> differing rows
    divergences: dict[tuple[int, int], list[DifferentialRow]] = field(
        default_factory=dict
    )

    @property
    def deterministic(self) -> bool:
        return not any(self.divergences.values())

    @property
    def divergent_pairs(self) -> list[tuple[int, int]]:
        return [pair for pair, rows in self.divergences.items() if rows]

    def summary(self) -> str:
        if self.deterministic:
            return (
                f"{len(self.snapshots)} runs converged to equivalent "
                "dataplanes"
            )
        pairs = ", ".join(f"{a}vs{b}" for a, b in self.divergent_pairs)
        return (
            f"{len(self.snapshots)} runs; behaviour differs between "
            f"seed pairs: {pairs}"
        )


def explore_nondeterminism(
    backend: ModelFreeBackend,
    context: Optional[ScenarioContext] = None,
    *,
    seeds: Sequence[int] = (0, 1, 2),
) -> MultiRunResult:
    """Run the emulation once per seed and diff all pairs.

    Each run replays the full deployment with different message timing
    (jitter), exposing ordering-dependent tiebreaks; agreement across
    seeds raises confidence that the converged state is unique.
    """
    if context is None:
        context = ScenarioContext()
    snapshots = [
        backend.run(context, seed=seed, snapshot_name=f"seed-{seed}")
        for seed in seeds
    ]
    result = MultiRunResult(snapshots=snapshots)
    # One atom partition refined across every seed: it refines each
    # pair's union partition, so the content-cached atom-graph engine
    # for each snapshot is built once and reused by all N(N-1)/2 diffs
    # (N engine builds instead of N² — asserted by the
    # verify.engine_builds obs counter in tests).
    shared_atoms = dst_atoms(*(s.dataplane for s in snapshots))
    for i, first in enumerate(snapshots):
        for second in snapshots[i + 1 :]:
            rows = differential_reachability(
                first.dataplane, second.dataplane, atoms=shared_atoms
            )
            result.divergences[(first.seed, second.seed)] = rows
    return result
