"""Nondeterminism exploration: many seeds, one verdict.

The paper's §6 notes that one emulation run yields one converged state,
while ordering/timing can admit several. The mitigation it proposes —
run the emulation multiple times (in parallel) and compare the resulting
dataplanes — now lives in :mod:`repro.ensemble`; this module is kept as
a thin deprecated wrapper that preserves the pairwise-diff report shape.
Snapshot pairs with identical ``fib_fingerprint`` short-circuit the
differential entirely (trivially equivalent, counted as
``multirun.fingerprint_skips``); only pairs of *distinct* converged
states pay a diff.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.context import ScenarioContext
from repro.core.pipeline import ModelFreeBackend
from repro.core.snapshot import Snapshot
from repro.dataplane.forwarding import dst_atoms
from repro.obs import bus
from repro.verify.differential import DifferentialRow, differential_reachability


@dataclass
class MultiRunResult:
    """Snapshots from every seed plus all pairwise differences."""
    snapshots: list[Snapshot]
    # (seed_a, seed_b) -> differing rows
    divergences: dict[tuple[int, int], list[DifferentialRow]] = field(
        default_factory=dict
    )

    @property
    def deterministic(self) -> bool:
        return not any(self.divergences.values())

    @property
    def divergent_pairs(self) -> list[tuple[int, int]]:
        return [pair for pair, rows in self.divergences.items() if rows]

    def summary(self) -> str:
        if self.deterministic:
            return (
                f"{len(self.snapshots)} runs converged to equivalent "
                "dataplanes"
            )
        pairs = ", ".join(f"{a}vs{b}" for a, b in self.divergent_pairs)
        return (
            f"{len(self.snapshots)} runs; behaviour differs between "
            f"seed pairs: {pairs}"
        )


def explore_nondeterminism(
    backend: ModelFreeBackend,
    context: Optional[ScenarioContext] = None,
    *,
    seeds: Sequence[int] = (0, 1, 2),
) -> MultiRunResult:
    """Run the emulation once per seed and diff all pairs.

    .. deprecated::
        Use :class:`repro.ensemble.EnsembleRunner`, which dedups
        outcomes by fingerprint and folds invariants into
        holds-always / holds-sometimes / never verdicts. This wrapper
        runs the same seed sweep through the ensemble runner and
        re-derives the pairwise divergence report from its records.
    """
    warnings.warn(
        "explore_nondeterminism is deprecated; use "
        "repro.ensemble.EnsembleRunner",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.ensemble import EnsembleRunner

    if context is None:
        context = ScenarioContext()
    runner = EnsembleRunner(
        backend.topology,
        context=context,
        seeds=seeds,
        invariants=(),
        cluster=backend.cluster,
        timers=backend.timers,
        quiet_period=backend.quiet_period,
        convergence_max_time=backend.convergence_max_time,
        store=backend.store,
    )
    runner.run(workers=1)
    records = runner.last_records
    snapshots = [record.snapshot for record in records]
    result = MultiRunResult(snapshots=snapshots)
    collector = bus.ACTIVE
    # One atom partition refined across the *distinct* dataplanes only:
    # identical-fingerprint pairs are trivially equivalent and skip the
    # differential entirely, so a fully deterministic sweep pays zero
    # engine builds here (asserted via verify.engine_builds in tests).
    distinct = {record.fingerprint: record.snapshot for record in records}
    shared_atoms = (
        dst_atoms(*(s.dataplane for s in distinct.values()))
        if len(distinct) > 1
        else None
    )
    for i, first in enumerate(records):
        for second in records[i + 1 :]:
            if first.fingerprint == second.fingerprint:
                rows: list[DifferentialRow] = []
                if collector.enabled:
                    collector.count("multirun.fingerprint_skips")
            else:
                rows = differential_reachability(
                    first.snapshot.dataplane,
                    second.snapshot.dataplane,
                    atoms=shared_atoms,
                )
            result.divergences[(first.seed, second.seed)] = rows
    return result
