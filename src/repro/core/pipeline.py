"""The two verification backends.

:class:`ModelFreeBackend` is the paper's system: emulate, converge,
extract, verify. :class:`NativeBatfishBackend` is the traditional
model-based flow over the *same inputs*, so every experiment can compare
them on equal terms.

Both backends run their stages inside observability phase spans
(:mod:`repro.obs`) and attach the per-phase breakdown to
``Snapshot.metadata["phases"]`` — simulated seconds for stages that
advance the kernel clock, wall seconds for the ones (extraction, the
model computation) that do real work while simulated time stands still.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from repro.batfish_model.ibdp import ModelRun, run_model
from repro.batfish_model.issues import DEFAULT_ASSUMPTIONS, ModelAssumptions
from repro.core.context import ScenarioContext
from repro.core.snapshot import PartialSnapshot, Snapshot
from repro.corpus.routes import RouteInjector
from repro.gnmi.server import extract_afts
from repro.kube.cluster import KubeCluster
from repro.kube.kne import KneDeployment
from repro.obs import bus
from repro.protocols.timers import TimerProfile, PRODUCTION_TIMERS
from repro.sim.kernel import SimKernel
from repro.topo.model import Topology

if TYPE_CHECKING:
    from repro.service.store import SnapshotStore

logger = logging.getLogger(__name__)

# The model backend has no simulated clock: its computation is a single
# synchronous fixed point, conceptually evaluated at the epoch rather
# than over a timeline. Every obs record it emits is therefore stamped
# with this constant — the ``backend="model"`` detail on the record is
# what tells a timeline reader the timestamp is a placeholder, not a
# claim that the event happened at boot.
MODEL_EPOCH = 0.0


@dataclass
class EmulationRun:
    """A live emulation behind a snapshot (kept for operator access)."""

    deployment: KneDeployment
    injectors: list[RouteInjector] = field(default_factory=list)


@contextmanager
def phase(
    name: str,
    kernel: Optional[SimKernel],
    phases: dict[str, dict[str, float]],
) -> Iterator[None]:
    """Measure one pipeline phase in simulated and wall seconds.

    Durations always land in ``phases`` (they are cheap — two clock
    reads); a span is additionally recorded when a collector is
    installed, so traced runs see the same numbers with full nesting.
    ``kernel`` may be None for stages with no simulated clock (the model
    backend, offline verification).
    """
    collector = bus.ACTIVE
    sim_start = kernel.now if kernel is not None else 0.0
    span = (
        collector.begin(name, sim_start, category="phase")
        if collector.enabled
        else None
    )
    wall_start = time.perf_counter()
    try:
        yield
    finally:
        sim_end = kernel.now if kernel is not None else 0.0
        wall_seconds = time.perf_counter() - wall_start
        sim_seconds = sim_end - sim_start
        phases[name] = {
            "sim_seconds": sim_seconds,
            "wall_seconds": wall_seconds,
        }
        if span is not None:
            collector.end(span, sim_end)
        registry = bus.metrics_registry()
        if registry.enabled:
            registry.histogram(
                "pipeline.phase_wall_seconds",
                "Wall seconds spent per pipeline phase",
                ("phase",),
            ).observe(wall_seconds, phase=name)
            registry.histogram(
                "pipeline.phase_sim_seconds",
                "Simulated seconds advanced per pipeline phase",
                ("phase",),
                unit="sim",
            ).observe(sim_seconds, phase=name)


class ModelFreeBackend:
    """Configuration + context -> converged, extracted dataplane.

    The returned :class:`Snapshot` is pure data; the live deployment
    stays accessible via :attr:`last_run` for the operator-tooling flow
    (SSH into routers, poke at protocol state).
    """

    def __init__(
        self,
        topology: Topology,
        *,
        cluster: Optional[KubeCluster] = None,
        timers: TimerProfile = PRODUCTION_TIMERS,
        quiet_period: float = 30.0,
        convergence_max_time: float = 86_400.0,
        store: Optional["SnapshotStore"] = None,
    ) -> None:
        self.topology = topology
        self.cluster = cluster
        self.timers = timers
        self.quiet_period = quiet_period
        self.convergence_max_time = convergence_max_time
        # With a store, every converged snapshot this backend produces
        # registers on completion, so the verification service can
        # answer questions about it without a rebuild.
        self.store = store
        self.last_run: Optional[EmulationRun] = None
        #: (CheckpointStream, TemporalReport) of the most recent
        #: ``temporal=`` run; None otherwise.
        self.last_temporal = None

    def run(
        self,
        context: Optional[ScenarioContext] = None,
        *,
        seed: int = 0,
        snapshot_name: Optional[str] = None,
        verify: bool = False,
        chaos=None,
        temporal=None,
    ) -> Snapshot:
        """Execute the full upper stage once and extract AFTs.

        With ``verify=True`` the standard invariant battery (loops,
        blackholes, all-pairs reachability) runs inside a ``verify``
        phase span, so ``metadata["phases"]`` and ``mfv obs timeline``
        report query-engine time alongside deploy/converge/extract;
        the counts land in ``metadata["verification"]``.

        ``chaos`` accepts a :class:`~repro.chaos.plan.FaultPlan`: the
        substrate runs under that fault schedule, extraction degrades
        gracefully (a node unextractable past the retry budget lands in
        the returned :class:`PartialSnapshot`'s ``degraded_nodes``
        manifest instead of failing the run), and every fault/retry/
        degradation is visible on the obs timeline.

        ``temporal`` opts into transient-state verification: ``True``
        checks the default invariants (transient loops, blackhole
        windows), or pass a sequence of
        :class:`~repro.temporal.invariants.TemporalInvariant`. A
        checkpoint recorder arms right after deploy — route injection,
        link cuts, and chaos faults all churn on the record — and the
        resulting violation intervals land in ``metadata["temporal"]``
        (full stream + report on :attr:`last_temporal`).
        """
        if context is None:
            context = ScenarioContext()
        phases: dict[str, dict[str, float]] = {}
        deployment = KneDeployment(
            self.topology,
            cluster=self.cluster or KubeCluster(),
            timers=self.timers,
            seed=seed,
        )
        chaos_injector = None
        if chaos is not None and not chaos.is_empty:
            from repro.chaos.injector import ChaosInjector

            chaos_injector = ChaosInjector(deployment, chaos).arm()
        kernel = deployment.kernel
        with phase("deploy", kernel, phases):
            deployment.deploy()
        recorder = None
        if temporal is not None and temporal is not False:
            from repro.temporal import CheckpointRecorder

            recorder = CheckpointRecorder(deployment)
            recorder.arm()
        with phase("inject", kernel, phases):
            injectors = [
                RouteInjector(spec, deployment.kernel, deployment.fabric,
                              timers=self.timers)
                for spec in context.injectors
            ]
            for injector in injectors:
                injector.start()
            for a_node, z_node in context.down_links:
                deployment.link_down(a_node, z_node)
        with phase("converge", kernel, phases):
            deployment.wait_converged(
                quiet_period=self.quiet_period,
                max_time=self.convergence_max_time,
            )
            if (
                chaos_injector is not None
                and kernel.now < chaos_injector.schedule_horizon
            ):
                # The network quiesced before the plan finished: a
                # chaos run is not converged until every scheduled
                # fault has fired and the network has re-quiesced
                # around the damage.
                kernel.run(until=chaos_injector.schedule_horizon)
                deployment.wait_converged(
                    quiet_period=self.quiet_period,
                    max_time=self.convergence_max_time,
                )
        temporal_report = None
        if recorder is not None:
            from repro.temporal import evaluate_stream

            with phase("temporal", kernel, phases):
                stream = recorder.finalize()
                invariants = None if temporal is True else list(temporal)
                temporal_report = evaluate_stream(stream, invariants)
                self.last_temporal = (stream, temporal_report)
        with phase("extract", kernel, phases):
            extraction = extract_afts(deployment)
        self.last_run = EmulationRun(deployment=deployment, injectors=injectors)
        metadata = {
            "context": context.name,
            "devices": len(self.topology),
            "kube_nodes_used": deployment.report.nodes_used,
            "injected_routes": sum(i.routes_sent for i in injectors),
            "phases": phases,
        }
        if extraction.retries:
            metadata["extraction_retries"] = dict(extraction.retries)
        if temporal_report is not None:
            metadata["temporal"] = temporal_report.to_dict()
        if chaos_injector is not None:
            metadata["chaos"] = {
                "plan": chaos.name,
                "plan_seed": chaos.seed,
                "faults": len(chaos),
                "log": [list(entry) for entry in chaos_injector.log],
            }
        snapshot_cls = Snapshot
        if extraction.degraded:
            # Graceful degradation: the run completes as a partial
            # snapshot with an explicit manifest; answers about the
            # degraded nodes become UNKNOWN_DEGRADED downstream.
            snapshot_cls = PartialSnapshot
            metadata["degraded_addresses"] = dict(
                extraction.degraded_addresses
            )
            collector = bus.ACTIVE
            if collector.enabled:
                for node, reason in extraction.degraded.items():
                    collector.count("pipeline.degraded")
                    collector.emit(
                        "pipeline.degraded",
                        kernel.now,
                        node=node,
                        reason=reason,
                    )
            logger.warning(
                "extraction degraded for %d node(s): %s",
                len(extraction.degraded),
                ", ".join(sorted(extraction.degraded)),
            )
        snapshot = snapshot_cls(
            name=snapshot_name or f"{self.topology.name}:{context.name}",
            afts=extraction.afts,
            backend="emulation",
            seed=seed,
            startup_seconds=deployment.report.startup_seconds,
            convergence_seconds=deployment.report.convergence_seconds,
            metadata=metadata,
            degraded_nodes=dict(extraction.degraded),
        )
        if verify:
            _run_verify_phase(snapshot, kernel, phases)
        if self.store is not None:
            self.store.register(snapshot)
        return snapshot


class NativeBatfishBackend:
    """The traditional model-based flow over the same inputs."""

    def __init__(
        self,
        topology: Topology,
        *,
        assumptions: ModelAssumptions = DEFAULT_ASSUMPTIONS,
        store: Optional["SnapshotStore"] = None,
    ) -> None:
        self.topology = topology
        self.assumptions = assumptions
        self.store = store
        self.last_model_run: Optional[ModelRun] = None

    def run(
        self,
        context: Optional[ScenarioContext] = None,
        *,
        snapshot_name: Optional[str] = None,
        verify: bool = False,
    ) -> Snapshot:
        if context is None:
            context = ScenarioContext()
        if context.injectors:
            raise NotImplementedError(
                "the model baseline does not support live route injection"
            )
        configs = {spec.name: spec.config for spec in self.topology.nodes}
        non_arista = [
            spec.name for spec in self.topology.nodes if spec.vendor != "arista"
        ]
        if non_arista:
            raise NotImplementedError(
                "the reference model only ships an Arista parser; "
                f"cannot model: {', '.join(non_arista)}"
            )
        phases: dict[str, dict[str, float]] = {}
        with phase("model", None, phases):
            model_run = run_model(configs, self.assumptions)
        self.last_model_run = model_run
        snapshots = model_run.snapshots
        if context.down_links:
            snapshots = _apply_link_cuts(self.topology, snapshots, context)
        snapshot = Snapshot(
            name=snapshot_name or f"{self.topology.name}:{context.name}:model",
            afts=snapshots,
            backend="model",
            metadata={
                "context": context.name,
                "unrecognized_lines": model_run.unrecognized_by_device(),
                "phases": phases,
            },
        )
        if verify:
            _run_verify_phase(snapshot, None, phases)
        if self.store is not None:
            self.store.register(snapshot)
        return snapshot


def _run_verify_phase(
    snapshot: Snapshot,
    kernel: Optional[SimKernel],
    phases: dict[str, dict[str, float]],
) -> None:
    """The shared verification stage: invariant battery in a phase span.

    Simulated time stands still here (like extraction), so the span's
    interesting number is its wall duration — the query-engine cost the
    atom-graph engine is built to shrink.
    """
    from repro.verify.invariants import verification_summary

    with phase("verify", kernel, phases):
        snapshot.metadata["verification"] = verification_summary(
            snapshot.dataplane
        )


def _apply_link_cuts(topology, snapshots, context: ScenarioContext):
    """The model's crude link-cut handling: disable the interfaces.

    Note this (unlike emulation) does not re-run the protocols — a
    deliberate simplification matching how operators often misuse
    model link-cut toggles; the model recomputation path is exercised by
    re-running :func:`run_model` on modified configs instead.
    """
    import copy

    out = copy.deepcopy(snapshots)
    for a_node, z_node in context.down_links:
        link = topology.find_link(a_node, z_node)
        if link is None:
            logger.warning(
                "context %r cuts a nonexistent link %s-%s; ignoring",
                context.name, a_node, z_node,
            )
            collector = bus.ACTIVE
            if collector.enabled:
                collector.emit(
                    "pipeline.warning",
                    MODEL_EPOCH,
                    reason="unknown-link",
                    backend="model",
                    a_node=a_node,
                    z_node=z_node,
                    context=context.name,
                )
            continue
        for end in link.endpoints():
            snapshot = out.get(end.node)
            if snapshot is None:
                continue
            snapshot.interfaces = [
                iface
                if iface.name != end.interface
                else type(iface)(
                    name=iface.name,
                    ipv4_address=iface.ipv4_address,
                    prefix_length=iface.prefix_length,
                    enabled=False,
                )
                for iface in snapshot.interfaces
            ]
    return out
