"""The two verification backends.

:class:`ModelFreeBackend` is the paper's system: emulate, converge,
extract, verify. :class:`NativeBatfishBackend` is the traditional
model-based flow over the *same inputs*, so every experiment can compare
them on equal terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.batfish_model.ibdp import ModelRun, run_model
from repro.batfish_model.issues import DEFAULT_ASSUMPTIONS, ModelAssumptions
from repro.core.context import ScenarioContext
from repro.core.snapshot import Snapshot
from repro.corpus.routes import RouteInjector
from repro.gnmi.server import dump_afts
from repro.kube.cluster import KubeCluster
from repro.kube.kne import KneDeployment
from repro.protocols.timers import TimerProfile, PRODUCTION_TIMERS
from repro.topo.model import Topology


@dataclass
class EmulationRun:
    """A live emulation behind a snapshot (kept for operator access)."""

    deployment: KneDeployment
    injectors: list[RouteInjector] = field(default_factory=list)


class ModelFreeBackend:
    """Configuration + context -> converged, extracted dataplane.

    The returned :class:`Snapshot` is pure data; the live deployment
    stays accessible via :attr:`last_run` for the operator-tooling flow
    (SSH into routers, poke at protocol state).
    """

    def __init__(
        self,
        topology: Topology,
        *,
        cluster: Optional[KubeCluster] = None,
        timers: TimerProfile = PRODUCTION_TIMERS,
        quiet_period: float = 30.0,
        convergence_max_time: float = 86_400.0,
    ) -> None:
        self.topology = topology
        self.cluster = cluster
        self.timers = timers
        self.quiet_period = quiet_period
        self.convergence_max_time = convergence_max_time
        self.last_run: Optional[EmulationRun] = None

    def run(
        self,
        context: ScenarioContext = ScenarioContext(),
        *,
        seed: int = 0,
        snapshot_name: Optional[str] = None,
    ) -> Snapshot:
        """Execute the full upper stage once and extract AFTs."""
        deployment = KneDeployment(
            self.topology,
            cluster=self.cluster or KubeCluster(),
            timers=self.timers,
            seed=seed,
        )
        deployment.deploy()
        injectors = [
            RouteInjector(spec, deployment.kernel, deployment.fabric,
                          timers=self.timers)
            for spec in context.injectors
        ]
        for injector in injectors:
            injector.start()
        for a_node, z_node in context.down_links:
            deployment.link_down(a_node, z_node)
        deployment.wait_converged(
            quiet_period=self.quiet_period,
            max_time=self.convergence_max_time,
        )
        afts = dump_afts(deployment)
        self.last_run = EmulationRun(deployment=deployment, injectors=injectors)
        return Snapshot(
            name=snapshot_name or f"{self.topology.name}:{context.name}",
            afts=afts,
            backend="emulation",
            seed=seed,
            startup_seconds=deployment.report.startup_seconds,
            convergence_seconds=deployment.report.convergence_seconds,
            metadata={
                "context": context.name,
                "devices": len(self.topology),
                "kube_nodes_used": deployment.report.nodes_used,
                "injected_routes": sum(i.routes_sent for i in injectors),
            },
        )


class NativeBatfishBackend:
    """The traditional model-based flow over the same inputs."""

    def __init__(
        self,
        topology: Topology,
        *,
        assumptions: ModelAssumptions = DEFAULT_ASSUMPTIONS,
    ) -> None:
        self.topology = topology
        self.assumptions = assumptions
        self.last_model_run: Optional[ModelRun] = None

    def run(
        self,
        context: ScenarioContext = ScenarioContext(),
        *,
        snapshot_name: Optional[str] = None,
    ) -> Snapshot:
        if context.injectors:
            raise NotImplementedError(
                "the model baseline does not support live route injection"
            )
        configs = {spec.name: spec.config for spec in self.topology.nodes}
        non_arista = [
            spec.name for spec in self.topology.nodes if spec.vendor != "arista"
        ]
        if non_arista:
            raise NotImplementedError(
                "the reference model only ships an Arista parser; "
                f"cannot model: {', '.join(non_arista)}"
            )
        model_run = run_model(configs, self.assumptions)
        self.last_model_run = model_run
        snapshots = model_run.snapshots
        if context.down_links:
            snapshots = _apply_link_cuts(self.topology, snapshots, context)
        return Snapshot(
            name=snapshot_name or f"{self.topology.name}:{context.name}:model",
            afts=snapshots,
            backend="model",
            metadata={
                "context": context.name,
                "unrecognized_lines": model_run.unrecognized_by_device(),
            },
        )


def _apply_link_cuts(topology, snapshots, context: ScenarioContext):
    """The model's crude link-cut handling: disable the interfaces.

    Note this (unlike emulation) does not re-run the protocols — a
    deliberate simplification matching how operators often misuse
    model link-cut toggles; the model recomputation path is exercised by
    re-running :func:`run_model` on modified configs instead.
    """
    import copy

    out = copy.deepcopy(snapshots)
    for a_node, z_node in context.down_links:
        link = topology.find_link(a_node, z_node)
        if link is None:
            continue
        for end in link.endpoints():
            snapshot = out.get(end.node)
            if snapshot is None:
                continue
            snapshot.interfaces = [
                iface
                if iface.name != end.interface
                else type(iface)(
                    name=iface.name,
                    ipv4_address=iface.ipv4_address,
                    prefix_length=iface.prefix_length,
                    enabled=False,
                )
                for iface in snapshot.interfaces
            ]
    return out
