"""Scenario context: everything beyond configurations.

A context carries the "additional context such as route advertisements"
of the paper's Fig. 1 — external BGP announcements via route injectors —
plus what-if perturbations (link cuts) applied to the emulation before
convergence is measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.corpus.routes import InjectorSpec


@dataclass(frozen=True)
class ScenarioContext:
    """One emulation scenario."""

    name: str = "base"
    down_links: tuple[tuple[str, str], ...] = ()
    injectors: tuple[InjectorSpec, ...] = ()

    def with_link_down(self, a: str, z: str) -> "ScenarioContext":
        return replace(
            self,
            name=f"{self.name}+cut:{a}-{z}",
            down_links=self.down_links + ((a, z),),
        )

    def with_injectors(self, *specs: InjectorSpec) -> "ScenarioContext":
        return replace(self, injectors=self.injectors + tuple(specs))


def single_link_cut_contexts(
    topology, base: ScenarioContext = ScenarioContext()
) -> Iterator[ScenarioContext]:
    """One context per link: the paper's §6 exhaustive single-cut sweep.

    Model-free verification checks "reachability under any single link
    cut" by emulating each context and running differential checks —
    linear in links, where k-cut sweeps grow combinatorially (the §6
    trade-off against model-centric approaches).
    """
    for link in topology.links:
        yield base.with_link_down(link.a.node, link.z.node)


def k_link_cut_count(num_links: int, k: int) -> int:
    """Contexts needed for an exhaustive k-cut sweep (for cost analysis)."""
    from math import comb

    return comb(num_links, k)
