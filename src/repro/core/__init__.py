"""The model-free verification pipeline (the paper's contribution).

Two stages, as in the paper's Fig. 1:

* **upper stage** — control-plane emulation: bring the topology up under
  KNE, optionally inject external BGP context, run to convergence,
  extract AFTs over gNMI (:class:`ModelFreeBackend`);
* **lower stage** — dataplane verification over the extracted state
  (:mod:`repro.verify`, or the :mod:`repro.pybf` query frontend).

The model-based baseline (:class:`NativeBatfishBackend`) produces
snapshots of the same type from the same inputs, so any query can be run
against either backend — including differentially *across* backends,
which is how the paper surfaces model defects.
"""

from repro.core.context import ScenarioContext
from repro.core.snapshot import Snapshot
from repro.core.pipeline import ModelFreeBackend, NativeBatfishBackend
from repro.core.differential import compare_snapshots
from repro.core.multirun import MultiRunResult, explore_nondeterminism

__all__ = [
    "ModelFreeBackend",
    "MultiRunResult",
    "NativeBatfishBackend",
    "ScenarioContext",
    "Snapshot",
    "compare_snapshots",
    "explore_nondeterminism",
]
