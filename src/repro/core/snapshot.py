"""Snapshots: the unit of verification."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.dataplane.model import Dataplane
from repro.gnmi.aft import AftSnapshot


@dataclass
class Snapshot:
    """A verified network state: extracted AFTs plus provenance.

    ``backend`` records how the dataplane was obtained ("emulation" or
    "model"); verification queries never need to care.
    """

    name: str
    afts: dict[str, AftSnapshot]
    backend: str = "emulation"
    seed: Optional[int] = None
    startup_seconds: float = 0.0
    convergence_seconds: float = 0.0
    metadata: dict = field(default_factory=dict)
    _dataplane: Optional[Dataplane] = field(default=None, repr=False)

    @property
    def dataplane(self) -> Dataplane:
        if self._dataplane is None:
            self._dataplane = Dataplane.from_afts(self.afts)
        return self._dataplane

    # -- persistence -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "backend": self.backend,
            "seed": self.seed,
            "startup_seconds": self.startup_seconds,
            "convergence_seconds": self.convergence_seconds,
            "metadata": self.metadata,
            "afts": {name: aft.to_dict() for name, aft in self.afts.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Snapshot":
        return cls(
            name=data["name"],
            afts={
                name: AftSnapshot.from_dict(raw)
                for name, raw in data["afts"].items()
            },
            backend=data.get("backend", "emulation"),
            seed=data.get("seed"),
            startup_seconds=data.get("startup_seconds", 0.0),
            convergence_seconds=data.get("convergence_seconds", 0.0),
            metadata=data.get("metadata", {}),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Snapshot":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def __repr__(self) -> str:
        return (
            f"Snapshot({self.name!r}, backend={self.backend!r}, "
            f"devices={len(self.afts)})"
        )
