"""Snapshots: the unit of verification."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.dataplane.model import Dataplane
from repro.gnmi.aft import AftSnapshot


@dataclass
class Snapshot:
    """A verified network state: extracted AFTs plus provenance.

    ``backend`` records how the dataplane was obtained ("emulation" or
    "model"); verification queries never need to care.
    """

    name: str
    afts: dict[str, AftSnapshot]
    backend: str = "emulation"
    seed: Optional[int] = None
    startup_seconds: float = 0.0
    convergence_seconds: float = 0.0
    metadata: dict = field(default_factory=dict)
    # Nodes whose AFTs could not be extracted, mapped to a reason. A
    # non-empty manifest makes this a *partial* snapshot: queries about
    # those nodes answer UNKNOWN_DEGRADED instead of fabricating
    # NO_ROUTE from their absence.
    degraded_nodes: dict[str, str] = field(default_factory=dict)
    _dataplane: Optional[Dataplane] = field(default=None, repr=False)

    @property
    def is_partial(self) -> bool:
        return bool(self.degraded_nodes)

    @property
    def dataplane(self) -> Dataplane:
        if self._dataplane is None:
            self._dataplane = Dataplane.from_afts(
                self.afts,
                degraded_nodes=self.degraded_nodes,
                degraded_addresses=self.metadata.get("degraded_addresses", {}),
            )
        return self._dataplane

    # -- persistence -----------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "backend": self.backend,
            "seed": self.seed,
            "startup_seconds": self.startup_seconds,
            "convergence_seconds": self.convergence_seconds,
            "metadata": self.metadata,
            "afts": {name: aft.to_dict() for name, aft in self.afts.items()},
        }
        if self.degraded_nodes:
            data["degraded_nodes"] = dict(self.degraded_nodes)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Snapshot":
        degraded = data.get("degraded_nodes", {})
        target = PartialSnapshot if degraded else cls
        return target(
            name=data["name"],
            afts={
                name: AftSnapshot.from_dict(raw)
                for name, raw in data["afts"].items()
            },
            backend=data.get("backend", "emulation"),
            seed=data.get("seed"),
            startup_seconds=data.get("startup_seconds", 0.0),
            convergence_seconds=data.get("convergence_seconds", 0.0),
            metadata=data.get("metadata", {}),
            degraded_nodes=dict(degraded),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Snapshot":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def __repr__(self) -> str:
        return (
            f"Snapshot({self.name!r}, backend={self.backend!r}, "
            f"devices={len(self.afts)})"
        )


@dataclass
class PartialSnapshot(Snapshot):
    """A snapshot extracted under degradation.

    Identical to :class:`Snapshot` except the type itself advertises
    that ``degraded_nodes`` is non-empty — the pipeline returns this
    when one or more nodes exhausted their extraction retry budget, so
    callers can branch on the type without inspecting the manifest.
    """

    def __repr__(self) -> str:
        return (
            f"PartialSnapshot({self.name!r}, backend={self.backend!r}, "
            f"devices={len(self.afts)}, "
            f"degraded={sorted(self.degraded_nodes)})"
        )
