"""Vendor router OS emulations.

Each vendor package provides a config parser (native syntax → the
vendor-neutral :class:`repro.device.DeviceConfig`), an OS class derived
from :class:`repro.vendors.base.RouterOS`, and a CLI with the vendor's
``show`` commands. ``create_router`` is the factory KNE uses when it
brings a node up.
"""

from repro.vendors.base import RouterOS, SshSession, VendorError
from repro.vendors.quirks import VendorQuirks, quirks_for
from repro.vendors.registry import available_vendors, create_router

__all__ = [
    "RouterOS",
    "SshSession",
    "VendorError",
    "VendorQuirks",
    "available_vendors",
    "create_router",
    "quirks_for",
]
