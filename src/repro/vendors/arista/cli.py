"""Arista EOS ``show`` commands.

The paper's E5 result is that emulation preserves the operator tooling
flow: SSH in and run the same commands used against production routers.
These renderings aim for recognizable EOS output shape, not byte-exact
fidelity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.addr import format_ipv4
from repro.rib.fib import FibAction
from repro.rib.route import Protocol

if TYPE_CHECKING:
    from repro.vendors.arista.eos import AristaEos

_PROTO_CODES = {
    Protocol.CONNECTED: "C",
    Protocol.LOCAL: "L",
    Protocol.STATIC: "S",
    Protocol.ISIS: "I L2",
    Protocol.BGP_EXTERNAL: "B E",
    Protocol.BGP_INTERNAL: "B I",
    Protocol.RSVP_TE: "R T",
}


class AristaCli:
    """Command dispatcher for one EOS device."""

    def __init__(self, router: "AristaEos") -> None:
        self.router = router

    def execute(self, command: str) -> str:
        command = " ".join(command.split())
        handlers = [
            ("show ip route", self.show_ip_route),
            ("show isis database", self.show_isis_database),
            ("show isis neighbors", self.show_isis_neighbors),
            ("show ip bgp summary", self.show_bgp_summary),
            ("show bgp summary", self.show_bgp_summary),
            ("show ip interface brief", self.show_ip_interface_brief),
            ("show interfaces status", self.show_ip_interface_brief),
            ("show mpls rsvp tunnel", self.show_rsvp_tunnels),
            ("show running-config diagnostics", self.show_diagnostics),
            ("show running-config", self.show_running_config),
            ("show version", self.show_version),
        ]
        for prefix, handler in handlers:
            if command == prefix or command.startswith(prefix + " "):
                return handler(command)
        return f"% Invalid input ('{command}')"

    # -- commands ------------------------------------------------------------

    def show_version(self, command: str) -> str:
        del command
        return (
            f"Arista cEOSLab (emulated)\n"
            f"Hostname: {self.router.name}\n"
            f"Software image version: {self.router.os_version or '4.34.0F'}\n"
        )

    def show_ip_route(self, command: str) -> str:
        parts = command.split()
        prefix_filter = parts[3] if len(parts) > 3 else None
        lines = [
            "VRF: default",
            "Codes: C - connected, S - static, I - IS-IS, B - BGP,",
            "       L - local, R T - RSVP-TE",
            "",
        ]
        for route in sorted(
            self.router.rib.best_routes(), key=lambda r: (r.prefix.network, r.prefix.length)
        ):
            if prefix_filter and not str(route.prefix).startswith(prefix_filter):
                continue
            code = _PROTO_CODES.get(route.protocol, "?")
            hops = ", ".join(str(nh) for nh in route.next_hops) or "Null0"
            lines.append(
                f" {code:<4} {route.prefix} "
                f"[{route.effective_distance}/{route.metric}] via {hops}"
            )
        return "\n".join(lines) + "\n"

    def show_isis_database(self, command: str) -> str:
        del command
        isis = self.router.isis
        if isis is None:
            return "% IS-IS is not running\n"
        lines = [
            f"IS-IS Instance: {isis.config.tag} VRF: default",
            "  Level 2 Link State Database",
            f"{'LSPID':<24}{'Seq Num':>8}  Neighbors / Prefixes",
        ]
        for lsp in isis.database_summary():
            neighbors = ", ".join(f"{n}({m})" for n, m in lsp.neighbors) or "-"
            prefixes = ", ".join(f"{p}({m})" for p, m in lsp.prefixes) or "-"
            lines.append(
                f"{lsp.system_id + '.00-00':<24}{lsp.sequence:>8}  "
                f"nbrs: {neighbors} | prefixes: {prefixes}"
            )
        return "\n".join(lines) + "\n"

    def show_isis_neighbors(self, command: str) -> str:
        del command
        isis = self.router.isis
        if isis is None:
            return "% IS-IS is not running\n"
        lines = [
            f"IS-IS Instance: {isis.config.tag} VRF: default",
            f"{'System Id':<20}{'Interface':<16}{'SNPA':<12}{'State':<8}",
        ]
        for adj in isis.adjacency_summary():
            lines.append(
                f"{adj.system_id:<20}{adj.port.name:<16}{'P2P':<12}{'UP':<8}"
            )
        return "\n".join(lines) + "\n"

    def show_bgp_summary(self, command: str) -> str:
        del command
        bgp = self.router.bgp
        if bgp is None:
            return "% BGP is not running\n"
        lines = [
            f"BGP summary information for VRF default",
            f"Router identifier {format_ipv4(bgp.router_id)}, "
            f"local AS number {bgp.config.asn}",
            f"{'Neighbor':<18}{'AS':>8}{'State':<14}{'PfxRcd':>8}{'Resets':>8}",
        ]
        for row in bgp.summary():
            lines.append(
                f"{row['neighbor']:<18}{row['remote_as']:>8}"
                f"{row['state']:<14}{row['prefixes_received']:>8}{row['resets']:>8}"
            )
        return "\n".join(lines) + "\n"

    def show_ip_interface_brief(self, command: str) -> str:
        del command
        lines = [
            f"{'Interface':<18}{'IP Address':<20}{'Status':<12}{'Protocol':<10}"
        ]
        for name in sorted(self.router.ports):
            port = self.router.ports[name]
            if port.config.address is not None and port.config.prefix_length is not None:
                address = (
                    f"{format_ipv4(port.config.address)}/{port.config.prefix_length}"
                )
                if port.config.switchport:
                    address += " (switched)"
            else:
                address = "unassigned"
            status = "up" if port.is_up else (
                "admin down" if port.config.shutdown else "down"
            )
            protocol = "up" if port.is_up and port.config.is_routed else "down"
            lines.append(f"{name:<18}{address:<20}{status:<12}{protocol:<10}")
        return "\n".join(lines) + "\n"

    def show_rsvp_tunnels(self, command: str) -> str:
        del command
        rsvp = self.router.rsvp
        if rsvp is None:
            return "% MPLS RSVP is not running\n"
        lines = [f"{'Tunnel':<20}{'Destination':<18}{'State':<8}Path"]
        for row in rsvp.tunnel_summary():
            lines.append(
                f"{row['name']:<20}{row['destination']:<18}"
                f"{row['state']:<8}{row['route']}"
            )
        return "\n".join(lines) + "\n"

    def show_running_config(self, command: str) -> str:
        del command
        return self.router.config_text or "! (no configuration)\n"

    def show_diagnostics(self, command: str) -> str:
        del command
        if not self.router.diagnostics:
            return "! configuration loaded cleanly\n"
        return "\n".join(str(d) for d in self.router.diagnostics) + "\n"
