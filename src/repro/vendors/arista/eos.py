"""The Arista cEOS-like router OS."""

from __future__ import annotations

from repro.device.model import DeviceConfig
from repro.vendors.arista.cli import AristaCli
from repro.vendors.arista.config_parser import parse_arista_config
from repro.vendors.base import ConfigDiagnostic, RouterOS


class AristaEos(RouterOS):
    """Emulated Arista EOS (container image: cEOS)."""

    vendor = "arista"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._cli = AristaCli(self)

    def parse_config(
        self, text: str
    ) -> tuple[DeviceConfig, list[ConfigDiagnostic]]:
        return parse_arista_config(text)

    def cli(self, command: str) -> str:
        return self._cli.execute(command)
