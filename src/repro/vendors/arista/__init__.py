"""Arista cEOS-like router OS emulation."""

from repro.vendors.arista.eos import AristaEos

__all__ = ["AristaEos"]
