"""Arista EOS configuration parser.

Parses the EOS dialect used across this repo's corpus: interfaces,
IS-IS, BGP, MPLS/traffic-engineering, static routes, routing policy, and
the management-plane stanzas (daemons, gNMI/gRPC, SSL profiles, …) that
production configs carry.

Semantics notes (both deliberate, both load-bearing for the paper's
Fig. 3 experiment):

* Interface stanzas are applied as a unit: ``ip address`` and
  ``no switchport`` may appear in either order, exactly like the real
  cEOS 4.34.0F behaviour the paper observed. The model-based baseline
  (:mod:`repro.batfish_model`) applies lines in order instead.
* ``isis enable <tag>`` is valid interface syntax here; the baseline
  parser rejects it.

Lines the OS genuinely does not understand produce a diagnostic and are
skipped — matching a real router's config-load behaviour — rather than
aborting the load.
"""

from __future__ import annotations

import re
from typing import Callable, Optional

from repro.device.acl import Acl, AclRule, PROTOCOL_NUMBERS
from repro.device.interfaces import InterfaceConfig, IsisInterfaceSettings
from repro.device.model import (
    BgpConfig,
    BgpNeighborConfig,
    DeviceConfig,
    IsisConfig,
    MplsTunnelConfig,
    StaticRouteConfig,
)
from repro.device.routing_policy import (
    Community,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.net.addr import AddressError, Prefix, parse_ipv4
from repro.vendors.base import ConfigDiagnostic

_SWITCHPORT_DEFAULT_RE = re.compile(r"^(Ethernet|Port-Channel)", re.IGNORECASE)

# Top-level stanzas that configure the management plane. Their bodies
# are consumed and recorded, not interpreted.
_MANAGEMENT_HEADS = (
    "management api gnmi",
    "management api http-commands",
    "management api models",
    "management security",
    "management ssh",
    "management console",
)

# Single-line commands with no dataplane relevance that a real EOS
# accepts silently.
_HARMLESS_PREFIXES = (
    "service routing protocols model",
    "transceiver qsfp default-mode",
    "spanning-tree mode",
    "no spanning-tree",
    "ntp server",
    "snmp-server",
    "aaa ",
    "username ",
    "clock timezone",
    "dns domain",
    "ip name-server",
    "logging ",
    "queue-monitor ",
    "hardware counter",
    "platform ",
    "load-interval default",
    "ip icmp rate-limit",
    "vrf instance",
    "banner ",
    "end",
    "boot system",
    "event-monitor",
    "errdisable ",
    "ip hardware fib",
    "sflow ",
)


class _Lines:
    """Cursor over config lines with peek/indent helpers."""

    def __init__(self, text: str) -> None:
        self.lines = text.splitlines()
        self.index = 0

    def peek(self) -> Optional[str]:
        while self.index < len(self.lines):
            line = self.lines[self.index]
            if line.strip() in ("", "!") or line.strip().startswith("!"):
                self.index += 1
                continue
            return line
        return None

    def next(self) -> tuple[int, str]:
        line = self.peek()
        assert line is not None
        self.index += 1
        return self.index, line

    def body(self) -> list[tuple[int, str]]:
        """Consume the indented body following a stanza head."""
        out = []
        while True:
            line = self.peek()
            if line is None or not line.startswith((" ", "\t")):
                return out
            out.append(self.next())


class AristaConfigParser:
    """Parser for one configuration document."""

    def __init__(self) -> None:
        self.device = DeviceConfig()
        self.diagnostics: list[ConfigDiagnostic] = []

    def parse(self, text: str) -> tuple[DeviceConfig, list[ConfigDiagnostic]]:
        cursor = _Lines(text)
        while cursor.peek() is not None:
            number, line = cursor.next()
            try:
                self._top_level(number, line.strip(), cursor)
            except AddressError as exc:
                self._invalid(number, line, str(exc))
        return self.device, self.diagnostics

    # -- top level -----------------------------------------------------------

    def _top_level(self, number: int, line: str, cursor: _Lines) -> None:
        words = line.split()
        if not words:
            return
        if line.startswith("hostname "):
            self.device.hostname = line.split(None, 1)[1]
        elif line.startswith("interface "):
            self._interface(line.split(None, 1)[1], cursor.body(), number)
        elif line.startswith("router isis"):
            self._router_isis(words, cursor.body())
        elif line.startswith("router bgp "):
            self._router_bgp(words, cursor.body(), number)
        elif line.startswith("router traffic-engineering"):
            self.device.mpls.traffic_eng = True
            for _n, _body in cursor.body():
                pass  # rsvp / segment-routing toggles: accepted
        elif line == "mpls ip":
            self.device.mpls.enabled = True
        elif line == "mpls rsvp" or line.startswith("mpls rsvp"):
            self.device.mpls.enabled = True
            self.device.mpls.traffic_eng = True
            for _n, body_line in cursor.body():
                self._mpls_rsvp_body(body_line.strip())
        elif line.startswith("mpls tunnel ") or line.startswith(
            "traffic-engineering tunnel "
        ):
            self._mpls_tunnel(words, cursor.body(), number)
        elif line == "ip routing":
            self.device.ip_routing = True
        elif line == "no ip routing":
            self.device.ip_routing = False
        elif line.startswith("ip route "):
            self._static_route(number, line, words)
        elif line.startswith("ip prefix-list "):
            self._prefix_list(number, line, words)
        elif line.startswith("ip access-list "):
            self._access_list(words[2], cursor.body())
        elif line.startswith("route-map "):
            self._route_map(number, line, words, cursor.body())
        elif line.startswith("daemon "):
            self.device.daemons.append(words[1])
            cursor.body()
        elif any(line.startswith(head) for head in _MANAGEMENT_HEADS):
            self.device.management_services.append(line)
            for _n, body_line in cursor.body():
                self.device.management_services.append(body_line.strip())
        elif any(line.startswith(prefix) for prefix in _HARMLESS_PREFIXES):
            cursor.body()
        else:
            cursor.body()
            self._invalid(number, line, "% Invalid input")

    # -- interfaces ------------------------------------------------------------

    def _interface(
        self, name: str, body: list[tuple[int, str]], head_number: int
    ) -> None:
        del head_number
        is_new = name not in self.device.interfaces
        iface = self.device.interface(name)
        explicit_mode: Optional[bool] = None
        if is_new:
            # EOS default: front-panel ports come up as switchports.
            # Re-entering an existing stanza merges (does not reset).
            iface.switchport = bool(_SWITCHPORT_DEFAULT_RE.match(name))
        for number, raw in body:
            line = raw.strip()
            words = line.split()
            if line.startswith("description "):
                iface.description = line.split(None, 1)[1]
            elif line == "no switchport":
                explicit_mode = False
            elif line == "switchport":
                explicit_mode = True
            elif line.startswith("ip address "):
                try:
                    prefix_text = words[2]
                    address_text, _, length_text = prefix_text.partition("/")
                    iface.address = parse_ipv4(address_text)
                    iface.prefix_length = int(length_text)
                except (IndexError, ValueError, AddressError):
                    self._invalid(number, raw, "% Invalid address")
            elif line == "shutdown":
                iface.shutdown = True
            elif line == "no shutdown":
                iface.shutdown = False
            elif line.startswith("isis enable "):
                tag = words[2] if len(words) > 2 else "default"
                iface.isis = self._isis_settings(iface)
                iface.isis.tag = tag
                iface.isis.enabled = True
            elif line.startswith("isis metric "):
                iface.isis = self._isis_settings(iface)
                try:
                    iface.isis.metric = int(words[2])
                except (IndexError, ValueError):
                    self._invalid(number, raw, "% Invalid metric")
            elif line in ("isis passive", "isis passive-interface default"):
                iface.isis = self._isis_settings(iface)
                iface.isis.passive = True
            elif line == "mpls ip":
                iface.mpls_enabled = True
            elif line.startswith("ip access-group "):
                if len(words) == 4 and words[3] in ("in", "out"):
                    if words[3] == "in":
                        iface.acl_in = words[2]
                    else:
                        iface.acl_out = words[2]
                else:
                    self._invalid(number, raw, "% Invalid access-group")
            elif line.startswith("speed "):
                try:
                    iface.speed_gbps = float(words[-1].rstrip("gG"))
                except ValueError:
                    pass
            elif line.startswith(("load-interval", "mtu", "logging event")):
                pass
            else:
                self._invalid(number, raw, "% Invalid input")
        if explicit_mode is not None:
            # Stanza applied as a unit: mode wins regardless of where it
            # appeared relative to `ip address` (the Fig. 3 behaviour).
            iface.switchport = explicit_mode

    @staticmethod
    def _isis_settings(iface: InterfaceConfig) -> IsisInterfaceSettings:
        if iface.isis is None:
            iface.isis = IsisInterfaceSettings()
        return iface.isis

    # -- router isis --------------------------------------------------------------

    def _router_isis(self, words: list[str], body: list[tuple[int, str]]) -> None:
        tag = words[2] if len(words) > 2 else "default"
        isis = self.device.isis or IsisConfig(tag=tag)
        isis.tag = tag
        self.device.isis = isis
        for number, raw in body:
            line = raw.strip()
            if line.startswith("net "):
                isis.net = line.split()[1]
            elif line.startswith("address-family ipv4"):
                isis.ipv4_unicast = True
            elif line in ("is-type level-2", "is-type level-2-only"):
                pass
            elif line == "passive-interface default":
                isis.passive_default = True
            elif line.startswith(("log-adjacency-changes", "set-overload-bit")):
                pass
            else:
                self._invalid(number, raw, "% Invalid input")

    # -- router bgp ------------------------------------------------------------------

    def _router_bgp(
        self, words: list[str], body: list[tuple[int, str]], head_number: int
    ) -> None:
        try:
            asn = int(words[2])
        except (IndexError, ValueError):
            self._invalid(head_number, " ".join(words), "% Invalid AS number")
            return
        bgp = self.device.bgp or BgpConfig(asn=asn)
        bgp.asn = asn
        self.device.bgp = bgp
        for number, raw in body:
            line = raw.strip()
            parts = line.split()
            if line.startswith("router-id "):
                try:
                    bgp.router_id = parse_ipv4(parts[1])
                except (IndexError, AddressError):
                    self._invalid(number, raw, "% Invalid router-id")
            elif line.startswith("neighbor "):
                self._bgp_neighbor(number, raw, parts, bgp)
            elif line.startswith("network "):
                try:
                    bgp.networks.append(Prefix.parse(parts[1]))
                except (IndexError, AddressError):
                    self._invalid(number, raw, "% Invalid network")
            elif line == "redistribute connected":
                bgp.redistribute_connected = True
            elif line.startswith("redistribute isis"):
                bgp.redistribute_isis = True
            elif line.startswith("maximum-paths "):
                try:
                    bgp.maximum_paths = int(parts[1])
                except (IndexError, ValueError):
                    self._invalid(number, raw, "% Invalid maximum-paths")
            elif line.startswith("address-family ipv4"):
                pass
            elif parts and parts[0] in ("bgp", "timers", "no"):
                pass  # bgp log-neighbor-changes, timers bgp, no bgp default ...
            else:
                self._invalid(number, raw, "% Invalid input")

    def _bgp_neighbor(
        self, number: int, raw: str, parts: list[str], bgp: BgpConfig
    ) -> None:
        try:
            peer = parse_ipv4(parts[1])
        except (IndexError, AddressError):
            self._invalid(number, raw, "% Invalid neighbor address")
            return
        neighbor = bgp.neighbors.get(peer)
        if neighbor is None:
            neighbor = BgpNeighborConfig(peer_address=peer, remote_as=0)
            bgp.neighbors[peer] = neighbor
        knob = parts[2] if len(parts) > 2 else ""
        rest = parts[3:]
        if knob == "remote-as" and rest:
            neighbor.remote_as = int(rest[0])
        elif knob == "description":
            neighbor.description = " ".join(rest)
        elif knob == "update-source" and rest:
            neighbor.update_source = rest[0]
        elif knob == "next-hop-self":
            neighbor.next_hop_self = True
        elif knob == "send-community":
            neighbor.send_community = True
        elif knob == "route-map" and len(rest) == 2:
            if rest[1] == "in":
                neighbor.route_map_in = rest[0]
            elif rest[1] == "out":
                neighbor.route_map_out = rest[0]
            else:
                self._invalid(number, raw, "% Invalid route-map direction")
        elif knob == "ebgp-multihop":
            neighbor.ebgp_multihop = int(rest[0]) if rest else 255
        elif knob == "shutdown":
            neighbor.shutdown = True
        elif knob == "route-reflector-client":
            neighbor.route_reflector_client = True
        elif knob in ("activate", "maximum-routes", "password", "timers"):
            pass
        else:
            self._invalid(number, raw, "% Invalid neighbor option")

    # -- mpls ---------------------------------------------------------------------------

    def _mpls_rsvp_body(self, line: str) -> None:
        if line.startswith("refresh interval "):
            try:
                self.device.mpls.rsvp_refresh_interval = float(line.split()[-1])
            except ValueError:
                pass

    def _mpls_tunnel(
        self, words: list[str], body: list[tuple[int, str]], head_number: int
    ) -> None:
        self.device.mpls.enabled = True
        self.device.mpls.traffic_eng = True
        name = words[-1]
        destination = None
        for number, raw in body:
            line = raw.strip()
            if line.startswith("destination "):
                try:
                    destination = parse_ipv4(line.split()[1])
                except (IndexError, AddressError):
                    self._invalid(number, raw, "% Invalid destination")
            elif line.startswith(("bandwidth", "priority", "path-selection")):
                pass
            else:
                self._invalid(number, raw, "% Invalid input")
        if destination is None:
            self._invalid(head_number, " ".join(words), "% Tunnel has no destination")
            return
        self.device.mpls.tunnels.append(
            MplsTunnelConfig(name=name, destination=destination)
        )

    # -- access lists ---------------------------------------------------------------------

    def _access_list(self, name: str, body: list[tuple[int, str]]) -> None:
        acl = self.device.acls.setdefault(name, Acl(name=name))
        auto_seq = 10
        for number, raw in body:
            line = raw.strip()
            words = line.split()
            try:
                if words[0].isdigit():
                    seq = int(words[0])
                    words = words[1:]
                else:
                    seq = auto_seq
                rule = self._acl_rule(seq, words)
            except (IndexError, ValueError, AddressError):
                self._invalid(number, raw, "% Invalid access-list rule")
                continue
            if rule is None:
                self._invalid(number, raw, "% Invalid access-list rule")
                continue
            acl.add(rule)
            auto_seq = max(auto_seq, seq) + 10

    @staticmethod
    def _acl_rule(seq: int, words: list[str]) -> Optional[AclRule]:
        # permit|deny <ip|tcp|udp|icmp> <src> <dst> [eq N | range A B]
        if not words or words[0] not in ("permit", "deny"):
            return None
        permit = words[0] == "permit"
        proto_word = words[1]
        protocol = None if proto_word == "ip" else PROTOCOL_NUMBERS.get(proto_word)
        if proto_word != "ip" and protocol is None:
            return None
        rest = words[2:]

        def take_endpoint(tokens: list[str]):
            if not tokens:
                raise ValueError("missing endpoint")
            if tokens[0] == "any":
                return None, tokens[1:]
            if tokens[0] == "host":
                return Prefix.parse(tokens[1] + "/32"), tokens[2:]
            return Prefix.parse(tokens[0]), tokens[1:]

        src, rest = take_endpoint(rest)
        dst, rest = take_endpoint(rest)
        dst_port = None
        if rest[:1] == ["eq"]:
            port = int(rest[1])
            dst_port = (port, port)
            rest = rest[2:]
        elif rest[:1] == ["range"]:
            dst_port = (int(rest[1]), int(rest[2]))
            rest = rest[3:]
        if rest:
            return None
        return AclRule(
            seq=seq,
            permit=permit,
            protocol=protocol,
            src=src,
            dst=dst,
            dst_port=dst_port,
        )

    # -- static routes / policy ------------------------------------------------------------

    def _static_route(self, number: int, line: str, words: list[str]) -> None:
        try:
            prefix = Prefix.parse(words[2])
        except (IndexError, AddressError):
            self._invalid(number, line, "% Invalid prefix")
            return
        if len(words) < 4:
            self._invalid(number, line, "% Missing next hop")
            return
        target = words[3]
        distance = 1
        if len(words) >= 5 and words[4].isdigit():
            distance = int(words[4])
        if target.lower() in ("null0", "null 0"):
            self.device.static_routes.append(
                StaticRouteConfig(prefix=prefix, discard=True, distance=distance)
            )
            return
        try:
            next_hop = parse_ipv4(target)
        except AddressError:
            self.device.static_routes.append(
                StaticRouteConfig(
                    prefix=prefix, interface=target, distance=distance
                )
            )
            return
        self.device.static_routes.append(
            StaticRouteConfig(prefix=prefix, next_hop=next_hop, distance=distance)
        )

    def _prefix_list(self, number: int, line: str, words: list[str]) -> None:
        # ip prefix-list NAME seq N permit|deny PFX [ge X] [le Y]
        try:
            name = words[2]
            assert words[3] == "seq"
            seq = int(words[4])
            action = words[5]
            prefix = Prefix.parse(words[6])
        except (AssertionError, IndexError, ValueError, AddressError):
            self._invalid(number, line, "% Invalid prefix-list")
            return
        ge = le = None
        rest = words[7:]
        while rest:
            if rest[0] == "ge" and len(rest) >= 2:
                ge = int(rest[1])
                rest = rest[2:]
            elif rest[0] == "le" and len(rest) >= 2:
                le = int(rest[1])
                rest = rest[2:]
            else:
                self._invalid(number, line, "% Invalid prefix-list suffix")
                return
        plist = self.device.prefix_lists.setdefault(name, PrefixList(name=name))
        plist.add(
            PrefixListEntry(
                seq=seq, permit=(action == "permit"), prefix=prefix, ge=ge, le=le
            )
        )

    def _route_map(
        self,
        head_number: int,
        head_line: str,
        words: list[str],
        body: list[tuple[int, str]],
    ) -> None:
        try:
            name = words[1]
            action = words[2]
            seq = int(words[3])
        except (IndexError, ValueError):
            self._invalid(head_number, head_line, "% Invalid route-map")
            return
        clause = RouteMapClause(seq=seq, permit=(action == "permit"))
        for number, raw in body:
            line = raw.strip()
            parts = line.split()
            if line.startswith("match ip address prefix-list "):
                clause.match_prefix_list = parts[-1]
            elif line.startswith("match community "):
                try:
                    clause.match_community = Community.parse(parts[-1])
                except ValueError:
                    self._invalid(number, raw, "% Invalid community")
            elif line.startswith("set local-preference "):
                clause.set_local_pref = int(parts[-1])
            elif line.startswith("set metric "):
                clause.set_med = int(parts[-1])
            elif line.startswith("set community "):
                communities = []
                for token in parts[2:]:
                    if token == "additive":
                        continue
                    try:
                        communities.append(Community.parse(token))
                    except ValueError:
                        self._invalid(number, raw, "% Invalid community")
                clause.set_communities = tuple(communities)
            elif line.startswith("set as-path prepend "):
                clause.set_as_path_prepend = tuple(int(t) for t in parts[3:])
            else:
                self._invalid(number, raw, "% Invalid input")
        route_map = self.device.route_maps.setdefault(name, RouteMap(name=name))
        route_map.add(clause)

    # -- diagnostics ---------------------------------------------------------------------------

    def _invalid(self, number: int, line: str, message: str) -> None:
        self.diagnostics.append(
            ConfigDiagnostic(line_number=number, line=line, message=message)
        )


def parse_arista_config(
    text: str,
) -> tuple[DeviceConfig, list[ConfigDiagnostic]]:
    """Parse an EOS configuration document."""
    return AristaConfigParser().parse(text)
