"""Base router OS: lifecycle, interface runtime, protocol stack wiring.

A :class:`RouterOS` is the emulated equivalent of a vendor container
image: it boots, accepts its native configuration text, runs the
protocol engines, and exposes the production interfaces the paper leans
on — a vendor CLI over :class:`SshSession` and gNMI AFT export (see
:mod:`repro.gnmi`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.device.model import DeviceConfig
from repro.net.addr import Prefix
from repro.obs import bus
from repro.protocols.bgp import BgpInstance
from repro.protocols.host import Port
from repro.protocols.isis import IsisInstance
from repro.protocols.rsvp import RsvpInstance
from repro.protocols.timers import TimerProfile, PRODUCTION_TIMERS
from repro.protocols.transport import ControlTransport
from repro.rib.rib import Rib
from repro.rib.route import NextHop, Protocol, Route
from repro.sim.kernel import SimKernel
from repro.vendors.quirks import VendorQuirks, quirks_for


class VendorError(RuntimeError):
    """Raised for invalid vendor-level operations."""


class DeviceState(enum.Enum):
    """Pod-visible lifecycle of the router OS."""
    POWERED_OFF = "powered-off"
    BOOTING = "booting"
    RUNNING = "running"


@dataclass
class ConfigDiagnostic:
    """A configuration line the OS rejected (operator typo etc.)."""

    line_number: int
    line: str
    message: str

    def __str__(self) -> str:
        return f"line {self.line_number}: {self.message}: {self.line.strip()!r}"


class RouterOS:
    """Common behaviour for all vendor OS emulations."""

    vendor: str = "generic"

    def __init__(
        self,
        name: str,
        kernel: SimKernel,
        transport: ControlTransport,
        *,
        os_version: str = "",
        timers: TimerProfile = PRODUCTION_TIMERS,
        quirks: Optional[VendorQuirks] = None,
    ) -> None:
        self.name = name
        self.kernel = kernel
        self.transport = transport
        self.os_version = os_version
        self.timers = timers
        self.quirks = quirks or quirks_for(self.vendor, os_version)
        self.state = DeviceState.POWERED_OFF
        self.ports: dict[str, Port] = {}
        self.rib = Rib(clock=lambda: kernel.now)
        self.config: DeviceConfig = DeviceConfig(hostname=name)
        self.config_text = ""
        self.diagnostics: list[ConfigDiagnostic] = []
        self.isis: Optional[IsisInstance] = None
        self.bgp: Optional[BgpInstance] = None
        self.rsvp: Optional[RsvpInstance] = None
        self._last_igp_version = 0
        self._last_fib_version = 0
        self._boot_listeners: list[Callable[[], None]] = []
        self._fib_listeners: list[Callable[[int], None]] = []

    # -- subclass interface ---------------------------------------------------

    def parse_config(
        self, text: str
    ) -> tuple[DeviceConfig, list[ConfigDiagnostic]]:
        """Translate native configuration text into the device model."""
        raise NotImplementedError

    def cli(self, command: str) -> str:
        """Execute a vendor CLI command and return its output."""
        raise NotImplementedError

    # -- lifecycle ---------------------------------------------------------------

    def power_on(self, boot_time: float) -> None:
        """Begin booting; ``on_boot`` listeners fire when the OS is up."""
        if self.state is not DeviceState.POWERED_OFF:
            raise VendorError(f"{self.name} is already powered on")
        self.state = DeviceState.BOOTING
        self.kernel.schedule(boot_time, self._finish_boot, label=f"boot:{self.name}")

    def on_boot(self, listener: Callable[[], None]) -> None:
        if self.state is DeviceState.RUNNING:
            listener()
        else:
            self._boot_listeners.append(listener)

    def _finish_boot(self) -> None:
        self.state = DeviceState.RUNNING
        for listener in self._boot_listeners:
            listener()
        self._boot_listeners.clear()

    def apply_config(self, text: str) -> list[ConfigDiagnostic]:
        """Load a full configuration, replacing any previous one.

        Returns diagnostics for rejected lines (the emulated OS, like a
        real one, skips invalid lines and keeps going).
        """
        if self.state is not DeviceState.RUNNING:
            raise VendorError(f"{self.name} is not running")
        self.config_text = text
        self.config, self.diagnostics = self.parse_config(text)
        self.config.hostname = self.config.hostname or self.name
        self._instantiate_ports()
        self._install_kernel_routes()
        self._start_protocols()
        self.after_protocol_event()
        return self.diagnostics

    def _instantiate_ports(self) -> None:
        for iface in self.config.interfaces.values():
            existing = self.ports.get(iface.name)
            if existing is None:
                port = Port(iface)
                self.ports[iface.name] = port
            else:
                existing.config = iface

    def _install_kernel_routes(self) -> None:
        for port in self.ports.values():
            self._sync_port_routes(port)
            port.on_link_change(self._on_port_link_change)
        for static in self.config.static_routes:
            next_hops: tuple[NextHop, ...]
            if static.discard:
                next_hops = ()
            elif static.interface is not None:
                next_hops = (NextHop(ip=static.next_hop, interface=static.interface),)
            else:
                assert static.next_hop is not None
                next_hops = (NextHop(ip=static.next_hop),)
            self.rib.install(
                Route(
                    prefix=static.prefix,
                    protocol=Protocol.STATIC,
                    next_hops=next_hops,
                    distance=static.distance,
                )
            )

    def _sync_port_routes(self, port: Port) -> None:
        """Install or remove connected/local routes for one port."""
        prefix = port.config.connected_prefix()
        address = port.config.address
        if port.is_up and prefix is not None:
            self.rib.install(
                Route(
                    prefix=prefix,
                    protocol=Protocol.CONNECTED,
                    next_hops=(NextHop(interface=port.name),),
                )
            )
            assert address is not None
            self.rib.install(
                Route(
                    prefix=Prefix.containing(address, 32),
                    protocol=Protocol.LOCAL,
                    next_hops=(NextHop(interface=port.name),),
                )
            )
        elif prefix is not None:
            self.rib.withdraw(Protocol.CONNECTED, prefix)
            if address is not None:
                self.rib.withdraw(Protocol.LOCAL, Prefix.containing(address, 32))

    def _on_port_link_change(self, port: Port, up: bool) -> None:
        del up
        self._sync_port_routes(port)
        self.after_protocol_event()

    def _start_protocols(self) -> None:
        if self.config.isis is not None:
            self.isis = IsisInstance(self, self.config, self.timers)
            self.isis.start()
        if self.config.bgp is not None:
            self.bgp = BgpInstance(
                self,
                self.config,
                self.timers,
                self.transport,
                prefer_higher_igp_metric=self.quirks.ibgp_prefer_higher_igp_metric,
                crash_on_many_communities=self.quirks.crash_on_community_count,
            )
            self.bgp.start()
        if self.config.mpls.enabled and (
            self.config.mpls.tunnels or self.config.mpls.traffic_eng
        ):
            self.rsvp = RsvpInstance(
                self,
                self.config,
                refresh_interval=self.quirks.rsvp_refresh_interval,
                cleanup_multiplier=self.quirks.rsvp_cleanup_multiplier,
                suppress_path_err=self.quirks.rsvp_suppress_path_err,
            )
            self.rsvp.start()

    # -- RouterHost surface (used by protocol engines) -----------------------------

    def routed_ports(self) -> list[Port]:
        return [p for p in self.ports.values() if p.is_up and p.address is not None]

    def on_fib_change(self, listener: Callable[[int], None]) -> None:
        """Register for FIB-version change notifications (telemetry)."""
        self._fib_listeners.append(listener)

    def remove_fib_change(self, listener: Callable[[int], None]) -> None:
        """Unregister a listener added with :meth:`on_fib_change`.

        Unknown listeners are ignored so tear-down paths (temporal
        recorder finalize, test cleanup) can call this unconditionally.
        """
        try:
            self._fib_listeners.remove(listener)
        except ValueError:
            pass

    def after_protocol_event(self) -> None:
        """Commit RIB changes; kick BGP next-hop tracking on IGP change."""
        self.rib.commit()
        igp_version = self.rib.igp_version
        if igp_version != self._last_igp_version:
            self._last_igp_version = igp_version
            if self.bgp is not None:
                self.bgp.on_igp_change()
        fib_version = self.rib.fib.version
        if fib_version != self._last_fib_version:
            collector = bus.ACTIVE
            if collector.enabled:
                collector.emit(
                    "route.install",
                    self.kernel.now,
                    node=self.name,
                    version=fib_version,
                    routes=len(self.rib.fib),
                )
            if self._fib_listeners:
                self._last_fib_version = fib_version
                for listener in list(self._fib_listeners):
                    listener(fib_version)
                return
        self._last_fib_version = fib_version

    # -- wiring (KNE plugs virtual wires in here) ------------------------------------

    def port(self, name: str) -> Port:
        port = self.ports.get(name)
        if port is None:
            port = Port(self.config.interface(name))
            self.ports[name] = port
        return port

    def local_addresses(self) -> list[int]:
        return [p.address for p in self.ports.values() if p.address is not None]

    def owns_address(self, address: int) -> bool:
        return any(p.address == address for p in self.ports.values() if p.is_up)

    def connected_port_for(self, address: int) -> Optional[Port]:
        """The up port whose subnet contains ``address``."""
        for port in self.ports.values():
            prefix = port.connected_prefix()
            if port.is_up and prefix is not None and prefix.contains(address):
                return port
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {self.state.value})"


class SshSession:
    """The operator-facing handle: ``deployment.ssh("r1").execute(...)``."""

    def __init__(self, router: RouterOS) -> None:
        self._router = router

    @property
    def hostname(self) -> str:
        return self._router.name

    def execute(self, command: str) -> str:
        if self._router.state is not DeviceState.RUNNING:
            raise VendorError(f"{self._router.name}: connection refused (booting)")
        return self._router.cli(command.strip())
