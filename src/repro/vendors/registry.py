"""Vendor registry: vendor name -> router OS factory."""

from __future__ import annotations

from typing import Callable, Type

from repro.protocols.timers import TimerProfile, PRODUCTION_TIMERS
from repro.protocols.transport import ControlTransport
from repro.sim.kernel import SimKernel
from repro.vendors.arista.eos import AristaEos
from repro.vendors.base import RouterOS, VendorError
from repro.vendors.nokia.srl import NokiaSrl
from repro.vendors.quirks import quirks_for

_REGISTRY: dict[str, Type[RouterOS]] = {
    "arista": AristaEos,
    "nokia": NokiaSrl,
}


def available_vendors() -> list[str]:
    return sorted(_REGISTRY)


def create_router(
    vendor: str,
    name: str,
    kernel: SimKernel,
    transport: ControlTransport,
    *,
    os_version: str = "",
    timers: TimerProfile = PRODUCTION_TIMERS,
) -> RouterOS:
    """Instantiate the router OS for ``vendor`` (KNE's node factory)."""
    cls = _REGISTRY.get(vendor)
    if cls is None:
        raise VendorError(
            f"no virtual image available for vendor {vendor!r} "
            f"(available: {', '.join(available_vendors())})"
        )
    return cls(
        name,
        kernel,
        transport,
        os_version=os_version,
        timers=timers,
        quirks=quirks_for(vendor, os_version),
    )
