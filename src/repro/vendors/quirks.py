"""Vendor-specific behaviours, including bugs.

The paper's §2 argues that a single reference model cannot capture
vendor-implementation behaviour — including outright bugs observed in
production. The quirk registry is where this repo models those:
everything here is behaviour a *reference model* would not have, but a
vendor image (and hence the emulation) does.

Quirks default to the healthy values; experiments opt into buggy
software versions via :func:`quirks_for` with an ``os_version`` the bug
shipped in.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class VendorQuirks:
    """Behaviour switches for one router OS build."""

    # §2: "a new software version that introduced an incorrect route
    # metric selection in iBGP".
    ibgp_prefer_higher_igp_metric: bool = False
    # §2: one vendor's routing process "crashed during parsing" an
    # unusual-but-valid BGP advertisement. Sessions reset when an UPDATE
    # carries at least this many communities.
    crash_on_community_count: Optional[int] = None
    # The matching sender-side behaviour: this vendor pads
    # advertisements with this many informational communities (unusual
    # but entirely valid).
    community_padding: int = 0
    # §2 RSVP-TE interplay: this build does not emit PathErr on local
    # failures, so upstream vendors discover broken LSPs only by
    # soft-state timeout.
    rsvp_suppress_path_err: bool = False
    # Vendor-default RSVP refresh interval (seconds).
    rsvp_refresh_interval: float = 30.0
    rsvp_cleanup_multiplier: float = 3.5
    # Container resource footprint (per the paper: cEOS needs 0.5 vCPU
    # and 1 GB of RAM).
    container_cpu: float = 0.5
    container_memory_gb: float = 1.0
    # Router OS boot time bounds (seconds of simulated time).
    boot_time_min: float = 60.0
    boot_time_max: float = 180.0


_BASE = {
    "arista": VendorQuirks(
        rsvp_refresh_interval=30.0,
        container_cpu=0.5,
        container_memory_gb=1.0,
        boot_time_min=50.0,
        boot_time_max=110.0,
    ),
    "nokia": VendorQuirks(
        rsvp_refresh_interval=30.0,
        rsvp_cleanup_multiplier=3.0,
        container_cpu=0.5,
        container_memory_gb=2.0,
        boot_time_min=40.0,
        boot_time_max=90.0,
    ),
}

# Known-buggy builds, keyed by (vendor, os_version).
_BUGGY_BUILDS = {
    # The iBGP metric-selection regression.
    ("arista", "4.29.1F-metric-bug"): {"ibgp_prefer_higher_igp_metric": True},
    # The parser that crashes on unusual advertisements.
    ("nokia", "23.10-parsecrash"): {"crash_on_community_count": 12},
    # The peer whose advertisements are unusual but valid.
    ("arista", "4.31.2F-chatty"): {"community_padding": 16},
    # The build that never learned to send PathErr.
    ("nokia", "22.6-rsvp-quiet"): {
        "rsvp_suppress_path_err": True,
        "rsvp_refresh_interval": 30.0,
    },
}


def quirks_for(vendor: str, os_version: str = "") -> VendorQuirks:
    """The quirk set for a given vendor + software build."""
    base = _BASE.get(vendor, VendorQuirks())
    overrides = _BUGGY_BUILDS.get((vendor, os_version))
    if overrides:
        return replace(base, **overrides)
    return base
