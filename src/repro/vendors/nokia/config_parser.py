"""Nokia SR Linux configuration parser.

SR Linux configuration here is the flat ``set`` form (the output of
``info flat``): every line is ``set / <path...> <value>``. The grammar is
completely different from EOS — which is the point: multi-vendor
topologies exercise two independent configuration languages and two
independent vendor behaviours, as the paper's approach requires.

Supported subtrees::

    set / system name host-name <name>
    set / system grpc-server <name> ...           (management; recorded)
    set / system gnmi-server ...                  (management; recorded)
    set / interface <if> admin-state enable|disable
    set / interface <if> description "<text>"
    set / interface <if> subinterface 0 ipv4 address <a.b.c.d/len>
    set / network-instance default protocols isis instance <tag> net <net>
    set / network-instance default protocols isis instance <tag>
          interface <if> [metric N] [passive true]
    set / network-instance default protocols bgp autonomous-system <asn>
    set / network-instance default protocols bgp router-id <ip>
    set / network-instance default protocols bgp neighbor <ip>
          peer-as N | update-source <if> | next-hop-self true |
          send-community true | import-policy <rm> | export-policy <rm> |
          admin-state disable
    set / network-instance default protocols bgp network <prefix>
    set / network-instance default protocols bgp redistribute connected|isis
    set / network-instance default protocols mpls admin-state enable
    set / network-instance default protocols rsvp refresh-interval <sec>
    set / network-instance default protocols mpls tunnel <name>
          destination <ip>
    set / network-instance default static-routes route <prefix>
          next-hop <ip>
"""

from __future__ import annotations

import shlex
from typing import Optional

from repro.device.interfaces import IsisInterfaceSettings
from repro.device.model import (
    BgpConfig,
    BgpNeighborConfig,
    DeviceConfig,
    IsisConfig,
    MplsTunnelConfig,
    StaticRouteConfig,
)
from repro.net.addr import AddressError, Prefix, parse_ipv4
from repro.vendors.base import ConfigDiagnostic


class NokiaConfigParser:
    """Parser for one flat-``set`` configuration document."""
    def __init__(self) -> None:
        self.device = DeviceConfig()
        self.diagnostics: list[ConfigDiagnostic] = []

    def parse(self, text: str) -> tuple[DeviceConfig, list[ConfigDiagnostic]]:
        for number, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith(("#", "--")):
                continue
            try:
                tokens = shlex.split(line)
            except ValueError:
                self._invalid(number, raw, "unbalanced quoting")
                continue
            if tokens[:2] != ["set", "/"] and tokens[:1] != ["set"]:
                self._invalid(number, raw, "expected 'set /' statement")
                continue
            path = tokens[2:] if tokens[:2] == ["set", "/"] else tokens[1:]
            try:
                self._apply(number, raw, path)
            except (AddressError, IndexError, ValueError):
                self._invalid(number, raw, "malformed value")
        return self.device, self.diagnostics

    # -- dispatch -------------------------------------------------------------

    def _apply(self, number: int, raw: str, path: list[str]) -> None:
        if not path:
            self._invalid(number, raw, "empty path")
        elif path[0] == "system":
            self._system(number, raw, path[1:])
        elif path[0] == "interface":
            self._interface(number, raw, path[1:])
        elif path[:2] == ["network-instance", "default"]:
            self._network_instance(number, raw, path[2:])
        else:
            self._invalid(number, raw, f"unknown subtree: {path[0]}")

    def _system(self, number: int, raw: str, path: list[str]) -> None:
        if path[:2] == ["name", "host-name"] and len(path) == 3:
            self.device.hostname = path[2]
        elif path and path[0] in (
            "grpc-server",
            "gnmi-server",
            "tls",
            "ssh-server",
            "lldp",
            "logging",
            "aaa",
            "ntp",
            "snmp",
            "management",
        ):
            self.device.management_services.append(" ".join(path))
        else:
            self._invalid(number, raw, "unknown system leaf")

    def _interface(self, number: int, raw: str, path: list[str]) -> None:
        name = path[0]
        iface = self.device.interface(name)
        iface.switchport = False  # SR Linux data ports are routed
        rest = path[1:]
        if rest[:1] == ["admin-state"]:
            iface.shutdown = rest[1] == "disable"
        elif rest[:1] == ["description"]:
            iface.description = " ".join(rest[1:])
        elif rest[:4] == ["subinterface", "0", "ipv4", "address"]:
            address_text, _, length = rest[4].partition("/")
            iface.address = parse_ipv4(address_text)
            iface.prefix_length = int(length)
        elif rest[:1] == ["mtu"]:
            pass
        else:
            self._invalid(number, raw, "unknown interface leaf")

    def _network_instance(self, number: int, raw: str, path: list[str]) -> None:
        if path[:2] == ["protocols", "isis"]:
            self._isis(number, raw, path[2:])
        elif path[:2] == ["protocols", "bgp"]:
            self._bgp(number, raw, path[2:])
        elif path[:2] == ["protocols", "mpls"]:
            self._mpls(number, raw, path[2:])
        elif path[:2] == ["protocols", "rsvp"]:
            self._rsvp(number, raw, path[2:])
        elif path[:2] == ["static-routes", "route"]:
            self._static_route(number, raw, path[2:])
        else:
            self._invalid(number, raw, "unknown network-instance subtree")

    # -- protocols ---------------------------------------------------------------

    def _isis(self, number: int, raw: str, path: list[str]) -> None:
        if path[:1] != ["instance"] or len(path) < 3:
            self._invalid(number, raw, "expected isis instance <tag> ...")
            return
        tag = path[1]
        isis = self.device.isis or IsisConfig(tag=tag)
        isis.tag = tag
        self.device.isis = isis
        rest = path[2:]
        if rest[:1] == ["net"] and len(rest) == 2:
            isis.net = rest[1]
        elif rest[:1] == ["interface"] and len(rest) >= 2:
            iface = self.device.interface(self._strip_subif(rest[1]))
            iface.switchport = False
            if iface.isis is None:
                iface.isis = IsisInterfaceSettings(tag=tag)
            iface.isis.tag = tag
            knobs = rest[2:]
            if not knobs:
                return
            if knobs[0] == "metric" and len(knobs) == 2:
                iface.isis.metric = int(knobs[1])
            elif knobs[0] == "passive" and len(knobs) == 2:
                iface.isis.passive = knobs[1] == "true"
            elif knobs[0] == "admin-state":
                iface.isis.enabled = knobs[1] == "enable"
            else:
                self._invalid(number, raw, "unknown isis interface knob")
        elif rest[:1] == ["admin-state"]:
            pass
        elif rest[:2] == ["ipv4-unicast", "admin-state"]:
            isis.ipv4_unicast = rest[2] == "enable"
        else:
            self._invalid(number, raw, "unknown isis leaf")

    @staticmethod
    def _strip_subif(name: str) -> str:
        base, _, _sub = name.partition(".")
        return base

    def _bgp(self, number: int, raw: str, path: list[str]) -> None:
        if self.device.bgp is None:
            self.device.bgp = BgpConfig(asn=0)
        bgp = self.device.bgp
        if path[:1] == ["autonomous-system"]:
            bgp.asn = int(path[1])
        elif path[:1] == ["router-id"]:
            bgp.router_id = parse_ipv4(path[1])
        elif path[:1] == ["neighbor"] and len(path) >= 3:
            peer = parse_ipv4(path[1])
            neighbor = bgp.neighbors.get(peer)
            if neighbor is None:
                neighbor = BgpNeighborConfig(peer_address=peer, remote_as=0)
                bgp.neighbors[peer] = neighbor
            knob, values = path[2], path[3:]
            if knob == "peer-as":
                neighbor.remote_as = int(values[0])
            elif knob == "update-source":
                neighbor.update_source = values[0]
            elif knob == "next-hop-self":
                neighbor.next_hop_self = values[0] == "true"
            elif knob == "send-community":
                neighbor.send_community = values[0] == "true"
            elif knob == "import-policy":
                neighbor.route_map_in = values[0]
            elif knob == "export-policy":
                neighbor.route_map_out = values[0]
            elif knob == "admin-state":
                neighbor.shutdown = values[0] == "disable"
            elif knob == "route-reflector-client":
                neighbor.route_reflector_client = values[0] == "true"
            elif knob == "description":
                neighbor.description = " ".join(values)
            else:
                self._invalid(number, raw, "unknown bgp neighbor knob")
        elif path[:1] == ["network"]:
            bgp.networks.append(Prefix.parse(path[1]))
        elif path[:2] == ["redistribute", "connected"]:
            bgp.redistribute_connected = True
        elif path[:2] == ["redistribute", "isis"]:
            bgp.redistribute_isis = True
        elif path[:1] == ["admin-state"]:
            pass
        else:
            self._invalid(number, raw, "unknown bgp leaf")

    def _mpls(self, number: int, raw: str, path: list[str]) -> None:
        if path[:1] == ["admin-state"]:
            self.device.mpls.enabled = path[1] == "enable"
        elif path[:1] == ["tunnel"] and len(path) >= 4 and path[2] == "destination":
            self.device.mpls.enabled = True
            self.device.mpls.traffic_eng = True
            self.device.mpls.tunnels.append(
                MplsTunnelConfig(name=path[1], destination=parse_ipv4(path[3]))
            )
        else:
            self._invalid(number, raw, "unknown mpls leaf")

    def _rsvp(self, number: int, raw: str, path: list[str]) -> None:
        if path[:1] == ["refresh-interval"]:
            self.device.mpls.rsvp_refresh_interval = float(path[1])
            self.device.mpls.traffic_eng = True
            self.device.mpls.enabled = True
        elif path[:1] == ["admin-state"]:
            self.device.mpls.traffic_eng = path[1] == "enable"
            self.device.mpls.enabled = self.device.mpls.enabled or (
                path[1] == "enable"
            )
        else:
            self._invalid(number, raw, "unknown rsvp leaf")

    def _static_route(self, number: int, raw: str, path: list[str]) -> None:
        prefix = Prefix.parse(path[0])
        if path[1:2] == ["next-hop"]:
            self.device.static_routes.append(
                StaticRouteConfig(prefix=prefix, next_hop=parse_ipv4(path[2]))
            )
        elif path[1:2] == ["blackhole"]:
            self.device.static_routes.append(
                StaticRouteConfig(prefix=prefix, discard=True)
            )
        else:
            self._invalid(number, raw, "unknown static-route leaf")

    def _invalid(self, number: int, line: str, message: str) -> None:
        self.diagnostics.append(
            ConfigDiagnostic(line_number=number, line=line, message=message)
        )


def parse_nokia_config(text: str) -> tuple[DeviceConfig, list[ConfigDiagnostic]]:
    """Parse an SR Linux flat-``set`` configuration document."""
    return NokiaConfigParser().parse(text)
