"""Nokia SR Linux-like router OS emulation."""

from repro.vendors.nokia.srl import NokiaSrl

__all__ = ["NokiaSrl"]
