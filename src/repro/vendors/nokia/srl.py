"""The Nokia SR Linux-like router OS."""

from __future__ import annotations

from repro.device.model import DeviceConfig
from repro.vendors.base import ConfigDiagnostic, RouterOS
from repro.vendors.nokia.cli import NokiaCli
from repro.vendors.nokia.config_parser import parse_nokia_config


class NokiaSrl(RouterOS):
    """Emulated Nokia SR Linux (container image: srlinux)."""

    vendor = "nokia"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._cli = NokiaCli(self)

    def parse_config(
        self, text: str
    ) -> tuple[DeviceConfig, list[ConfigDiagnostic]]:
        return parse_nokia_config(text)

    def cli(self, command: str) -> str:
        return self._cli.execute(command)
