"""Nokia SR Linux ``show`` commands (distinct output shape from EOS)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.addr import format_ipv4
from repro.rib.route import Protocol

if TYPE_CHECKING:
    from repro.vendors.nokia.srl import NokiaSrl

_PROTO_NAMES = {
    Protocol.CONNECTED: "local",
    Protocol.LOCAL: "host",
    Protocol.STATIC: "static",
    Protocol.ISIS: "isis",
    Protocol.BGP_EXTERNAL: "bgp",
    Protocol.BGP_INTERNAL: "bgp",
    Protocol.RSVP_TE: "rsvp-te",
}


class NokiaCli:
    """Command dispatcher for one SR Linux device."""
    def __init__(self, router: "NokiaSrl") -> None:
        self.router = router

    def execute(self, command: str) -> str:
        command = " ".join(command.split())
        handlers = [
            ("show network-instance default route-table", self.show_route_table),
            ("show network-instance default protocols bgp neighbor", self.show_bgp),
            ("show network-instance default protocols isis adjacency", self.show_isis_adjacency),
            ("show network-instance default protocols isis database", self.show_isis_database),
            ("show interface", self.show_interface),
            ("show version", self.show_version),
            ("info", self.show_info),
        ]
        for prefix, handler in handlers:
            if command == prefix or command.startswith(prefix + " "):
                return handler()
        return f"Error: Unknown command: {command}"

    def show_version(self) -> str:
        return (
            f"Hostname          : {self.router.name}\n"
            f"Software Version  : {self.router.os_version or 'v24.3.1 (emulated)'}\n"
            f"Chassis Type      : 7220 IXR-D2 (container)\n"
        )

    def show_route_table(self) -> str:
        lines = [
            "IPv4 unicast route table of network instance default",
            "-" * 72,
            f"{'Prefix':<22}{'Owner':<10}{'Metric':>8}  Next-hop",
            "-" * 72,
        ]
        for route in sorted(
            self.router.rib.best_routes(),
            key=lambda r: (r.prefix.network, r.prefix.length),
        ):
            owner = _PROTO_NAMES.get(route.protocol, "?")
            hops = ", ".join(str(nh) for nh in route.next_hops) or "blackhole"
            lines.append(
                f"{str(route.prefix):<22}{owner:<10}{route.metric:>8}  {hops}"
            )
        return "\n".join(lines) + "\n"

    def show_bgp(self) -> str:
        bgp = self.router.bgp
        if bgp is None:
            return "Error: bgp is not configured\n"
        lines = [
            f"BGP neighbor summary for network-instance default",
            f"Autonomous system {bgp.config.asn}, "
            f"router-id {format_ipv4(bgp.router_id)}",
            f"{'Peer':<18}{'AS':>8}{'State':<14}{'RcvdRoutes':>12}",
        ]
        for row in bgp.summary():
            lines.append(
                f"{row['neighbor']:<18}{row['remote_as']:>8}"
                f"{row['state']:<14}{row['prefixes_received']:>12}"
            )
        return "\n".join(lines) + "\n"

    def show_isis_adjacency(self) -> str:
        isis = self.router.isis
        if isis is None:
            return "Error: isis is not configured\n"
        lines = [f"{'System Id':<20}{'Interface':<18}{'State':<8}"]
        for adj in isis.adjacency_summary():
            lines.append(f"{adj.system_id:<20}{adj.port.name:<18}{'up':<8}")
        return "\n".join(lines) + "\n"

    def show_isis_database(self) -> str:
        isis = self.router.isis
        if isis is None:
            return "Error: isis is not configured\n"
        lines = [f"{'LSP Id':<26}{'Sequence':>10}"]
        for lsp in isis.database_summary():
            lines.append(f"{lsp.system_id + '.00-00':<26}{lsp.sequence:>10}")
        return "\n".join(lines) + "\n"

    def show_interface(self) -> str:
        lines = []
        for name in sorted(self.router.ports):
            port = self.router.ports[name]
            state = "up" if port.is_up else "down"
            lines.append(f"{name} is {state}")
            if port.config.address is not None:
                lines.append(
                    f"  ipv4 address {format_ipv4(port.config.address)}"
                    f"/{port.config.prefix_length}"
                )
        return "\n".join(lines) + "\n"

    def show_info(self) -> str:
        return self.router.config_text or "-- (no configuration)\n"
