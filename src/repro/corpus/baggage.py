"""The production-config "baggage": lines real WAN configs carry that a
reference model's grammar does not cover.

The paper's E2 reports 38–42 such lines per configuration — management
daemons (PowerManager, LedPolicy, Thermostat, …), management services
(gRPC, gNMI, SSL profiles), and MPLS / MPLS-TE enablement. The emulated
OS accepts all of them; the model baseline counts them as unrecognized.
"""

from __future__ import annotations

# Every line here is (a) accepted by the Arista emulation parser and
# (b) outside the model baseline's grammar.
_DAEMONS = """\
daemon TerminAttr
   exec /usr/bin/TerminAttr -cvaddr=apiserver:9910 -taillogs
   no shutdown
daemon PowerManager
   exec /usr/bin/PowerManager
   no shutdown
daemon LedPolicy
   exec /usr/bin/LedPolicy --policy=datacenter
   no shutdown
daemon Thermostat
   exec /usr/bin/Thermostat --profile=quiet
   no shutdown
"""

_MANAGEMENT = """\
management api gnmi
   transport grpc default
   ssl profile gnmi-ssl
management api http-commands
   no shutdown
   protocol https
management security
   ssl profile gnmi-ssl
   certificate gnmi.crt key gnmi.key
   tls versions 1.2
"""

_MPLS = """\
mpls ip
mpls rsvp
   refresh interval 30
router traffic-engineering
   rsvp
"""

_MISC = """\
service routing protocols model multi-agent
transceiver qsfp default-mode 4x10G
queue-monitor length
hardware counter feature gre tunnel interface out
sflow sample 16384
sflow destination 127.0.0.1
errdisable recovery interval 300
event-monitor all
platform trident mmu queue profile wan-profile
ip icmp rate-limit-unreachable 500
load-interval default 30
"""

# Optional extras used to vary the per-device count within the paper's
# 38–42 band.
_EXTRAS = [
    "daemon Bfd\n   exec /usr/bin/BfdMonitor\n   no shutdown",
    "queue-monitor streaming",
    "hardware counter feature route ipv4 out",
    "sflow polling-interval 20",
]


def baggage_lines(variant: int = 0) -> str:
    """The full baggage block, with ``variant`` extra stanzas (0–4)."""
    blocks = [_DAEMONS, _MANAGEMENT, _MPLS, _MISC]
    for extra in _EXTRAS[: max(0, min(variant, len(_EXTRAS)))]:
        blocks.append(extra + "\n")
    return "".join(blocks)


def count_config_lines(text: str) -> int:
    """Non-blank, non-comment configuration lines."""
    return sum(
        1
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("!")
    )
