"""The paper's Fig. 2 scenario: a 6-node iBGP/eBGP/IS-IS test network.

Production configurations simplified down to six Arista routers across
three autonomous systems chained by eBGP::

    AS65002          AS65003          AS65004
    r1 -- r2  ====  r3 -- r4  ====  r5 -- r6
          eBGP (cut in the buggy variant)

Within each AS: IS-IS for loopback reachability and an iBGP session
between loopbacks with next-hop-self at the borders. Loopbacks are
originated into BGP, so cross-AS reachability exists only through the
eBGP chain — cutting the r2–r3 session severs AS65003 (and AS65004)
from AS65002, which is exactly the regression the paper's differential
reachability query uncovers.

Each configuration carries the full production "baggage"
(:mod:`repro.corpus.baggage`) so its line count lands in the paper's
62–82 band and the model baseline's unrecognized count lands in 38–42.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.baggage import baggage_lines
from repro.topo.builder import TopologyBuilder
from repro.topo.model import Topology

# Router index -> (AS number, loopback).
PLAN = {
    1: (65002, "2.2.2.1"),
    2: (65002, "2.2.2.2"),
    3: (65003, "2.2.2.3"),
    4: (65003, "2.2.2.4"),
    5: (65004, "2.2.2.5"),
    6: (65004, "2.2.2.6"),
}

# Chain link i joins r<i> and r<i+1> on 10.0.<i>.0/31.
_EBGP_LINKS = {2, 4}  # links r2-r3 and r4-r5 cross AS boundaries

AS_MEMBERS = {
    65002: ("r1", "r2"),
    65003: ("r3", "r4"),
    65004: ("r5", "r6"),
}


def _link_subnet(i: int) -> tuple[str, str]:
    return f"10.0.{i}.0", f"10.0.{i}.1"


def _is_ebgp_link(i: int) -> bool:
    return i in _EBGP_LINKS


@dataclass
class Fig2Scenario:
    """Topology plus healthy and buggy configurations for E1."""
    topology: Topology
    configs: dict[str, str]
    buggy_configs: dict[str, str]

    @property
    def loopbacks(self) -> dict[str, str]:
        return {f"r{i}": loopback for i, (_asn, loopback) in PLAN.items()}

    @property
    def as_members(self) -> dict[int, tuple[str, ...]]:
        return {asn: tuple(members) for asn, members in AS_MEMBERS.items()}

    def buggy_topology(self) -> Topology:
        """The same wiring with the buggy configurations applied."""
        return _build_topology(self.buggy_configs)


def _router_config(index: int, *, cut_r2_r3: bool) -> str:
    asn, loopback = PLAN[index]
    name = f"r{index}"
    area = {65002: "49.0002", 65003: "49.0003", 65004: "49.0004"}[asn]
    lines: list[str] = [
        f"hostname {name}",
        "ip routing",
        "router isis default",
        f"   net {area}.0000.0000.000{index}.00",
        "   address-family ipv4 unicast",
        "interface Loopback0",
        f"   ip address {loopback}/32",
        "   isis enable default",
        "   isis passive-interface default",
    ]

    # Interfaces: Ethernet1 faces r<index-1>, Ethernet2 faces r<index+1>.
    neighbors_ebgp: list[tuple[str, int]] = []  # (peer link ip, peer asn)
    if index > 1:
        left = index - 1
        _lo, hi = _link_subnet(left)
        lines += [
            "interface Ethernet1",
            f"   description to r{left}",
            "   no switchport",
            f"   ip address {hi}/31",
        ]
        if _is_ebgp_link(left):
            peer_asn = PLAN[left][0]
            neighbors_ebgp.append((_lo, peer_asn))
        else:
            lines.append("   isis enable default")
    if index < 6:
        right = index
        lo, _hi = _link_subnet(right)
        lines += [
            "interface Ethernet2",
            f"   description to r{index + 1}",
            "   no switchport",
            f"   ip address {lo}/31",
        ]
        if _is_ebgp_link(right):
            peer_asn = PLAN[index + 1][0]
            neighbors_ebgp.append((_hi, peer_asn))
        else:
            lines.append("   isis enable default")

    lines += [
        f"router bgp {asn}",
        f"   router-id {loopback}",
    ]
    # iBGP to the other member of this AS, over loopbacks.
    for peer_name in AS_MEMBERS[asn]:
        if peer_name == name:
            continue
        peer_index = int(peer_name[1:])
        peer_loopback = PLAN[peer_index][1]
        lines += [
            f"   neighbor {peer_loopback} remote-as {asn}",
            f"   neighbor {peer_loopback} update-source Loopback0",
            f"   neighbor {peer_loopback} next-hop-self",
            f"   neighbor {peer_loopback} send-community",
        ]
    for peer_ip, peer_asn in neighbors_ebgp:
        lines += [
            f"   neighbor {peer_ip} remote-as {peer_asn}",
            f"   neighbor {peer_ip} description ebgp to AS{peer_asn}",
        ]
        if cut_r2_r3 and {asn, peer_asn} == {65002, 65003}:
            lines.append(f"   neighbor {peer_ip} shutdown")
    lines.append(f"   network {loopback}/32")

    # Day-one operational lines (recognized by both backends) keep the
    # total line count inside the paper's 62-82 band.
    lines += [
        "ntp server 10.200.0.10",
        "snmp-server community netops ro",
        "logging host 10.200.0.20",
        "spanning-tree mode mstp",
    ]

    body = "\n".join(lines) + "\n"
    # Per-device baggage variant spreads the unrecognized-line count
    # across the paper's 38-42 band (variant 0 -> 38, 1 -> 41, 2 -> 42).
    variant = {1: 0, 2: 2, 3: 1, 4: 2, 5: 1, 6: 0}[index]
    return body + baggage_lines(variant)


def _build_topology(configs: dict[str, str]) -> Topology:
    builder = TopologyBuilder("fig2")
    for i in range(1, 7):
        builder.node(
            f"r{i}",
            vendor="arista",
            os_version="4.34.0F",
            config=configs[f"r{i}"],
        )
    for i in range(1, 6):
        builder.link(
            f"r{i}", f"r{i + 1}", a_int="Ethernet2", z_int="Ethernet1"
        )
    return builder.build()


def fig2_scenario() -> Fig2Scenario:
    """Build the healthy and buggy versions of the Fig. 2 network."""
    configs = {
        f"r{i}": _router_config(i, cut_r2_r3=False) for i in range(1, 7)
    }
    buggy = {f"r{i}": _router_config(i, cut_r2_r3=True) for i in range(1, 7)}
    return Fig2Scenario(
        topology=_build_topology(configs),
        configs=configs,
        buggy_configs=buggy,
    )
