"""Production-replica scenario: the paper's 30-node convergence test.

A multi-vendor WAN slice (Arista + Nokia alternating) in one AS:
IS-IS everywhere, an iBGP full mesh over loopbacks, and external eBGP
peers at edge routers injecting synthetic full tables
("production-recorded routes... millions from each BGP peer", scaled by
``routes_per_peer``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.protocols.timers import TimerProfile, PRODUCTION_TIMERS

from repro.corpus.render import IfaceSpec, NeighborSpec, RouterSpec, render_config
from repro.corpus.routes import InjectorSpec, full_table
from repro.topo.builder import TopologyBuilder, interface_name
from repro.topo.model import Topology
from repro.topo.builder import wan_topology

CORE_ASN = 65000

# The paper injects "millions from each BGP peer"; benches run a scaled
# route count and scale session throughput identically so transfer
# *times* stay realistic.
MODELED_ROUTES_PER_PEER = 2_000_000


def scaled_timers(
    routes_per_peer: int,
    *,
    modeled_routes_per_peer: int = MODELED_ROUTES_PER_PEER,
    base: TimerProfile = PRODUCTION_TIMERS,
) -> TimerProfile:
    """Production timers with BGP throughput scaled to the route count.

    With ``routes_per_peer`` synthetic routes standing in for
    ``modeled_routes_per_peer`` real ones, a full-table transfer takes
    the same simulated time either way.
    """
    factor = routes_per_peer / modeled_routes_per_peer
    return dataclasses.replace(
        base, bgp_update_rate=base.bgp_update_rate * factor
    )


@dataclass
class ProductionScenario:
    """The production replica: topology, configs, injector specs."""
    topology: Topology
    configs: dict[str, str]
    injectors: list[InjectorSpec] = field(default_factory=list)
    loopbacks: dict[str, str] = field(default_factory=dict)


def production_scenario(
    n: int = 30,
    *,
    vendors: tuple[str, ...] = ("arista", "nokia"),
    degree: int = 3,
    peers: int = 4,
    routes_per_peer: int = 20_000,
    route_reflectors: int = 0,
    seed: int = 7,
) -> ProductionScenario:
    """Build the 30-node replica with ``peers`` external route injectors.

    With ``route_reflectors`` > 0 the iBGP design is hub-and-spoke: the
    first ``route_reflectors`` routers (sorted order) form a full mesh
    among themselves and reflect for everyone else; the rest peer only
    with the reflectors — the session count drops from O(n²) to O(n·r).
    """
    skeleton = wan_topology(n, degree=degree, seed=seed, vendors=vendors)
    # Re-build with configs; reuse the skeleton's wiring.
    builder = TopologyBuilder(f"production-{n}")
    vendor_of = {spec.name: spec.vendor for spec in skeleton.nodes}
    for spec in skeleton.nodes:
        builder.node(spec.name, vendor=spec.vendor)
    port_counter: dict[str, int] = {name: 0 for name in vendor_of}
    # node -> list of interface specs
    ifaces: dict[str, list[IfaceSpec]] = {name: [] for name in vendor_of}
    for j, link in enumerate(skeleton.links):
        a, z = link.a.node, link.z.node
        subnet_base = (10 << 24) | (1 << 16) | (j * 2)
        addr_a = _fmt(subnet_base)
        addr_z = _fmt(subnet_base + 1)
        for node, addr, peer in ((a, addr_a, z), (z, addr_z, a)):
            port_counter[node] += 1
            name = interface_name(vendor_of[node], port_counter[node])
            ifaces[node].append(
                IfaceSpec(
                    name=name,
                    address=f"{addr}/31",
                    isis=True,
                    description=f"core to {peer}",
                )
            )
        builder.link(
            a, z,
            a_int=ifaces[a][-1].name if False else ifaces[a][-1].name,
            z_int=ifaces[z][-1].name,
        )

    loopbacks = {
        name: f"10.255.0.{i + 1}" for i, name in enumerate(sorted(vendor_of))
    }

    # External peers attach to the first `peers` routers (one extra port
    # each) and speak eBGP from their own AS.
    injectors: list[InjectorSpec] = []
    edge_nodes = sorted(vendor_of)[:peers]
    for k, node in enumerate(edge_nodes):
        port_counter[node] += 1
        port = interface_name(vendor_of[node], port_counter[node])
        subnet_base = (10 << 24) | (9 << 16) | (k * 2)
        gateway_ip = _fmt(subnet_base)
        injector_ip = _fmt(subnet_base + 1)
        peer_asn = 64900 + k
        ifaces[node].append(
            IfaceSpec(
                name=port,
                address=f"{gateway_ip}/31",
                isis=False,
                description=f"peering to AS{peer_asn}",
            )
        )
        injectors.append(
            InjectorSpec(
                name=f"peer-{k}",
                asn=peer_asn,
                ip=injector_ip,
                gateway_node=node,
                gateway_port=port,
                gateway_ip=gateway_ip,
                prefixes=full_table(routes_per_peer, seed=seed + k),
            )
        )

    configs: dict[str, str] = {}
    ordered = sorted(vendor_of)
    reflectors = set(ordered[:route_reflectors]) if route_reflectors else set()
    for i, node in enumerate(ordered):
        if not reflectors:
            ibgp_peers = [peer for peer in ordered if peer != node]
        elif node in reflectors:
            ibgp_peers = [peer for peer in ordered if peer != node]
        else:
            ibgp_peers = sorted(reflectors)
        neighbors = [
            NeighborSpec(
                ip=loopbacks[peer],
                remote_as=CORE_ASN,
                update_source=_loopback_name(vendor_of[node]),
                next_hop_self=True,
                route_reflector_client=(
                    node in reflectors and peer not in reflectors
                ),
            )
            for peer in ibgp_peers
        ]
        for injector in injectors:
            if injector.gateway_node == node:
                neighbors.append(
                    NeighborSpec(
                        ip=injector.ip,
                        remote_as=injector.asn,
                        description=f"external peer {injector.name}",
                    )
                )
        spec = RouterSpec(
            hostname=node,
            vendor=vendor_of[node],
            loopback=loopbacks[node],
            isis_net=f"49.0001.0000.0000.{i + 1:04d}.00",
            asn=CORE_ASN,
            neighbors=neighbors,
            interfaces=ifaces[node],
            networks=[f"{loopbacks[node]}/32"],
            baggage_variant=i % 4,
        )
        configs[node] = render_config(spec)
        builder.topology.set_config(node, configs[node])

    return ProductionScenario(
        topology=builder.build(),
        configs=configs,
        injectors=injectors,
        loopbacks=loopbacks,
    )


def _fmt(value: int) -> str:
    return ".".join(str((value >> s) & 0xFF) for s in (24, 16, 8, 0))


def _loopback_name(vendor: str) -> str:
    return "Loopback0" if vendor == "arista" else "lo0"
