"""External BGP peers and synthetic route tables.

:class:`RouteInjector` is a lightweight BGP speaker (not a router OS)
standing in for the paper's "production-recorded routes... injected from
each BGP peer": it attaches to an edge router's subnet through the
fabric, brings up an eBGP session, and streams a synthetic table in
batched UPDATEs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.kube.fabric import Fabric
from repro.net.addr import Prefix, format_ipv4, parse_ipv4
from repro.obs import bus
from repro.protocols.bgp import (
    Keepalive,
    Notification,
    Open,
    Update,
    max_routes_per_update,
)
from repro.protocols.bgp_attrs import Origin, PathAttributes, intern_attrs
from repro.protocols.timers import TimerProfile, PRODUCTION_TIMERS
from repro.sim.kernel import SimKernel


def full_table(
    count: int,
    *,
    seed: int = 0,
    base: str = "100.0.0.0",
) -> list[Prefix]:
    """A deterministic synthetic table of ``count`` /24s.

    Consecutive /24s starting at ``base`` offset by the seed, mimicking
    the aggregated shape of a real table without collisions between
    peers (each seed lands in its own /8-ish region).
    """
    start = parse_ipv4(base) + ((seed % 64) << 22)
    prefixes = []
    for i in range(count):
        network = (start + (i << 8)) & 0xFFFFFFFF
        prefixes.append(Prefix.containing(network, 24))
    return prefixes


@dataclass
class InjectorSpec:
    """Declarative description of one external peer."""

    name: str
    asn: int
    ip: str
    gateway_node: str
    gateway_port: str
    gateway_ip: str
    prefixes: list[Prefix] = field(default_factory=list)
    communities: tuple = ()


class RouteInjector:
    """A live external BGP speaker driven by an :class:`InjectorSpec`."""

    def __init__(
        self,
        spec: InjectorSpec,
        kernel: SimKernel,
        fabric: Fabric,
        *,
        timers: TimerProfile = PRODUCTION_TIMERS,
        batch_size: int = 2_000,
    ) -> None:
        self.spec = spec
        self.kernel = kernel
        self.fabric = fabric
        self.timers = timers
        self.batch_size = batch_size
        self.ip = parse_ipv4(spec.ip)
        self.gateway_ip = parse_ipv4(spec.gateway_ip)
        self.established = False
        self.established_at: Optional[float] = None
        self.routes_sent = 0
        self.session_resets = 0
        self._attrs = intern_attrs(
            PathAttributes(
                next_hop=self.ip,
                as_path=(spec.asn,),
                origin=Origin.IGP,
                communities=tuple(spec.communities),
            )
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self.fabric.attach_external(
            self.spec.name,
            self.spec.gateway_node,
            self.spec.gateway_port,
            self.ip,
            self._on_datagram,
        )
        self._attempt_connect()

    def _attempt_connect(self) -> None:
        if self.established:
            return
        self._send(Open(asn=self.spec.asn, router_id=self.ip,
                        hold_time=self.timers.bgp_hold))
        retry = self.timers.bgp_connect_retry
        self.kernel.schedule(
            self.kernel.jitter(retry, retry),
            self._attempt_connect,
            label=f"injector-connect:{self.spec.name}",
        )

    def _send(self, payload: Any) -> bool:
        return self.fabric.send_external(self.spec.name, self.gateway_ip, payload)

    # -- session ---------------------------------------------------------------

    def _on_datagram(self, remote_ip: int, local_ip: int, payload: Any) -> None:
        del local_ip
        if remote_ip != self.gateway_ip:
            return
        if isinstance(payload, Open):
            if not self.established:
                self.established = True
                self.established_at = self.kernel.now
                if bus.ACTIVE.enabled:
                    bus.ACTIVE.emit(
                        "inject.session.up",
                        self.kernel.now,
                        node=self.spec.gateway_node,
                        injector=self.spec.name,
                    )
                self._send(
                    Open(asn=self.spec.asn, router_id=self.ip,
                         hold_time=self.timers.bgp_hold)
                )
                self._send(Keepalive())
                self._schedule_keepalive()
                self._announce_all()
        elif isinstance(payload, Notification):
            self.established = False
            self.session_resets += 1
        # Updates/keepalives from the gateway are absorbed.

    def _schedule_keepalive(self) -> None:
        if not self.established:
            return
        interval = self.timers.bgp_keepalive
        self.kernel.schedule(
            self.kernel.jitter(interval, interval * 0.1),
            self._keepalive_tick,
            label=f"injector-keepalive:{self.spec.name}",
        )

    def _keepalive_tick(self) -> None:
        if self.established:
            self._send(Keepalive())
            self._schedule_keepalive()

    # -- route push ----------------------------------------------------------------

    def _announce_all(self) -> None:
        prefixes = self.spec.prefixes
        rate = self.timers.bgp_update_rate
        chunk = min(self.batch_size, max_routes_per_update(self.timers))
        for index, offset in enumerate(range(0, len(prefixes), chunk)):
            batch = tuple(prefixes[offset : offset + chunk])
            update = Update(
                announce=((self._attrs, batch),), wire_cost=len(batch) / rate
            )
            # Stream batches back-to-back; the fabric serializes them on
            # the session, each carrying its route-proportional cost.
            self.kernel.schedule(
                0.001 * index,
                lambda u=update: self._push(u),
                label=f"injector-update:{self.spec.name}",
            )

    def _push(self, update: Update) -> None:
        if self.established and self._send(update):
            self.routes_sent += update.route_count
            if bus.ACTIVE.enabled:
                bus.ACTIVE.count("inject.routes.sent", update.route_count)

    def withdraw(self, prefixes: list[Prefix]) -> None:
        """Withdraw previously announced routes (what-if support)."""
        rate = self.timers.bgp_update_rate
        for offset in range(0, len(prefixes), self.batch_size):
            batch = tuple(prefixes[offset : offset + self.batch_size])
            self._send(
                Update(withdraw=batch, wire_cost=len(batch) / rate)
            )

    def __repr__(self) -> str:
        state = "established" if self.established else "idle"
        return f"RouteInjector({self.spec.name!r}, {format_ipv4(self.ip)}, {state})"
