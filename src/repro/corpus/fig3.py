"""The paper's Fig. 3 scenario: a 3-node IS-IS line, R1 <> R2 <> R3.

R1 carries the exact configuration shape of the paper's Fig. 3 snippet —
``ip address`` *before* ``no switchport`` on Ethernet2, plus
``isis enable default`` — which the real router accepts and the model
baseline mis-applies (issues #1 and #2). R2 and R3 use the conventional
ordering, so the model divergence is localized to R1, reproducing the
paper's observed asymmetry (model: R2→R1 dropped; emulation: full
pairwise reachability).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topo.builder import TopologyBuilder
from repro.topo.model import Topology

R1_CONFIG = """\
hostname r1
ip routing
!
router isis default ! Correctly parsed.
   net 49.0001.1010.1040.1030.00
   address-family ipv4 unicast
!
interface Loopback0 ! Correctly parsed.
   ip address 2.2.2.1/32
   isis enable default
   isis passive-interface default
!
interface Ethernet2
   ip address 100.64.0.1/31
   no switchport
   isis enable default
!
"""

R2_CONFIG = """\
hostname r2
ip routing
!
router isis default
   net 49.0001.1010.1040.2030.00
   address-family ipv4 unicast
!
interface Loopback0
   ip address 2.2.2.2/32
   isis enable default
   isis passive-interface default
!
interface Ethernet1
   no switchport
   ip address 100.64.0.0/31
   isis enable default
!
interface Ethernet2
   no switchport
   ip address 100.64.0.2/31
   isis enable default
!
"""

R3_CONFIG = """\
hostname r3
ip routing
!
router isis default
   net 49.0001.1010.1040.3030.00
   address-family ipv4 unicast
!
interface Loopback0
   ip address 2.2.2.3/32
   isis enable default
   isis passive-interface default
!
interface Ethernet1
   no switchport
   ip address 100.64.0.3/31
   isis enable default
!
"""

LOOPBACKS = {"r1": "2.2.2.1", "r2": "2.2.2.2", "r3": "2.2.2.3"}


@dataclass
class Fig3Scenario:
    """Topology plus raw configurations for the Fig. 3 experiment."""

    topology: Topology
    configs: dict[str, str]

    @property
    def loopbacks(self) -> dict[str, str]:
        return dict(LOOPBACKS)


def fig3_scenario() -> Fig3Scenario:
    """Build the 3-node line with the paper's configurations."""
    configs = {"r1": R1_CONFIG, "r2": R2_CONFIG, "r3": R3_CONFIG}
    builder = TopologyBuilder("fig3-line")
    for name in ("r1", "r2", "r3"):
        builder.node(name, vendor="arista", os_version="4.34.0F",
                     config=configs[name])
    # R1 faces R2 on Ethernet2 (as in the paper's snippet).
    builder.link("r1", "r2", a_int="Ethernet2", z_int="Ethernet1")
    builder.link("r2", "r3", a_int="Ethernet2", z_int="Ethernet1")
    return Fig3Scenario(topology=builder.build(), configs=configs)
