"""Configuration and workload corpus for every experiment.

Generators, not checked-in files: each experiment's configurations are
produced by code so tests can assert their structural properties (line
counts in the paper's reported bands, parse coverage, etc.).
"""

from repro.corpus.fig2 import fig2_scenario, Fig2Scenario
from repro.corpus.fig3 import fig3_scenario, Fig3Scenario
from repro.corpus.production import production_scenario, ProductionScenario
from repro.corpus.routes import RouteInjector, full_table, InjectorSpec

__all__ = [
    "Fig2Scenario",
    "Fig3Scenario",
    "InjectorSpec",
    "ProductionScenario",
    "RouteInjector",
    "fig2_scenario",
    "fig3_scenario",
    "full_table",
    "production_scenario",
]
