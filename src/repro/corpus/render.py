"""Render vendor-native configuration text from a neutral spec.

Used by the production-scale corpus generator, which emits Arista EOS
for Arista nodes and SR Linux flat-``set`` for Nokia nodes — two real
configuration languages for the same intent, as a multi-vendor replica
requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.corpus.baggage import baggage_lines


@dataclass
class IfaceSpec:
    """A rendered interface: name, address, IGP participation."""
    name: str
    address: str  # "a.b.c.d/len"
    isis: bool = False
    passive: bool = False
    description: str = ""


@dataclass
class NeighborSpec:
    """A rendered BGP neighbor statement."""
    ip: str
    remote_as: int
    update_source: Optional[str] = None
    next_hop_self: bool = False
    description: str = ""
    route_reflector_client: bool = False


@dataclass
class RouterSpec:
    """Everything needed to render one router's config."""
    hostname: str
    vendor: str
    loopback: str  # address only, /32 implied
    isis_net: str
    asn: int
    neighbors: list[NeighborSpec] = field(default_factory=list)
    interfaces: list[IfaceSpec] = field(default_factory=list)
    networks: list[str] = field(default_factory=list)
    baggage_variant: int = 0


def render_config(spec: RouterSpec) -> str:
    if spec.vendor == "arista":
        return _render_arista(spec)
    if spec.vendor == "nokia":
        return _render_nokia(spec)
    raise ValueError(f"no config renderer for vendor {spec.vendor!r}")


def _render_arista(spec: RouterSpec) -> str:
    lines = [
        f"hostname {spec.hostname}",
        "ip routing",
        "router isis default",
        f"   net {spec.isis_net}",
        "   address-family ipv4 unicast",
        "interface Loopback0",
        f"   ip address {spec.loopback}/32",
        "   isis enable default",
        "   isis passive-interface default",
    ]
    for iface in spec.interfaces:
        lines += [
            f"interface {iface.name}",
        ]
        if iface.description:
            lines.append(f"   description {iface.description}")
        lines += [
            "   no switchport",
            f"   ip address {iface.address}",
        ]
        if iface.isis:
            lines.append("   isis enable default")
            if iface.passive:
                lines.append("   isis passive")
    lines += [f"router bgp {spec.asn}", f"   router-id {spec.loopback}"]
    for neighbor in spec.neighbors:
        lines.append(f"   neighbor {neighbor.ip} remote-as {neighbor.remote_as}")
        if neighbor.update_source:
            lines.append(
                f"   neighbor {neighbor.ip} update-source {neighbor.update_source}"
            )
        if neighbor.next_hop_self:
            lines.append(f"   neighbor {neighbor.ip} next-hop-self")
        if neighbor.route_reflector_client:
            lines.append(
                f"   neighbor {neighbor.ip} route-reflector-client"
            )
        if neighbor.description:
            lines.append(
                f"   neighbor {neighbor.ip} description {neighbor.description}"
            )
    for network in spec.networks:
        lines.append(f"   network {network}")
    return "\n".join(lines) + "\n" + baggage_lines(spec.baggage_variant)


def _render_nokia(spec: RouterSpec) -> str:
    lines = [
        f"set / system name host-name {spec.hostname}",
        "set / system grpc-server mgmt admin-state enable",
        "set / system gnmi-server unix-socket admin-state enable",
        "set / system tls server-profile gnmi-ssl",
        "set / system lldp admin-state enable",
        f"set / interface lo0 subinterface 0 ipv4 address {spec.loopback}/32",
        "set / network-instance default protocols isis instance default "
        f"net {spec.isis_net}",
        "set / network-instance default protocols isis instance default "
        "interface lo0.0 passive true",
    ]
    for iface in spec.interfaces:
        lines.append(
            f"set / interface {iface.name} subinterface 0 ipv4 address "
            f"{iface.address}"
        )
        if iface.description:
            lines.append(
                f'set / interface {iface.name} description "{iface.description}"'
            )
        if iface.isis:
            lines.append(
                "set / network-instance default protocols isis instance "
                f"default interface {iface.name}.0 metric 10"
            )
    lines.append(
        "set / network-instance default protocols bgp autonomous-system "
        f"{spec.asn}"
    )
    lines.append(
        f"set / network-instance default protocols bgp router-id {spec.loopback}"
    )
    for neighbor in spec.neighbors:
        base = (
            "set / network-instance default protocols bgp neighbor "
            f"{neighbor.ip}"
        )
        lines.append(f"{base} peer-as {neighbor.remote_as}")
        if neighbor.update_source:
            lines.append(f"{base} update-source {neighbor.update_source}")
        if neighbor.next_hop_self:
            lines.append(f"{base} next-hop-self true")
        if neighbor.route_reflector_client:
            lines.append(f"{base} route-reflector-client true")
    for network in spec.networks:
        lines.append(
            f"set / network-instance default protocols bgp network {network}"
        )
    return "\n".join(lines) + "\n"
