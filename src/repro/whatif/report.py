"""Campaign results: per-scenario verdicts and the ranked summary."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ScenarioVerdict:
    """Everything the campaign learned about one fault scenario.

    All fields are plain data so verdicts survive the process-pool
    shard boundary and serialize to JSON untouched.
    """

    scenario: str
    kind: str
    reconverge_seconds: float
    revert_seconds: float
    reverted_clean: bool
    regressed: int
    improved: int
    changed: int
    new_loops: int
    new_blackholes: int
    new_unreachable_pairs: int
    sample_regressions: tuple[str, ...] = ()
    fib_fingerprint: int = 0
    # Transient-state scoring (campaign ``temporal=`` opt-in; all
    # defaulted so verdicts from temporal-less runs are unchanged).
    temporal_checkpoints: int = 0
    temporal_violations: int = 0
    temporal_transient: int = 0
    temporal_worst: str = ""

    @property
    def severity(self) -> int:
        """Damage score for ranking: loops worst, then blackholes,
        then lost pairs, then any regressed flow."""
        return (
            10 * self.new_loops
            + 5 * self.new_blackholes
            + 2 * self.new_unreachable_pairs
            + self.regressed
        )

    def to_dict(self) -> dict:
        out = {
            "scenario": self.scenario,
            "kind": self.kind,
            "severity": self.severity,
            "reconverge_seconds": self.reconverge_seconds,
            "revert_seconds": self.revert_seconds,
            "reverted_clean": self.reverted_clean,
            "regressed": self.regressed,
            "improved": self.improved,
            "changed": self.changed,
            "new_loops": self.new_loops,
            "new_blackholes": self.new_blackholes,
            "new_unreachable_pairs": self.new_unreachable_pairs,
            "sample_regressions": list(self.sample_regressions),
            "fib_fingerprint": self.fib_fingerprint,
        }
        if self.temporal_checkpoints:
            out["temporal"] = {
                "checkpoints": self.temporal_checkpoints,
                "violations": self.temporal_violations,
                "transient": self.temporal_transient,
                "worst": self.temporal_worst,
            }
        return out


@dataclass
class CampaignReport:
    """One campaign's output: baseline facts plus every verdict."""

    topology_name: str
    baseline_invariants: dict[str, int] = field(default_factory=dict)
    baseline_startup_seconds: float = 0.0
    baseline_convergence_seconds: float = 0.0
    verdicts: list[ScenarioVerdict] = field(default_factory=list)
    cold_resets: int = 0
    workers: int = 1

    @property
    def incremental_sim_seconds(self) -> float:
        """Total simulated seconds the warm campaign actually spent
        (re-convergence + revert per scenario, cold resets included in
        the offending scenario's revert cost)."""
        return sum(
            v.reconverge_seconds + v.revert_seconds for v in self.verdicts
        )

    @property
    def cold_sim_seconds(self) -> float:
        """What N independent cold runs would have cost: each pays the
        full startup + baseline convergence before it can even apply its
        perturbation."""
        per_run = (
            self.baseline_startup_seconds + self.baseline_convergence_seconds
        )
        return per_run * len(self.verdicts)

    @property
    def speedup(self) -> float:
        if self.incremental_sim_seconds <= 0:
            return float("inf") if self.verdicts else 0.0
        return self.cold_sim_seconds / self.incremental_sim_seconds

    @property
    def worst_severity(self) -> int:
        return max((v.severity for v in self.verdicts), default=0)

    def ranked(self) -> list[ScenarioVerdict]:
        """Most damaging failures first; ties break alphabetically so
        the table is stable across runs."""
        return sorted(
            self.verdicts, key=lambda v: (-v.severity, v.scenario)
        )

    def render(self) -> str:
        base = self.baseline_invariants
        lines = [
            f"what-if campaign: {self.topology_name} — "
            f"{len(self.verdicts)} scenarios"
            + (f", {self.cold_resets} cold reset(s)" if self.cold_resets else "")
            + (f", {self.workers} workers" if self.workers > 1 else ""),
            f"baseline: loops={base.get('loops', 0)} "
            f"blackholes={base.get('blackholes', 0)} "
            f"unreachable={base.get('unreachable_pairs', 0)}; "
            f"startup {self.baseline_startup_seconds:.1f}s + "
            f"converge {self.baseline_convergence_seconds:.1f}s (sim)",
            "",
        ]
        rows = self.ranked()
        name_width = max([len("scenario")] + [len(v.scenario) for v in rows])
        header = (
            f"{'scenario':<{name_width}}  {'kind':<10}  {'sev':>4}  "
            f"{'loops':>5}  {'bhole':>5}  {'unrch':>5}  {'rgrss':>5}  "
            f"{'chngd':>5}  {'reconv(s)':>9}  {'revert(s)':>9}  clean"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for v in rows:
            lines.append(
                f"{v.scenario:<{name_width}}  {v.kind:<10}  {v.severity:>4}  "
                f"{v.new_loops:>5}  {v.new_blackholes:>5}  "
                f"{v.new_unreachable_pairs:>5}  {v.regressed:>5}  "
                f"{v.changed:>5}  {v.reconverge_seconds:>9.1f}  "
                f"{v.revert_seconds:>9.1f}  {'yes' if v.reverted_clean else 'NO'}"
            )
        lines.append("")
        lines.append(
            f"totals: incremental {self.incremental_sim_seconds:.1f} sim-s "
            f"vs cold ~{self.cold_sim_seconds:.1f} sim-s (est) — "
            f"{self.speedup:.1f}x faster"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "topology": self.topology_name,
            "baseline": {
                "invariants": dict(self.baseline_invariants),
                "startup_seconds": self.baseline_startup_seconds,
                "convergence_seconds": self.baseline_convergence_seconds,
            },
            "scenarios": [v.to_dict() for v in self.ranked()],
            "cold_resets": self.cold_resets,
            "workers": self.workers,
            "incremental_sim_seconds": self.incremental_sim_seconds,
            "cold_sim_seconds": self.cold_sim_seconds,
            "speedup": self.speedup,
        }
