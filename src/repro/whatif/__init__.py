"""What-if campaigns: warm-deployment fault exploration.

Perturb a live, converged emulation, measure incremental
re-convergence, verify against the baseline, revert — instead of paying
a full cold deployment per failure scenario. See
``docs/architecture.md`` ("What-if campaigns").
"""

from repro.whatif.campaign import (
    CampaignEnsembleResult,
    WhatIfCampaign,
    cold_run,
)
from repro.whatif.report import CampaignReport, ScenarioVerdict
from repro.whatif.scenarios import (
    FaultScenario,
    k_link_failures,
    link_flap_scenarios,
    single_link_failures,
    single_node_failures,
)

__all__ = [
    "CampaignEnsembleResult",
    "CampaignReport",
    "FaultScenario",
    "ScenarioVerdict",
    "WhatIfCampaign",
    "cold_run",
    "k_link_failures",
    "link_flap_scenarios",
    "single_link_failures",
    "single_node_failures",
]
