"""Fault scenarios: declarative perturbations over a live deployment.

A scenario is a frozen, picklable description of *what to break* — pairs
of node names for link faults, node names for pod kills — never a
closure over live objects. That keeps generators cheap (a campaign over
a 1000-router topology materializes thousands of scenarios before any
emulation work happens) and lets the campaign runner ship scenario
shards to worker processes untouched.

The generators mirror the sweeps the literature treats as table stakes:
every single link, every single node, all k-link combinations
(Plankton's exploding scenario space), and link flaps (the transient
case a converged-state-only model cannot express at all).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator, TYPE_CHECKING

from repro.core.context import ScenarioContext
from repro.topo.model import Topology

if TYPE_CHECKING:
    from repro.kube.kne import KneDeployment

KIND_LINK_CUT = "link-cut"
KIND_NODE_DOWN = "node-down"
KIND_K_LINK_CUT = "k-link-cut"
KIND_LINK_FLAP = "link-flap"


@dataclass(frozen=True)
class FaultScenario:
    """One what-if question, as an apply/revert perturbation pair.

    ``links`` always carries the affected node pairs — for node faults
    too, computed at generation time — so :meth:`to_context` can express
    any link-expressible scenario as a cold-run :class:`ScenarioContext`
    (the campaign's oracle path).
    """

    name: str
    kind: str
    links: tuple[tuple[str, str], ...] = ()
    nodes: tuple[str, ...] = ()
    flap_hold: float = 0.0

    def apply(self, deployment: "KneDeployment") -> None:
        """Perturb a live, converged deployment."""
        if self.kind == KIND_NODE_DOWN:
            for node in self.nodes:
                deployment.node_down(node)
            return
        for a_node, z_node in self.links:
            deployment.link_down(a_node, z_node)
        if self.kind == KIND_LINK_FLAP:
            # The restore is pre-scheduled on the simulated clock, so a
            # single wait_converged over the whole flap observes both
            # transitions; min_quiet_period guarantees the quiet window
            # cannot elapse while the link_up event is still pending.
            for a_node, z_node in self.links:
                deployment.kernel.schedule(
                    self.flap_hold,
                    lambda a=a_node, z=z_node: deployment.link_up(a, z),
                    label=f"whatif-flap-restore:{a_node}-{z_node}",
                )

    def revert(self, deployment: "KneDeployment") -> None:
        """Undo :meth:`apply` (no-op for self-reverting scenarios)."""
        if self.self_reverting:
            return
        if self.kind == KIND_NODE_DOWN:
            for node in self.nodes:
                deployment.node_up(node)
            return
        for a_node, z_node in self.links:
            deployment.link_up(a_node, z_node)

    @property
    def self_reverting(self) -> bool:
        return self.kind == KIND_LINK_FLAP

    @property
    def min_quiet_period(self) -> float:
        """Quiet window floor so pre-scheduled restores aren't missed."""
        return self.flap_hold + 1.0 if self.kind == KIND_LINK_FLAP else 0.0

    def to_context(
        self, base: ScenarioContext = ScenarioContext()
    ) -> ScenarioContext:
        """The equivalent cold-run context (the oracle formulation).

        A flap's steady state is the baseline itself, so it maps to
        ``base`` unchanged; everything else maps to its link cuts. Note
        a cold node-down run still boots the dead node — it converges to
        the same network-wide state, but its own (isolated) FIB is
        present in the cold extraction and absent from the warm one.
        """
        if self.kind == KIND_LINK_FLAP:
            return base
        context = base
        for a_node, z_node in self.links:
            context = context.with_link_down(a_node, z_node)
        return context


def _unique_node_pairs(topology: Topology) -> list[tuple[str, str]]:
    """Distinct endpoint pairs, deduplicating parallel links.

    ``KneDeployment.set_link_state`` resolves a pair via
    ``Topology.find_link`` (first match), so parallel links between one
    node pair would all map to the same perturbation — sweep each pair
    once.
    """
    seen: set[frozenset[str]] = set()
    pairs: list[tuple[str, str]] = []
    for link in topology.links:
        key = frozenset((link.a.node, link.z.node))
        if key in seen:
            continue
        seen.add(key)
        pairs.append((link.a.node, link.z.node))
    return pairs


def single_link_failures(topology: Topology) -> Iterator[FaultScenario]:
    """One scenario per link: the paper's §6 exhaustive single-cut sweep."""
    for a_node, z_node in _unique_node_pairs(topology):
        yield FaultScenario(
            name=f"link:{a_node}-{z_node}",
            kind=KIND_LINK_CUT,
            links=((a_node, z_node),),
        )


def single_node_failures(topology: Topology) -> Iterator[FaultScenario]:
    """One scenario per node: kill the pod, drop every adjacency at once."""
    for spec in topology.nodes:
        links = tuple(
            (link.a.node, link.z.node) for link in topology.links_of(spec.name)
        )
        yield FaultScenario(
            name=f"node:{spec.name}",
            kind=KIND_NODE_DOWN,
            links=links,
            nodes=(spec.name,),
        )


def k_link_failures(topology: Topology, k: int = 2) -> Iterator[FaultScenario]:
    """All k-combinations of link failures (combinatorial — use with care)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    for combo in combinations(_unique_node_pairs(topology), k):
        label = "+".join(f"{a}-{z}" for a, z in combo)
        yield FaultScenario(
            name=f"klink:{label}",
            kind=KIND_K_LINK_CUT,
            links=tuple(combo),
        )


def link_flap_scenarios(
    topology: Topology, hold_seconds: float = 30.0
) -> Iterator[FaultScenario]:
    """Per-link down→up flaps: does the network *return* to baseline?"""
    if hold_seconds <= 0:
        raise ValueError(f"hold_seconds must be > 0, got {hold_seconds}")
    for a_node, z_node in _unique_node_pairs(topology):
        yield FaultScenario(
            name=f"flap:{a_node}-{z_node}",
            kind=KIND_LINK_FLAP,
            links=((a_node, z_node),),
            flap_hold=hold_seconds,
        )
