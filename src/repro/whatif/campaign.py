"""The campaign runner: one warm deployment, many what-if questions.

The economics this subsystem exists for: a cold emulation pays the full
infrastructure bring-up plus initial convergence (the paper's 12–17
minute startup at 1000 devices) *per scenario*, while a warm deployment
pays it once — each scenario then costs only the incremental
re-convergence after the perturbation plus the re-convergence after the
revert, both of which the IGP/BGP machinery completes in seconds to
minutes. Correctness is anchored two ways:

* after every revert the extracted dataplane fingerprint must equal the
  baseline's — if it does not, the deployment is considered polluted and
  the campaign falls back to a **cold reset** (fresh deployment) before
  the next scenario, charging the bring-up to the offending scenario;
* :func:`cold_run` re-runs any scenario from scratch with the
  perturbation pre-applied, giving tests and benchmarks an oracle to
  compare warm-path AFTs against by fingerprint.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.core.context import ScenarioContext
from repro.core.pipeline import ModelFreeBackend, phase
from repro.core.snapshot import Snapshot
from repro.dataplane.model import Dataplane
from repro.gnmi.server import dump_afts
from repro.kube.cluster import KubeCluster
from repro.kube.kne import KneDeployment
from repro.obs import bus
from repro.protocols.timers import TimerProfile, PRODUCTION_TIMERS
from repro.topo.model import Topology
from repro.verify.differential import BaselineDiff
from repro.whatif.report import CampaignReport, ScenarioVerdict
from repro.whatif.scenarios import FaultScenario

logger = logging.getLogger(__name__)

_SAMPLE_REGRESSIONS = 3


@dataclass
class CampaignEnsembleResult:
    """A campaign swept across seeds, with set-level verdicts.

    One ``harmless:<scenario>`` row per scenario, folded across the
    seed sweep into holds-always / holds-sometimes / never: a scenario
    whose severity depends on message timing surfaces as
    holds-sometimes with the offending seed as witness, instead of
    silently inheriting whichever verdict seed 0 happened to produce.
    """

    seeds: tuple
    #: Per-seed :class:`~repro.whatif.report.CampaignReport`\ s, in
    #: seed order.
    reports: list = field(default_factory=list)
    #: Folded :class:`~repro.ensemble.InvariantVerdict` rows.
    verdicts: list = field(default_factory=list)

    @property
    def unstable(self) -> list:
        from repro.ensemble.verdicts import HOLDS_ALWAYS

        return [v for v in self.verdicts if v.verdict != HOLDS_ALWAYS]

    def to_dict(self) -> dict:
        return {
            "seeds": list(self.seeds),
            "verdicts": [v.to_dict() for v in self.verdicts],
            "reports": [r.to_dict() for r in self.reports],
        }


class WhatIfCampaign:
    """Run a set of fault scenarios against one warm deployment."""

    def __init__(
        self,
        topology: Topology,
        scenarios: Sequence[FaultScenario],
        *,
        context: Optional[ScenarioContext] = None,
        cluster: Optional[KubeCluster] = None,
        timers: TimerProfile = PRODUCTION_TIMERS,
        quiet_period: float = 30.0,
        convergence_max_time: float = 86_400.0,
        seed: int = 0,
        store=None,
        temporal=None,
    ) -> None:
        self.topology = topology
        self.scenarios = list(scenarios)
        self.context = context if context is not None else ScenarioContext()
        self.cluster = cluster
        self.timers = timers
        self.quiet_period = quiet_period
        self.convergence_max_time = convergence_max_time
        self.seed = seed
        # Opt-in transient-state scoring: True (default invariants) or a
        # sequence of TemporalInvariant. Each scenario's apply→converge
        # window is recorded and evaluated, and the interval counts land
        # on its verdict (temporal_* fields).
        self.temporal = temporal
        # Optional verification-service SnapshotStore: the baseline
        # snapshot registers there, so service questions asked after a
        # campaign reuse its engine. Sequential path only — process-pool
        # shards cannot share an in-memory store.
        self.store = store
        # Per-phase durations from the most recent run (span names are
        # prefixed "whatif:<scenario>" so they never collide with the
        # pipeline's own deploy/converge/extract phases in a timeline).
        self.phases: dict[str, dict[str, float]] = {}

    def run(self, workers: Optional[int] = None) -> CampaignReport:
        """Execute every scenario; returns the campaign report.

        ``workers > 1`` shards scenarios round-robin across independent
        deployments in a process pool — each worker pays its own cold
        bring-up, which amortizes only when its shard is large. Falls
        back to the sequential path if the pool cannot start (same
        pattern as the verify engine's parallel precompute).
        """
        count = workers or 1
        if count > 1 and len(self.scenarios) > 1:
            try:
                return self._run_parallel(count)
            except Exception as exc:  # pool unavailable (sandbox, pickling)
                logger.warning(
                    "process-pool campaign failed (%s); running sequentially",
                    exc,
                )
        return self._run_sequential(self.scenarios)

    def run_ensemble(
        self,
        seeds: Sequence[int],
        workers: Optional[int] = None,
    ) -> CampaignEnsembleResult:
        """Run the whole campaign once per seed and fold the verdicts.

        Scenario stability is scored over the ensemble rather than one
        run: each scenario contributes a ``harmless`` observation per
        seed (holds iff its severity is 0), folded by the ensemble
        verdict algebra with the seed, scenario, and post-perturbation
        fingerprint as witness.
        """
        from repro.ensemble.verdicts import (
            EnsembleWitness,
            RowObservation,
            fold_observations,
        )

        seed_list = tuple(seeds)
        reports = []
        rows: dict[str, list[RowObservation]] = {}
        original_seed = self.seed
        try:
            for run_seed in seed_list:
                self.seed = run_seed
                report = self.run(workers=workers)
                reports.append(report)
                for verdict in report.verdicts:
                    rows.setdefault(
                        f"harmless:{verdict.scenario}", []
                    ).append(
                        RowObservation(
                            holds=verdict.severity == 0,
                            weight=1,
                            witness=EnsembleWitness(
                                seed=run_seed,
                                plan=verdict.scenario,
                                fingerprint=verdict.fib_fingerprint,
                                detail=f"severity {verdict.severity}",
                            ),
                        )
                    )
        finally:
            self.seed = original_seed
        return CampaignEnsembleResult(
            seeds=seed_list,
            reports=reports,
            verdicts=fold_observations(rows),
        )

    # -- sequential (the real machinery) ------------------------------------------

    def _run_sequential(
        self, scenarios: Sequence[FaultScenario]
    ) -> CampaignReport:
        backend = ModelFreeBackend(
            self.topology,
            cluster=self.cluster,
            timers=self.timers,
            quiet_period=self.quiet_period,
            convergence_max_time=self.convergence_max_time,
            store=self.store,
        )
        self.phases = {}
        baseline, deployment = self._deploy_baseline(backend)
        diff = BaselineDiff(baseline.dataplane)
        report = CampaignReport(
            topology_name=self.topology.name,
            baseline_invariants=dict(diff.baseline_invariants),
            baseline_startup_seconds=baseline.startup_seconds,
            baseline_convergence_seconds=baseline.convergence_seconds,
        )
        for scenario in scenarios:
            verdict = self._run_scenario(scenario, deployment, diff)
            collector = bus.ACTIVE
            if collector.enabled:
                collector.count("whatif.scenarios")
                delta_fields = {}
                stats = diff.last_delta_stats
                if stats is not None:
                    # How the scenario's engine came to be: a sparse
                    # patch of the baseline's (dirty atom count) or a
                    # cold rebuild (fallback reason).
                    delta_fields = {
                        "delta_dirty_atoms": stats.dirty_atoms,
                        "delta_fallback": stats.fallback,
                        "delta_apply_seconds": stats.apply_seconds,
                    }
                temporal_fields = {}
                if self.temporal is not None and self.temporal is not False:
                    temporal_fields = {
                        "temporal_violations": verdict.temporal_violations,
                        "temporal_transient": verdict.temporal_transient,
                    }
                collector.emit(
                    "whatif.verdict",
                    deployment.kernel.now,
                    scenario=verdict.scenario,
                    kind=verdict.kind,
                    severity=verdict.severity,
                    new_loops=verdict.new_loops,
                    new_blackholes=verdict.new_blackholes,
                    new_unreachable_pairs=verdict.new_unreachable_pairs,
                    regressed=verdict.regressed,
                    changed=verdict.changed,
                    reconverge_seconds=verdict.reconverge_seconds,
                    reverted_clean=verdict.reverted_clean,
                    **delta_fields,
                    **temporal_fields,
                )
            if not verdict.reverted_clean:
                # The warm deployment no longer matches the baseline —
                # every later verdict would diff against polluted state.
                # Pay for a fresh bring-up and charge it to this
                # scenario's revert cost, keeping the incremental-vs-
                # cold accounting honest.
                logger.warning(
                    "scenario %s did not revert cleanly; cold reset",
                    scenario.name,
                )
                if collector.enabled:
                    collector.count("whatif.cold_resets")
                report.cold_resets += 1
                fresh, deployment = self._deploy_baseline(backend)
                verdict = replace(
                    verdict,
                    revert_seconds=verdict.revert_seconds
                    + fresh.startup_seconds
                    + fresh.convergence_seconds,
                )
                if fresh.dataplane.fib_fingerprint() != diff.fingerprint:
                    # Same seed + context is deterministic, so this only
                    # fires if the topology itself is seed-sensitive;
                    # re-anchor rather than diff against a stale baseline.
                    diff = BaselineDiff(fresh.dataplane)
            report.verdicts.append(verdict)
        return report

    def _deploy_baseline(
        self, backend: ModelFreeBackend
    ) -> tuple[Snapshot, KneDeployment]:
        snapshot = backend.run(
            self.context,
            seed=self.seed,
            snapshot_name=f"{self.topology.name}:whatif-baseline",
        )
        assert backend.last_run is not None
        return snapshot, backend.last_run.deployment

    def _run_scenario(
        self,
        scenario: FaultScenario,
        deployment: KneDeployment,
        diff: BaselineDiff,
    ) -> ScenarioVerdict:
        kernel = deployment.kernel
        phases = self.phases
        prefix = f"whatif:{scenario.name}"
        quiet = max(self.quiet_period, scenario.min_quiet_period)
        recorder = None
        if self.temporal is not None and self.temporal is not False:
            from repro.temporal import CheckpointRecorder

            recorder = CheckpointRecorder(deployment)
        temporal_report = None
        with phase(prefix, kernel, phases):
            if recorder is not None:
                recorder.arm()
            with phase(f"{prefix}:apply", kernel, phases):
                scenario.apply(deployment)
            with phase(f"{prefix}:converge", kernel, phases):
                reconverge_seconds = deployment.wait_converged(
                    quiet_period=quiet,
                    max_time=self.convergence_max_time,
                )
            if recorder is not None:
                from repro.temporal import evaluate_stream

                with phase(f"{prefix}:temporal", kernel, phases):
                    stream = recorder.finalize()
                    invariants = (
                        None
                        if self.temporal is True
                        else list(self.temporal)
                    )
                    temporal_report = evaluate_stream(stream, invariants)
            with phase(f"{prefix}:extract", kernel, phases):
                live = sorted(
                    set(deployment.routers) - deployment.failed_nodes()
                )
                dataplane = Dataplane.from_afts(
                    dump_afts(deployment, nodes=live)
                )
            with phase(f"{prefix}:verify", kernel, phases):
                comparison = diff.compare(dataplane)
            with phase(f"{prefix}:revert", kernel, phases):
                if scenario.self_reverting:
                    # The flap's restore already ran inside the converge
                    # window, so the extracted state *is* the post-revert
                    # state — no extra convergence to pay for.
                    revert_seconds = 0.0
                    restored_fingerprint = dataplane.fib_fingerprint()
                else:
                    scenario.revert(deployment)
                    revert_seconds = deployment.wait_converged(
                        quiet_period=self.quiet_period,
                        max_time=self.convergence_max_time,
                    )
                    restored_fingerprint = Dataplane.from_afts(
                        dump_afts(deployment)
                    ).fib_fingerprint()
        samples = tuple(
            str(row) for row in comparison.rows if row.regressed
        )[:_SAMPLE_REGRESSIONS]
        temporal_fields = {}
        if temporal_report is not None:
            temporal_fields = {
                "temporal_checkpoints": temporal_report.checkpoints,
                "temporal_violations": len(temporal_report.intervals),
                "temporal_transient": len(temporal_report.transient),
                "temporal_worst": (
                    str(temporal_report.intervals[0])
                    if temporal_report.intervals
                    else ""
                ),
            }
        return ScenarioVerdict(
            scenario=scenario.name,
            kind=scenario.kind,
            reconverge_seconds=reconverge_seconds,
            revert_seconds=revert_seconds,
            reverted_clean=restored_fingerprint == diff.fingerprint,
            regressed=comparison.regressed,
            improved=comparison.improved,
            changed=comparison.changed,
            new_loops=comparison.new_loops,
            new_blackholes=comparison.new_blackholes,
            new_unreachable_pairs=comparison.new_unreachable_pairs,
            sample_regressions=samples,
            fib_fingerprint=dataplane.fib_fingerprint(),
            **temporal_fields,
        )

    # -- process-pool sharding ---------------------------------------------------------

    def _run_parallel(self, workers: int) -> CampaignReport:
        from concurrent.futures import ProcessPoolExecutor

        shards = [self.scenarios[i::workers] for i in range(workers)]
        shards = [shard for shard in shards if shard]
        payloads = [
            (
                self.topology,
                shard,
                self.context,
                self.timers,
                self.quiet_period,
                self.convergence_max_time,
                self.seed,
                self.temporal,
            )
            for shard in shards
        ]
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            shard_reports = list(pool.map(_campaign_shard, payloads))
        first = shard_reports[0]
        merged = CampaignReport(
            topology_name=first.topology_name,
            baseline_invariants=dict(first.baseline_invariants),
            baseline_startup_seconds=first.baseline_startup_seconds,
            baseline_convergence_seconds=first.baseline_convergence_seconds,
            workers=len(shards),
        )
        by_name = {}
        for shard_report in shard_reports:
            merged.cold_resets += shard_report.cold_resets
            for verdict in shard_report.verdicts:
                by_name[verdict.scenario] = verdict
        # Original submission order, not shard order.
        merged.verdicts = [
            by_name[s.name] for s in self.scenarios if s.name in by_name
        ]
        return merged


def _campaign_shard(payload) -> CampaignReport:
    """Pool worker: run one scenario shard on its own deployment.

    Module-level (not a closure) so it pickles; everything in the
    payload is plain data. The worker process has the default no-op obs
    collector — shard runs are untraced by design.
    """
    (
        topology,
        scenarios,
        context,
        timers,
        quiet_period,
        max_time,
        seed,
        temporal,
    ) = payload
    campaign = WhatIfCampaign(
        topology,
        scenarios,
        context=context,
        timers=timers,
        quiet_period=quiet_period,
        convergence_max_time=max_time,
        seed=seed,
        temporal=temporal,
    )
    return campaign._run_sequential(scenarios)


def cold_run(
    topology: Topology,
    scenario: FaultScenario,
    *,
    context: Optional[ScenarioContext] = None,
    timers: TimerProfile = PRODUCTION_TIMERS,
    quiet_period: float = 30.0,
    convergence_max_time: float = 86_400.0,
    seed: int = 0,
) -> Snapshot:
    """Run one scenario the expensive way: fresh deployment, fault
    pre-applied via the scenario's cold-run context.

    This is the oracle the warm path is validated against: for a
    link-expressible scenario, the warm post-perturbation AFTs and the
    cold run's AFTs must agree by fingerprint (asserted for a sampled
    subset in tests and the whatif benchmark).
    """
    backend = ModelFreeBackend(
        topology,
        timers=timers,
        quiet_period=quiet_period,
        convergence_max_time=convergence_max_time,
    )
    cold_context = scenario.to_context(
        context if context is not None else ScenarioContext()
    )
    return backend.run(
        cold_context,
        seed=seed,
        snapshot_name=f"{topology.name}:cold:{scenario.name}",
    )
