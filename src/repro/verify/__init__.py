"""Dataplane verification engine.

Exhaustive analyses over :class:`~repro.dataplane.model.Dataplane`
objects: reachability, traceroute, loop/blackhole detection, and
differential reachability between two snapshots. The engine is backend-
agnostic by construction — it operates on extracted AFT state, never on
the emulation — so the same queries run against model-free (emulated)
and model-based (simulated) dataplanes, which is how the paper compares
the two.
"""

from repro.verify.engine import (
    AtomGraphEngine,
    AtomVerdict,
    DeltaStats,
    DeltaUnapplicable,
    clear_engine_cache,
    engine_for,
)
from repro.verify.reachability import (
    ReachabilityAnalysis,
    ReachabilityRow,
    pairwise_matrix,
)
from repro.verify.traceroute import traceroute
from repro.verify.differential import DifferentialRow, differential_reachability
from repro.verify.invariants import (
    detect_blackholes,
    detect_loops,
    verification_summary,
    verify_pairwise_reachability,
)

__all__ = [
    "AtomGraphEngine",
    "AtomVerdict",
    "DeltaStats",
    "DeltaUnapplicable",
    "DifferentialRow",
    "ReachabilityAnalysis",
    "ReachabilityRow",
    "clear_engine_cache",
    "detect_blackholes",
    "detect_loops",
    "differential_reachability",
    "engine_for",
    "pairwise_matrix",
    "traceroute",
    "verification_summary",
    "verify_pairwise_reachability",
]
