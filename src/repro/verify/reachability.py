"""Exhaustive reachability analysis.

Since the atom-graph engine (:mod:`repro.verify.engine`) landed, the
hot path classifies every (ingress, atom) pair from precomputed
per-atom verdict tables — one graph pass per atom serves all
ingresses — and the scalar :class:`ForwardingWalk` is only invoked to
produce witness traces for the final merged rows (and as the exact
fallback for ACL-tainted queries). Pass ``use_engine=False`` to force
the original walk-per-pair evaluation; it is kept as the reference
oracle and the benchmark baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.dataplane.forwarding import (
    Disposition,
    ForwardingWalk,
    Trace,
    WalkResult,
    dst_atoms,
)
from repro.dataplane.model import Dataplane
from repro.net.addr import format_ipv4
from repro.net.headerspace import HeaderSpace
from repro.net.intervals import IntervalSet
from repro.verify.engine import AtomGraphEngine, engine_for


@dataclass(frozen=True)
class ReachabilityRow:
    """One (ingress, destination set) result of a reachability query."""

    ingress: str
    dst_set: IntervalSet
    dispositions: frozenset[Disposition]
    sample_destination: int
    sample_traces: tuple[Trace, ...]

    def __str__(self) -> str:
        kinds = ",".join(sorted(d.value for d in self.dispositions))
        more = len(self.dst_set) - 1
        suffix = f" (+{more} more addresses)" if more else ""
        return (
            f"{self.ingress} -> {format_ipv4(self.sample_destination)}"
            f"{suffix}: {kinds}"
        )


class ReachabilityAnalysis:
    """Precomputes destination atoms for one dataplane and answers
    exhaustive reachability queries over them.

    ``engine`` may be supplied to share a prebuilt
    :class:`~repro.verify.engine.AtomGraphEngine`; by default one is
    fetched from the content-keyed engine cache, so constructing this
    class repeatedly for the same forwarding state is cheap.
    """

    def __init__(
        self,
        dataplane: Dataplane,
        *,
        engine: Optional[AtomGraphEngine] = None,
        use_engine: bool = True,
    ) -> None:
        self.dataplane = dataplane
        self.walker = ForwardingWalk(dataplane)
        self.use_engine = use_engine
        if use_engine:
            self.engine: Optional[AtomGraphEngine] = (
                engine if engine is not None else engine_for(dataplane)
            )
            self.atoms = self.engine.atoms
        else:
            self.engine = None
            self.atoms = dst_atoms(dataplane)

    def analyze(
        self,
        ingress_nodes: Optional[Iterable[str]] = None,
        dst_space: Optional[HeaderSpace] = None,
    ) -> list[ReachabilityRow]:
        """Classify the (restricted) destination space from each ingress.

        Atoms with identical disposition sets are merged per ingress, so
        the result is a compact exact partition of the query space.
        """
        nodes = list(ingress_nodes or self.dataplane.node_names())
        restriction = dst_space.dst_values() if dst_space is not None else None
        if self.engine is None:
            return self._analyze_scalar(nodes, restriction)
        self.engine.precompute()
        rows: list[ReachabilityRow] = []
        for ingress in nodes:
            # dispositions -> [merged dst set, first piece's sample]
            merged: dict[frozenset[Disposition], list] = {}
            for index, atom in enumerate(self.atoms):
                piece = atom if restriction is None else (atom & restriction)
                if piece.is_empty():
                    continue
                dispositions = self.engine.dispositions(ingress, index)
                bucket = merged.get(dispositions)
                if bucket is None:
                    merged[dispositions] = [piece, piece.sample()]
                else:
                    bucket[0] = bucket[0] | piece
            for dispositions, (dst_set, sample) in merged.items():
                result = self.walker.walk(ingress, sample)
                rows.append(
                    ReachabilityRow(
                        ingress=ingress,
                        dst_set=dst_set,
                        dispositions=dispositions,
                        sample_destination=sample,
                        sample_traces=result.traces,
                    )
                )
        return rows

    def _analyze_scalar(
        self, nodes: list[str], restriction: Optional[IntervalSet]
    ) -> list[ReachabilityRow]:
        """The original walk-per-(ingress, atom) evaluation (oracle)."""
        rows: list[ReachabilityRow] = []
        for ingress in nodes:
            merged: dict[frozenset[Disposition], list] = {}
            for atom in self.atoms:
                piece = atom if restriction is None else (atom & restriction)
                if piece.is_empty():
                    continue
                result = self.walker.walk(ingress, piece.sample())
                bucket = merged.setdefault(result.dispositions, [piece, result])
                if bucket[0] is not piece:
                    bucket[0] = bucket[0] | piece
            for dispositions, (dst_set, result) in merged.items():
                rows.append(
                    ReachabilityRow(
                        ingress=ingress,
                        dst_set=dst_set,
                        dispositions=dispositions,
                        sample_destination=result.destination,
                        sample_traces=result.traces,
                    )
                )
        return rows

    def walk(self, ingress: str, destination: int) -> WalkResult:
        return self.walker.walk(ingress, destination)

    def failures(
        self, ingress_nodes: Optional[Iterable[str]] = None
    ) -> list[ReachabilityRow]:
        """Rows whose disposition set contains any failure."""
        return [
            row
            for row in self.analyze(ingress_nodes)
            if any(not d.is_success for d in row.dispositions)
        ]


def verify_pairwise_reachability_text(dataplane: Dataplane) -> str:
    """Human-readable all-pairs verdict (for examples and CLI output)."""
    matrix = pairwise_matrix(dataplane)
    failures = [pair for pair, ok in sorted(matrix.items()) if not ok]
    if not failures:
        return f"PASS: all {len(matrix)} device pairs reachable"
    lines = [f"FAIL: {len(failures)} of {len(matrix)} device pairs unreachable"]
    lines.extend(f"  {src} cannot reach {dst}" for src, dst in failures)
    return "\n".join(lines)


def pairwise_matrix(
    dataplane: Dataplane,
    *,
    engine: Optional[AtomGraphEngine] = None,
    use_engine: bool = True,
) -> dict[tuple[str, str], bool]:
    """Full-mesh device reachability by owned addresses.

    ``matrix[a, b]`` is True when *every* address owned by ``b`` is
    ACCEPTED at ``b`` for packets entering at ``a`` (and a has at least
    one path there).

    On the engine path each owned address maps to its destination atom
    once, and every (src, dst) check is a table lookup on the shared
    per-atom verdict — the per-address re-walks only survive as the
    exact fallback for ACL-tainted verdicts (and as the oracle under
    ``use_engine=False``). The first failing address still short-
    circuits its device pair.
    """
    names = dataplane.node_names()
    matrix: dict[tuple[str, str], bool] = {}
    if not use_engine:
        walker = ForwardingWalk(dataplane)
        for src in names:
            for dst in names:
                if src == dst:
                    continue
                addresses = sorted(dataplane.devices[dst].local_addresses)
                ok = bool(addresses)
                for address in addresses:
                    if not _walk_accepts_at(walker, src, dst, address):
                        ok = False
                        break
                matrix[(src, dst)] = ok
        return matrix

    shared = engine if engine is not None else engine_for(dataplane)
    walker = shared.walker
    # Owned address -> atom index, resolved once for all N² pairs.
    atom_of = {
        address: shared.atom_index_of(address)
        for device in names
        for address in dataplane.devices[device].local_addresses
    }
    for src in names:
        for dst in names:
            if src == dst:
                continue
            addresses = sorted(dataplane.devices[dst].local_addresses)
            ok = bool(addresses)
            for address in addresses:
                verdict = shared.verdict(src, atom_of[address])
                if verdict.tainted:
                    accepted = _walk_accepts_at(walker, src, dst, address)
                else:
                    accepted = (
                        verdict.dispositions == {Disposition.ACCEPTED}
                        and verdict.accepts == {dst}
                    )
                if not accepted:
                    ok = False
                    break
            matrix[(src, dst)] = ok
    return matrix


def _walk_accepts_at(
    walker: ForwardingWalk, src: str, dst: str, address: int
) -> bool:
    """Scalar-walk check: all traces ACCEPTED with ``dst`` as last hop."""
    result = walker.walk(src, address)
    return bool(result.traces) and all(
        t.disposition is Disposition.ACCEPTED and t.hops[-1].device == dst
        for t in result.traces
    )
