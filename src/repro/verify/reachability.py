"""Exhaustive reachability analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.dataplane.forwarding import (
    Disposition,
    ForwardingWalk,
    Trace,
    WalkResult,
    dst_atoms,
)
from repro.dataplane.model import Dataplane
from repro.net.addr import format_ipv4
from repro.net.headerspace import HeaderSpace
from repro.net.intervals import IntervalSet


@dataclass(frozen=True)
class ReachabilityRow:
    """One (ingress, destination set) result of a reachability query."""

    ingress: str
    dst_set: IntervalSet
    dispositions: frozenset[Disposition]
    sample_destination: int
    sample_traces: tuple[Trace, ...]

    def __str__(self) -> str:
        kinds = ",".join(sorted(d.value for d in self.dispositions))
        return (
            f"{self.ingress} -> {format_ipv4(self.sample_destination)} "
            f"(+{len(self.dst_set) - 1} more): {kinds}"
        )


class ReachabilityAnalysis:
    """Precomputes destination atoms for one dataplane and answers
    exhaustive reachability queries over them."""

    def __init__(self, dataplane: Dataplane) -> None:
        self.dataplane = dataplane
        self.walker = ForwardingWalk(dataplane)
        self.atoms = dst_atoms(dataplane)

    def analyze(
        self,
        ingress_nodes: Optional[Iterable[str]] = None,
        dst_space: Optional[HeaderSpace] = None,
    ) -> list[ReachabilityRow]:
        """Classify the (restricted) destination space from each ingress.

        Atoms with identical disposition sets are merged per ingress, so
        the result is a compact exact partition of the query space.
        """
        nodes = list(ingress_nodes or self.dataplane.node_names())
        restriction = dst_space.dst_values() if dst_space is not None else None
        rows: list[ReachabilityRow] = []
        for ingress in nodes:
            merged: dict[frozenset[Disposition], list] = {}
            for atom in self.atoms:
                piece = atom if restriction is None else (atom & restriction)
                if piece.is_empty():
                    continue
                result = self.walker.walk(ingress, piece.sample())
                bucket = merged.setdefault(result.dispositions, [piece, result])
                if bucket[0] is not piece:
                    bucket[0] = bucket[0] | piece
            for dispositions, (dst_set, result) in merged.items():
                rows.append(
                    ReachabilityRow(
                        ingress=ingress,
                        dst_set=dst_set,
                        dispositions=dispositions,
                        sample_destination=result.destination,
                        sample_traces=result.traces,
                    )
                )
        return rows

    def walk(self, ingress: str, destination: int) -> WalkResult:
        return self.walker.walk(ingress, destination)

    def failures(
        self, ingress_nodes: Optional[Iterable[str]] = None
    ) -> list[ReachabilityRow]:
        """Rows whose disposition set contains any failure."""
        return [
            row
            for row in self.analyze(ingress_nodes)
            if any(not d.is_success for d in row.dispositions)
        ]


def verify_pairwise_reachability_text(dataplane: Dataplane) -> str:
    """Human-readable all-pairs verdict (for examples and CLI output)."""
    matrix = pairwise_matrix(dataplane)
    failures = [pair for pair, ok in sorted(matrix.items()) if not ok]
    if not failures:
        return f"PASS: all {len(matrix)} device pairs reachable"
    lines = [f"FAIL: {len(failures)} of {len(matrix)} device pairs unreachable"]
    lines.extend(f"  {src} cannot reach {dst}" for src, dst in failures)
    return "\n".join(lines)


def pairwise_matrix(dataplane: Dataplane) -> dict[tuple[str, str], bool]:
    """Full-mesh device reachability by owned addresses.

    ``matrix[a, b]`` is True when *every* address owned by ``b`` is
    ACCEPTED at ``b`` for packets entering at ``a`` (and a has at least
    one path there).
    """
    walker = ForwardingWalk(dataplane)
    matrix: dict[tuple[str, str], bool] = {}
    names = dataplane.node_names()
    for src in names:
        for dst in names:
            if src == dst:
                continue
            addresses = sorted(dataplane.devices[dst].local_addresses)
            ok = bool(addresses)
            for address in addresses:
                result = walker.walk(src, address)
                accepted_at_dst = all(
                    t.disposition is Disposition.ACCEPTED
                    and t.hops[-1].device == dst
                    for t in result.traces
                )
                if not result.traces or not accepted_at_dst:
                    ok = False
                    break
            matrix[(src, dst)] = ok
    return matrix
