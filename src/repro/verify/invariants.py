"""Network-wide invariant checks."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataplane.forwarding import Disposition
from repro.dataplane.model import Dataplane
from repro.verify.reachability import (
    ReachabilityAnalysis,
    ReachabilityRow,
    pairwise_matrix,
)


def detect_loops(dataplane: Dataplane) -> list[ReachabilityRow]:
    """Every (ingress, destination set) that forwards in a cycle."""
    analysis = ReachabilityAnalysis(dataplane)
    return [
        row
        for row in analysis.analyze()
        if Disposition.LOOP in row.dispositions
    ]


def detect_blackholes(dataplane: Dataplane) -> list[ReachabilityRow]:
    """Destinations dropped (no route / null-routed) from some ingress.

    Restricted to destinations some device in the network actually owns
    — unowned space legitimately has no route at the edge.
    """
    owned = set(dataplane.address_owner)
    analysis = ReachabilityAnalysis(dataplane)
    rows = []
    for row in analysis.analyze():
        if not (
            {Disposition.NO_ROUTE, Disposition.NULL_ROUTED} & row.dispositions
        ):
            continue
        if any(address in row.dst_set for address in owned):
            rows.append(row)
    return rows


@dataclass(frozen=True)
class PairwiseViolation:
    """A (src, dst) device pair that cannot communicate."""
    src: str
    dst: str

    def __str__(self) -> str:
        return f"{self.src} cannot reach {self.dst}"


def verify_pairwise_reachability(
    dataplane: Dataplane,
) -> list[PairwiseViolation]:
    """Check the all-pairs invariant; returns the violating pairs."""
    matrix = pairwise_matrix(dataplane)
    return [
        PairwiseViolation(src, dst)
        for (src, dst), reachable in sorted(matrix.items())
        if not reachable
    ]


def detect_degraded(dataplane: Dataplane) -> list[ReachabilityRow]:
    """Rows whose verdict is UNKNOWN_DEGRADED (partial snapshot).

    These are *absence-of-proof* rows, not violations: the destination
    belongs to a node whose forwarding state could not be extracted.
    """
    analysis = ReachabilityAnalysis(dataplane)
    return [
        row
        for row in analysis.analyze()
        if Disposition.UNKNOWN_DEGRADED in row.dispositions
    ]


def verification_summary(dataplane: Dataplane) -> dict[str, int]:
    """The standard invariant battery as counts (pipeline verify phase).

    All checks share one cached atom-graph engine, so the battery is a
    single set of per-atom graph passes regardless of how many
    invariants run. The ``degraded`` count appears only for partial
    snapshots, keeping fault-free summaries byte-identical to earlier
    releases.
    """
    loops = detect_loops(dataplane)
    blackholes = detect_blackholes(dataplane)
    violations = verify_pairwise_reachability(dataplane)
    summary = {
        "loops": len(loops),
        "blackholes": len(blackholes),
        "unreachable_pairs": len(violations),
    }
    if dataplane.degraded_nodes or dataplane.degraded_owned:
        summary["degraded"] = len(detect_degraded(dataplane))
    return summary
