"""The atom-graph verification engine.

The scalar :class:`~repro.dataplane.forwarding.ForwardingWalk` answers
one (ingress, destination) pair per call, re-running a trie LPM lookup
at every hop — O(ingresses × atoms × pathlen × 32) for an exhaustive
query. This engine exploits the defining property of a destination atom
(every device's LPM decision is constant inside it) to do the whole
job in one pass per atom:

1. each device's FIB is flattened once into a *compiled LPM index*
   (:meth:`~repro.dataplane.model.DeviceForwarding.compiled_index`) and
   every atom's decision on every device is resolved by a single linear
   sweep — no per-hop lookups at all;
2. the decisions form a *next-hop graph* over the topology whose nodes
   either terminate (accept / discard / no-route / leave the network)
   or point at successor devices;
3. one SCC condensation of that graph (iterative Tarjan) yields the
   disposition set of **every** ingress simultaneously: a node's
   dispositions are the union of its terminals and its successors'
   dispositions, plus ``LOOP`` when it can reach a cycle.

Total cost is O(atoms × (V + E)) — independent of the number of
ingresses queried — and atoms whose decision vectors coincide share one
graph evaluation outright (the Plankton-style equivalence-class trick).

Devices with ACLs make a node's behaviour depend on the arrival
interface and non-destination header fields, which a per-atom node
function cannot express; ingresses whose reachable subgraph touches an
ACL-bearing device are flagged ``tainted`` and transparently fall back
to the exact scalar walk. The walk also remains the reference oracle:
``tests/test_verify_engine.py`` asserts row-for-row equivalence on
every shipped corpus.

Engines are memoized per dataplane *content* — see :func:`engine_for` —
so differential queries, multirun sweeps, and repeated pybf questions
stop rebuilding identical analyses.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.dataplane.forwarding import Disposition, ForwardingWalk, dst_atoms
from repro.dataplane.model import Dataplane
from repro.net.addr import MAX_IPV4, Prefix
from repro.net.intervals import IntervalSet
from repro.obs import bus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataplane.delta import DataplaneDelta

logger = logging.getLogger(__name__)

#: Default ceiling on the dirty-atom fraction a delta apply will patch;
#: above it a cold build is cheaper than the bookkeeping. Override with
#: ``MFV_DELTA_THRESHOLD`` (a float in (0, 1]).
_DELTA_THRESHOLD = 0.35

#: Buckets for the ``verify.dirty_atoms`` histogram: dirty-atom counts,
#: not seconds — single-link churn lands in the low buckets, and the
#: tail records deltas that approached the fallback threshold.
DIRTY_ATOM_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0,
)


def _delta_threshold() -> float:
    """The dirty-atom fraction above which delta derivation falls back
    to a full build (``MFV_DELTA_THRESHOLD``, default 0.35)."""
    raw = os.environ.get("MFV_DELTA_THRESHOLD")
    if raw:
        try:
            value = float(raw)
        except ValueError:
            logger.warning("ignoring non-float MFV_DELTA_THRESHOLD=%r", raw)
        else:
            if 0.0 < value <= 1.0:
                return value
            logger.warning(
                "ignoring out-of-range MFV_DELTA_THRESHOLD=%r", raw
            )
    return _DELTA_THRESHOLD


def _prefix_indexes(prefixes, reps: list[int]) -> set[int]:
    """Indexes of the atoms a set of prefixes can govern.

    The lower bound deliberately includes the atom *containing* the
    prefix's first address even when the prefix starts mid-atom — a
    conservative over-approximation that keeps the result correct for
    prefixes that are not themselves partition boundaries.
    """
    out: set[int] = set()
    for prefix in prefixes:
        lo = max(0, bisect_right(reps, prefix.first) - 1)
        hi = bisect_right(reps, prefix.last)
        out.update(range(lo, hi))
    return out


class DeltaUnapplicable(Exception):
    """A delta is outside the incremental path's scope; build cold.

    ``reason`` is one of the stable strings surfaced in the
    ``verify.delta_fallbacks`` metric and ``--delta-stats`` output:
    ``device-set``, ``acl-change``, ``dirty-fraction``,
    ``base-mismatch``.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class DeltaStats:
    """How one engine came to exist relative to its lineage base.

    Attached to every engine that :func:`engine_for` considered for
    delta derivation: a successful apply records the patch size and
    reuse counts; a fallback records only the reason (the engine itself
    was built cold).
    """

    base_fingerprint: Optional[int] = None
    dirty_atoms: int = 0
    total_atoms: int = 0
    reused_tables: int = 0
    reused_indexes: int = 0
    rebuilt_indexes: int = 0
    touched_devices: tuple[str, ...] = ()
    fallback: Optional[str] = None
    apply_seconds: float = 0.0

    @property
    def dirty_fraction(self) -> float:
        return self.dirty_atoms / self.total_atoms if self.total_atoms else 0.0

#: Node-structure tags (see ``_resolve_node``).
_TERMINAL = {
    None: Disposition.NO_ROUTE,
    "receive": Disposition.ACCEPTED,
    "discard": Disposition.NULL_ROUTED,
}


@dataclass(frozen=True)
class AtomVerdict:
    """What happens to one atom's traffic entering at one device.

    ``dispositions`` is the union over every ECMP branch; ``accepts``
    the set of devices whose *receive* entry terminates some branch
    (what the all-pairs query needs); ``tainted`` marks verdicts whose
    reachable subgraph includes an ACL-bearing device — the graph
    abstraction cannot see ACL splits, so tainted queries must use the
    scalar walk.
    """

    dispositions: frozenset[Disposition]
    accepts: frozenset[str]
    tainted: bool

    @property
    def success(self) -> bool:
        return bool(self.dispositions) and all(
            d.is_success for d in self.dispositions
        )


class AtomGraphEngine:
    """One next-hop graph per destination atom, shared by every query.

    ``atoms`` defaults to the dataplane's own partition; differential
    and multirun callers pass a shared refinement so one engine per
    snapshot serves every pairwise comparison (any refinement of the
    atom partition keeps per-atom LPM decisions constant).
    """

    def __init__(
        self,
        dataplane: Dataplane,
        atoms: Optional[Sequence[IntervalSet]] = None,
        *,
        _observe: bool = True,
    ) -> None:
        self.dataplane = dataplane
        #: Lineage record set by :meth:`apply_delta` / :func:`engine_for`
        #: (None for engines built cold without a candidate base).
        self.delta_stats: Optional[DeltaStats] = None
        self.atoms: list[IntervalSet] = list(
            atoms if atoms is not None else dst_atoms(dataplane)
        )
        self.walker = ForwardingWalk(dataplane)
        self._reps = [atom.min() for atom in self.atoms]
        self._names = dataplane.node_names()
        self._acl_nodes = frozenset(
            name
            for name, device in dataplane.devices.items()
            if device.has_acls
        )
        # atom index -> {device -> AtomVerdict}
        self._tables: dict[int, dict[str, AtomVerdict]] = {}
        # decision-vector key -> shared verdict table
        self._shared: dict[tuple, dict[str, AtomVerdict]] = {}
        # (device, interface, gateway) -> resolved peer device (or None)
        self._hop_peers: dict[tuple[str, str, int], Optional[str]] = {}
        # device -> {entry -> struct}, for rep-independent resolutions.
        # Keyed by entry *content*, not id(): id() values are recycled
        # after GC, which in a long-lived process could silently alias
        # two different FIB entries; ForwardingEntry is frozen/hashable
        # so content keying is exact (and lets equal entries share).
        # Nested per device so apply_delta can adopt an untouched
        # device's whole sub-cache with one dict copy (no re-hashing).
        self._node_cache: dict[str, dict] = {}
        self._complete = False
        # Delta-derived engines skip the build counters: they are not
        # cold builds, and report through verify.delta_applies instead.
        if _observe and bus.ACTIVE.enabled:
            bus.ACTIVE.count("verify.engine_builds")
            bus.ACTIVE.count("verify.atoms", len(self.atoms))

    # -- public queries -----------------------------------------------------

    def verdict(self, ingress: str, atom_index: int) -> AtomVerdict:
        """The engine's verdict for ``ingress`` over atom ``atom_index``.

        Tainted verdicts describe reachability of an ACL device, not
        final dispositions — call :meth:`dispositions` for transparent
        scalar fallback.
        """
        table = self._tables.get(atom_index)
        if table is None:
            table = self._build_atom(atom_index)
        return table[ingress]

    def dispositions(
        self, ingress: str, atom_index: int
    ) -> frozenset[Disposition]:
        """Exact disposition set (scalar-walk fallback when tainted)."""
        verdict = self.verdict(ingress, atom_index)
        if not verdict.tainted:
            return verdict.dispositions
        return self.walker.walk(ingress, self._reps[atom_index]).dispositions

    def atom_index_of(self, address: int) -> int:
        """Index of the atom containing ``address``.

        Atoms are contiguous ascending spans covering the whole space,
        so this is a binary search over their lower bounds.
        """
        return bisect_right(self._reps, address) - 1

    def precompute(self, workers: Optional[int] = None) -> None:
        """Materialize every atom's verdict table.

        With ``workers`` > 1 the atom index range is sharded across a
        process pool — each worker rebuilds the engine from the pickled
        dataplane and returns its shard's tables. Falls back to the
        sequential sweep if the pool cannot be used (platform limits,
        unpicklable state).
        """
        if self._complete:
            return
        if workers is not None and workers > 1 and len(self.atoms) > 64:
            try:
                self._precompute_parallel(workers)
                return
            except Exception as exc:  # pragma: no cover - platform dependent
                logger.warning(
                    "process-pool precompute failed (%s); "
                    "falling back to sequential",
                    exc,
                )
        self._ensure_all()

    # -- incremental maintenance --------------------------------------------

    def apply_delta(self, delta: "DataplaneDelta") -> "AtomGraphEngine":
        """Derive the engine for ``delta.target`` by patching this one.

        The correctness spine: any *refinement* of a valid atom
        partition stays valid (class docstring), so the derived engine
        partitions at this engine's boundaries plus every boundary the
        delta moved. Each derived atom then lies inside exactly one base
        atom, and its decision vector can only differ from the base's on
        a *touched* device (untouched devices have identical FIB content
        and identical adjacency, so their decision at any address is
        unchanged) or via a degraded-ownership flip. Atoms where no
        touched device's decision changed reuse the base verdict tables
        outright; only *dirty* atoms re-run graph assembly and SCC
        condensation. Untouched devices keep their resident
        :class:`~repro.dataplane.model.CompiledLpmIndex`, node-struct
        cache, and hop-peer resolutions, and the ``_shared``
        decision-vector dedup tables carry over wholesale.

        Requires this engine's atoms to be a sorted full-cover partition
        (true for everything :func:`engine_for` builds). Raises
        :class:`DeltaUnapplicable` — device-set or ACL changes, or a
        dirty fraction above ``MFV_DELTA_THRESHOLD`` — when a cold build
        is the correct (or cheaper) move; the caller falls back.
        """
        start = time.perf_counter()
        if delta.base is not self.dataplane:
            raise DeltaUnapplicable("base-mismatch")
        reason = delta.fallback_reason()
        if reason is not None:
            raise DeltaUnapplicable(reason)
        # Note: a high touched-*device* count is deliberately not a
        # fallback trigger. A single link cut touches every device (the
        # link's subnet route vanishes network-wide) yet dirties few
        # atoms; the per-device sweeps below are linear merges — far
        # cheaper than the graph evaluations they let us skip — so the
        # dirty-atom fraction is the only cost gate that matters.
        touched = list(delta.device_deltas)
        target = delta.target
        # Clean derived atoms adopt base tables, so every base table
        # must exist; the base is usually precomputed already (it served
        # queries before the churn arrived).
        self._ensure_all()

        # (a) Refine the partition only where changed prefixes split
        # existing atoms. One merge walk over the base atoms: unsplit
        # atoms (the overwhelming majority) are reused as objects, and
        # every derived atom records which base atom contains it — so
        # the adoption loop below needs no per-atom binary search.
        base_reps = set(self._reps)
        extra: set[int] = set()
        for prefix in delta.boundary_prefixes():
            for cut in (prefix.first, prefix.last + 1):
                if cut <= MAX_IPV4 and cut not in base_reps:
                    extra.add(cut)
        if extra:
            extra_cuts = sorted(extra)
            reps: list[int] = []
            atoms: list[IntervalSet] = []
            base_of: list[int] = []
            k = 0
            base_uppers = self._reps[1:] + [MAX_IPV4 + 1]
            for base_index, (lo, hi) in enumerate(
                zip(self._reps, base_uppers)
            ):
                if k < len(extra_cuts) and extra_cuts[k] < hi:
                    bounds = [lo]
                    while k < len(extra_cuts) and extra_cuts[k] < hi:
                        bounds.append(extra_cuts[k])
                        k += 1
                    bounds.append(hi)
                    for piece_lo, piece_hi in zip(bounds, bounds[1:]):
                        reps.append(piece_lo)
                        atoms.append(IntervalSet.span(piece_lo, piece_hi - 1))
                        base_of.append(base_index)
                else:
                    reps.append(lo)
                    atoms.append(self.atoms[base_index])
                    base_of.append(base_index)
        else:
            reps = list(self._reps)
            atoms = list(self.atoms)
            base_of = list(range(len(atoms)))
        derived = AtomGraphEngine(target, atoms, _observe=False)

        # Resident-state reuse. Untouched devices share their compiled
        # LPM index outright. Node-struct and hop-peer caches survive
        # FIB-only churn too — structs are keyed by entry *content* and
        # depend otherwise only on the device's adjacency/addressing —
        # so only link-touched devices drop theirs.
        touched_set = set(touched)
        links_touched = {
            name
            for name in touched
            if delta.device_deltas[name].links_changed
        }
        reused_indexes = 0
        for name in self._names:
            if name in touched_set:
                continue
            if target.devices[name].share_compiled_index(
                self.dataplane.devices[name]
            ):
                reused_indexes += 1
        derived._node_cache = {
            name: dict(sub)
            for name, sub in self._node_cache.items()
            if name not in links_touched
        }
        derived._hop_peers = {
            key: peer
            for key, peer in self._hop_peers.items()
            if key[0] not in links_touched
        }
        # Valid because the node universe and ACL taint set are
        # unchanged (checked above): equal struct vectors evaluate to
        # the same verdict table in both engines.
        derived._shared = dict(self._shared)

        # (b) Dirty atoms: where any touched device's decision changed.
        # A FIB diff can only move a device's governing entry *inside
        # the diffed prefixes' own ranges* — everywhere else both tries
        # agree on the winning entry — and a moved interface can only
        # change how an entry resolves where the governing entry's hops
        # leave through it, or inside the interface's own prefixes
        # (address ownership, direct delivery). So instead of sweeping
        # every rep, collect the candidate indexes those ranges cover
        # and confirm each one: FIB-only devices compare governing
        # entries (equal entry + unchanged adjacency => equal struct),
        # link-touched devices compare resolved structs, since the same
        # entry can now point at a different neighbor. Everything
        # outside the candidate set is provably clean.
        degraded_flips = set(delta.degraded_changed_addresses)
        candidates: dict[int, list[str]] = {}
        links_changed = {
            name: delta.device_deltas[name].links_changed for name in touched
        }
        for name in touched:
            device_delta = delta.device_deltas[name]
            indexes = _prefix_indexes(device_delta.fib_prefixes, reps)
            if device_delta.links_changed:
                indexes |= self._interface_force_indexes(
                    device_delta, target, reps
                )
                # Unchanged entries still routing into a moved interface
                # (stale next hops the IGP did not reprogram).
                moved = set(device_delta.changed_interfaces)
                stale = [
                    prefix
                    for prefix, entry in self.dataplane.devices[
                        name
                    ].trie.items()
                    if any(hop.interface in moved for hop in entry.hops)
                ]
                indexes |= _prefix_indexes(stale, reps)
            for index in indexes:
                candidates.setdefault(index, []).append(name)
        dirty_set: set[int] = {
            bisect_right(reps, address) - 1 for address in degraded_flips
        }
        for index, names in candidates.items():
            if index in dirty_set:
                continue
            rep = reps[index]
            if rep in self.dataplane.degraded_owned:
                # Degraded on both sides (flips were handled above):
                # the verdict is UNKNOWN_DEGRADED either way, so the
                # base table carries over no matter what the FIB says.
                continue
            for name in names:
                before = self.dataplane.devices[name].compiled_index().probe(
                    rep
                )
                match = target.devices[name].trie.longest_match(rep)
                after = match[1] if match is not None else None
                if links_changed[name]:
                    if self._resolve_node(
                        name, before, rep
                    ) != derived._resolve_node(name, after, rep):
                        dirty_set.add(index)
                        break
                elif before is not after and before != after:
                    dirty_set.add(index)
                    break
        if atoms and len(dirty_set) / len(atoms) > _delta_threshold():
            raise DeltaUnapplicable("dirty-fraction")

        # (c) Patch: rebuild dirty atoms (graph assembly + SCC run),
        # adopt base tables for clean ones. Touched devices' entries at
        # dirty reps come from direct trie probes — never a compiled-
        # index rebuild, whose cost is what this whole path avoids;
        # untouched devices probe their resident shared index.
        sparse: dict[str, dict[int, object]] = {name: {} for name in touched}
        for index in dirty_set:
            rep = reps[index]
            for name in touched:
                match = target.devices[name].trie.longest_match(rep)
                sparse[name][index] = match[1] if match is not None else None
        for index, base_index in enumerate(base_of):
            if index in dirty_set:
                derived._build_atom(index, sparse)
            else:
                derived._tables[index] = self._tables[base_index]
        derived._complete = True
        derived.delta_stats = DeltaStats(
            base_fingerprint=self.dataplane.fib_fingerprint(),
            dirty_atoms=len(dirty_set),
            total_atoms=len(atoms),
            reused_tables=len(atoms) - len(dirty_set),
            reused_indexes=reused_indexes,
            rebuilt_indexes=len(touched),
            touched_devices=tuple(touched),
            apply_seconds=time.perf_counter() - start,
        )
        return derived

    def _interface_force_indexes(
        self, device_delta, target: Dataplane, reps: list[int]
    ) -> set[int]:
        """Rep indexes where a link-touched device's struct must be
        re-resolved regardless of entry equality: anything inside one of
        its *moved* interfaces' /32 or subnet prefixes (either side of
        the delta), where address ownership and direct delivery can
        change under an unchanged governing entry."""
        changed = set(device_delta.changed_interfaces)
        prefixes: list[Prefix] = []
        for dataplane in (self.dataplane, target):
            device = dataplane.devices[device_delta.device]
            for iface, (
                address,
                length,
            ) in device.interface_addresses.items():
                if iface not in changed:
                    continue
                prefixes.append(Prefix.containing(address, 32))
                prefixes.append(Prefix.containing(address, length))
        return _prefix_indexes(prefixes, reps)

    # -- construction -------------------------------------------------------

    def _ensure_all(self) -> None:
        """Resolve every (device, atom) decision in one sweep per device
        and assemble/evaluate each atom's graph."""
        if self._complete:
            return
        decisions = self._sweep_decisions()
        for index in range(len(self.atoms)):
            if index not in self._tables:
                self._build_atom(index, decisions)
        self._complete = True

    def _sweep_decisions(self) -> dict[str, list]:
        """Per device: the FIB entry governing each atom, via one
        linear merge of the compiled index against the sorted reps."""
        return {
            name: self.dataplane.devices[name].compiled_index().sweep(
                self._reps
            )
            for name in self._names
        }

    def _build_atom(
        self, index: int, decisions: Optional[dict[str, list]] = None
    ) -> dict[str, AtomVerdict]:
        rep = self._reps[index]
        if rep in self.dataplane.degraded_owned:
            # The atom's destination is owned by a degraded node
            # (partial snapshot): every ingress answers UNKNOWN_DEGRADED
            # — the graph would otherwise conclude NO_ROUTE from the
            # node's absence. Degraded addresses are /32 atom
            # boundaries, so the whole atom is the degraded address.
            verdict = AtomVerdict(
                dispositions=frozenset({Disposition.UNKNOWN_DEGRADED}),
                accepts=frozenset(),
                tainted=False,
            )
            table = {name: verdict for name in self._names}
            self._tables[index] = table
            return table
        structs: dict[str, tuple] = {}
        for name in self._names:
            per_device = decisions.get(name) if decisions is not None else None
            if per_device is not None:
                entry = per_device[index]
            else:
                entry = self.dataplane.devices[name].compiled_index().probe(
                    rep
                )
            structs[name] = self._resolve_node(name, entry, rep)
        key = tuple(structs[name] for name in self._names)
        table = self._shared.get(key)
        if table is None:
            table = self._evaluate_graph(structs)
            self._shared[key] = table
            if bus.ACTIVE.enabled:
                bus.ACTIVE.count("verify.graph_builds")
        elif bus.ACTIVE.enabled:
            bus.ACTIVE.count("verify.graph_shared")
        self._tables[index] = table
        return table

    def _resolve_node(self, name: str, entry, rep: int) -> tuple:
        """One device's behaviour for one atom, as a hashable struct:
        ``(successor devices, terminal dispositions, accepted-here)``.

        Mirrors ``ForwardingWalk._explore`` exactly (minus ACLs, which
        taint instead): receive/discard/no-route terminate; forward
        hops either hand off to the subnet neighbor owning the gateway
        (or the destination itself when directly attached) or leave the
        modelled network.

        Most structs do not depend on the representative address at all
        (every hop names a gateway with a known subnet neighbor); those
        are memoized per FIB entry, so across a sweep each entry is
        resolved once — not once per atom it governs.
        """
        device_cache = self._node_cache.get(name)
        if device_cache is None:
            device_cache = self._node_cache[name] = {}
        cached = device_cache.get(entry)
        if cached is not None:
            return cached
        if entry is None or entry.entry_type in ("receive", "discard"):
            kind = None if entry is None else entry.entry_type
            struct = ((), (_TERMINAL[kind],), kind == "receive")
            device_cache[entry] = struct
            return struct
        successors: set[str] = set()
        terminals: set[Disposition] = set()
        rep_dependent = False
        for hop in entry.hops:
            gateway = hop.gateway
            if gateway is not None:
                hop_key = (name, hop.interface, gateway)
                try:
                    peer = self._hop_peers[hop_key]
                except KeyError:
                    resolved = self.dataplane.neighbor_via(
                        name, hop.interface, gateway, rep
                    )
                    peer = resolved[0] if resolved is not None else None
                    self._hop_peers[hop_key] = peer
                if peer is not None:
                    successors.add(peer)
                elif gateway == rep:
                    rep_dependent = True
                    terminals.add(self._direct_disposition(name, hop))
                else:
                    # EXITS unless the atom's representative *is* the
                    # gateway, so this branch is rep-dependent too.
                    rep_dependent = True
                    terminals.add(Disposition.EXITS_NETWORK)
                continue
            # Directly attached: the neighbor is the destination itself.
            rep_dependent = True
            resolved = self.dataplane.neighbor_via(
                name, hop.interface, None, rep
            )
            if resolved is not None:
                successors.add(resolved[0])
            else:
                terminals.add(self._direct_disposition(name, hop))
        struct = (
            tuple(sorted(successors)),
            tuple(sorted(terminals, key=lambda d: d.value)),
            False,
        )
        if not rep_dependent:
            device_cache[entry] = struct
        return struct

    def _direct_disposition(self, name: str, hop) -> Disposition:
        device = self.dataplane.devices[name]
        subnet_known = (
            (name, hop.interface) in self.dataplane.adjacency
            or hop.interface in device.interface_addresses
        )
        return (
            Disposition.DELIVERED_TO_SUBNET
            if subnet_known
            else Disposition.EXITS_NETWORK
        )

    # -- graph evaluation ---------------------------------------------------

    def _evaluate_graph(
        self, structs: dict[str, tuple]
    ) -> dict[str, AtomVerdict]:
        """Dispositions for every node in one linear pass.

        Tarjan's algorithm (iterative) emits SCCs with all successors
        already finished, so each SCC's verdict is the union of its
        members' terminals and its successor SCCs' verdicts — plus
        ``LOOP`` when the SCC is cyclic, because any walk entering it
        revisits a device.
        """
        index_of: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        verdicts: dict[str, AtomVerdict] = {}

        def successors(v: str) -> tuple:
            return structs[v][0]

        for root in self._names:
            if root in index_of:
                continue
            # Iterative Tarjan: (node, iterator position) frames.
            work = [(root, 0)]
            while work:
                v, pos = work.pop()
                if pos == 0:
                    index_of[v] = lowlink[v] = counter[0]
                    counter[0] += 1
                    stack.append(v)
                    on_stack.add(v)
                recurse = False
                succ = successors(v)
                for i in range(pos, len(succ)):
                    w = succ[i]
                    if w not in index_of:
                        work.append((v, i + 1))
                        work.append((w, 0))
                        recurse = True
                        break
                    if w in on_stack:
                        lowlink[v] = min(lowlink[v], index_of[w])
                if recurse:
                    continue
                if lowlink[v] == index_of[v]:
                    scc: list[str] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == v:
                            break
                    self._settle_scc(scc, structs, verdicts)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[v])
        return verdicts

    def _settle_scc(
        self,
        scc: list[str],
        structs: dict[str, tuple],
        verdicts: dict[str, AtomVerdict],
    ) -> None:
        members = set(scc)
        cyclic = len(scc) > 1
        dispositions: set[Disposition] = set()
        accepts: set[str] = set()
        tainted = False
        for v in scc:
            succ, terms, accepted_here = structs[v]
            dispositions.update(terms)
            if accepted_here:
                accepts.add(v)
            if v in self._acl_nodes:
                tainted = True
            for w in succ:
                if w in members:
                    cyclic = True  # covers self-loops
                    continue
                downstream = verdicts[w]
                dispositions.update(downstream.dispositions)
                accepts.update(downstream.accepts)
                tainted = tainted or downstream.tainted
        if cyclic:
            dispositions.add(Disposition.LOOP)
        verdict = AtomVerdict(
            dispositions=frozenset(dispositions),
            accepts=frozenset(accepts),
            tainted=tainted,
        )
        for v in scc:
            verdicts[v] = verdict

    # -- parallel fan-out ---------------------------------------------------

    def _precompute_parallel(self, workers: int) -> None:
        from concurrent.futures import ProcessPoolExecutor

        total = len(self.atoms)
        bounds = [(a.min(), a.max()) for a in self.atoms]
        shard_size = (total + workers - 1) // workers
        shards = [
            range(start, min(start + shard_size, total))
            for start in range(0, total, shard_size)
        ]
        if bus.ACTIVE.enabled:
            bus.ACTIVE.count("verify.engine_parallel_shards", len(shards))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = pool.map(
                _compute_shard,
                [
                    (self.dataplane, bounds, shard.start, shard.stop)
                    for shard in shards
                ],
            )
            for shard_tables in results:
                self._tables.update(shard_tables)
        self._complete = True


def _compute_shard(payload) -> dict[int, dict[str, AtomVerdict]]:
    """Worker entry point: rebuild the engine, evaluate one atom shard."""
    dataplane, bounds, start, stop = payload
    atoms = [IntervalSet.span(lo, hi) for lo, hi in bounds]
    engine = AtomGraphEngine(dataplane, atoms)
    decisions = engine._sweep_decisions()
    return {
        index: engine._build_atom(index, decisions)
        for index in range(start, stop)
    }


# -- the per-snapshot engine cache ------------------------------------------

_CACHE: OrderedDict[tuple, AtomGraphEngine] = OrderedDict()
_CACHE_LIMIT = 8  # default; override per process with MFV_ENGINE_CACHE
_CACHE_LOCK = threading.Lock()
# key -> build lock, so concurrent engine_for calls for the *same*
# forwarding state coalesce onto one build while distinct states still
# build in parallel (the service's worker threads hit this constantly).
_BUILDS: dict[tuple, threading.Lock] = {}


def _cache_limit() -> int:
    """The engine cache capacity (``MFV_ENGINE_CACHE``, default 8)."""
    raw = os.environ.get("MFV_ENGINE_CACHE")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            logger.warning("ignoring non-integer MFV_ENGINE_CACHE=%r", raw)
    return _CACHE_LIMIT


def _atoms_signature(atoms: Optional[Sequence[IntervalSet]]) -> int:
    if atoms is None:
        return 0
    return hash(tuple(atom.min() for atom in atoms))


def _cached_engine(key: tuple) -> Optional[AtomGraphEngine]:
    with _CACHE_LOCK:
        engine = _CACHE.get(key)
        if engine is not None:
            _CACHE.move_to_end(key)
            if bus.ACTIVE.enabled:
                bus.ACTIVE.count("verify.engine_cache_hits")
        return engine


def _register_engine(key: tuple, engine: AtomGraphEngine) -> AtomGraphEngine:
    """Insert ``engine`` under ``key`` — unless someone got there first.

    First registration wins: if a delta derivation landed while a cold
    build for the same fingerprint was still running (or vice versa),
    the later finisher's object is discarded and every caller converges
    on the already-cached engine. Without this, the slower build would
    silently replace the registered engine, and two engine objects for
    one fingerprint would serve queries side by side — the staleness
    hazard the ``verify.engine_build_discarded`` counter tracks.
    """
    with _CACHE_LOCK:
        existing = _CACHE.get(key)
        if existing is not None:
            _CACHE.move_to_end(key)
            _BUILDS.pop(key, None)
            if bus.ACTIVE.enabled:
                bus.ACTIVE.count("verify.engine_build_discarded")
            return existing
        _CACHE[key] = engine
        limit = _cache_limit()
        while len(_CACHE) > limit:
            _CACHE.popitem(last=False)
            if bus.ACTIVE.enabled:
                bus.ACTIVE.count("verify.engine_cache_evictions")
        _BUILDS.pop(key, None)
    return engine


def _derive_engine(
    dataplane: Dataplane, base: AtomGraphEngine, key: tuple
) -> tuple[Optional[AtomGraphEngine], Optional[str]]:
    """Attempt the delta path; returns (engine, fallback_reason).

    Runs *outside* the per-key build lock on purpose: a delta apply is
    cheap, and serializing it behind an in-flight cold build for the
    same key would forfeit exactly the latency it exists to save. The
    no-clobber registration in :func:`_register_engine` keeps the two
    paths convergent.
    """
    from repro.dataplane.delta import DataplaneDelta

    registry = bus.metrics_registry()
    start = time.perf_counter()
    try:
        delta = DataplaneDelta(base.dataplane, dataplane)
        engine = base.apply_delta(delta)
    except DeltaUnapplicable as exc:
        # The aggregate counter and the by-reason series get distinct
        # names: an unlabeled family cannot also carry labels, and the
        # flat trace plane records the aggregate under its bare name.
        if registry.enabled:
            registry.counter(
                "verify.delta_fallbacks",
                "Delta derivations abandoned for a cold build",
            ).inc()
            registry.counter(
                "verify.delta_fallback_reasons",
                "Delta derivations abandoned for a cold build, by reason",
                ("reason",),
            ).inc(reason=exc.reason)
        return None, exc.reason
    seconds = time.perf_counter() - start
    stats = engine.delta_stats
    assert stats is not None
    stats.apply_seconds = seconds  # include the diff itself
    if registry.enabled:
        registry.counter(
            "verify.delta_applies",
            "Engines derived incrementally from a resident base",
        ).inc()
        registry.counter(
            "verify.delta_dirty_atoms",
            "Total atoms re-evaluated across all delta applies",
        ).inc(stats.dirty_atoms)
        registry.histogram(
            "verify.dirty_atoms",
            "Atoms re-evaluated per delta apply",
            buckets=DIRTY_ATOM_BUCKETS,
        ).observe(stats.dirty_atoms)
        registry.histogram(
            "verify.delta_apply_seconds",
            "Wall seconds diffing and applying one dataplane delta",
        ).observe(seconds)
    return _register_engine(key, engine), None


def engine_for(
    dataplane: Dataplane,
    atoms: Optional[Sequence[IntervalSet]] = None,
    base: Optional[AtomGraphEngine] = None,
) -> AtomGraphEngine:
    """The memoized engine for ``dataplane`` (and atom partition).

    Keyed by FIB *content* hash, not object identity: two snapshots
    that converged to the same forwarding state — N seeds in a multirun
    sweep, a reloaded snapshot file — share one engine, so repeated
    differential and pybf queries stop rebuilding identical analyses.

    ``base`` supplies a lineage parent: on a cache miss the new engine
    is *derived* from it via :meth:`AtomGraphEngine.apply_delta` —
    patching only the atoms the FIB churn dirtied — and only falls back
    to a cold build when the delta is structurally unapplicable or
    exceeds ``MFV_DELTA_THRESHOLD`` (the fallback engine carries the
    reason in its ``delta_stats``). Lineage only composes with the
    default partition (``atoms is None``).

    Thread-safe: concurrent cold builds for one forwarding state
    coalesce onto a single build; a delta derivation racing a cold
    build for the same key resolves first-registration-wins, so every
    caller still receives one shared engine object per key.
    """
    key = (dataplane.fib_fingerprint(), _atoms_signature(atoms))
    engine = _cached_engine(key)
    if engine is not None:
        return engine
    fallback_reason: Optional[str] = None
    if (
        base is not None
        and atoms is None
        and base.dataplane.fib_fingerprint() != key[0]
    ):
        engine, fallback_reason = _derive_engine(dataplane, base, key)
        if engine is not None:
            return engine
    with _CACHE_LOCK:
        build = _BUILDS.get(key)
        if build is None:
            build = _BUILDS[key] = threading.Lock()
    with build:
        # A racing thread may have finished this build while we waited.
        engine = _cached_engine(key)
        if engine is not None:
            return engine
        if bus.ACTIVE.enabled:
            bus.ACTIVE.count("verify.engine_cache_misses")
        collector = bus.ACTIVE
        span = (
            collector.begin("verify.engine_build", 0.0, category="engine")
            if collector.enabled
            else None
        )
        build_start = time.perf_counter()
        engine = AtomGraphEngine(dataplane, atoms)
        build_seconds = time.perf_counter() - build_start
        if fallback_reason is not None:
            engine.delta_stats = DeltaStats(
                base_fingerprint=base.dataplane.fib_fingerprint()
                if base is not None
                else None,
                total_atoms=len(engine.atoms),
                fallback=fallback_reason,
            )
        if span is not None:
            collector.end(span, 0.0)
        registry = bus.metrics_registry()
        if registry.enabled:
            # Builds inside a service job carry its priority class —
            # that is how "p99 engine-build cost for interactive jobs"
            # becomes a scrapeable series.
            context = bus.current_job()
            registry.histogram(
                "verify.engine_build_seconds",
                "Wall seconds building one atom-graph engine",
                ("priority",),
            ).observe(
                build_seconds,
                priority=context.priority if context is not None else "none",
            )
        engine = _register_engine(key, engine)
    return engine


def clear_engine_cache() -> None:
    """Drop all memoized engines (tests and long-lived processes)."""
    with _CACHE_LOCK:
        _CACHE.clear()
        _BUILDS.clear()
