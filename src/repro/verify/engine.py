"""The atom-graph verification engine.

The scalar :class:`~repro.dataplane.forwarding.ForwardingWalk` answers
one (ingress, destination) pair per call, re-running a trie LPM lookup
at every hop — O(ingresses × atoms × pathlen × 32) for an exhaustive
query. This engine exploits the defining property of a destination atom
(every device's LPM decision is constant inside it) to do the whole
job in one pass per atom:

1. each device's FIB is flattened once into a *compiled LPM index*
   (:meth:`~repro.dataplane.model.DeviceForwarding.compiled_index`) and
   every atom's decision on every device is resolved by a single linear
   sweep — no per-hop lookups at all;
2. the decisions form a *next-hop graph* over the topology whose nodes
   either terminate (accept / discard / no-route / leave the network)
   or point at successor devices;
3. one SCC condensation of that graph (iterative Tarjan) yields the
   disposition set of **every** ingress simultaneously: a node's
   dispositions are the union of its terminals and its successors'
   dispositions, plus ``LOOP`` when it can reach a cycle.

Total cost is O(atoms × (V + E)) — independent of the number of
ingresses queried — and atoms whose decision vectors coincide share one
graph evaluation outright (the Plankton-style equivalence-class trick).

Devices with ACLs make a node's behaviour depend on the arrival
interface and non-destination header fields, which a per-atom node
function cannot express; ingresses whose reachable subgraph touches an
ACL-bearing device are flagged ``tainted`` and transparently fall back
to the exact scalar walk. The walk also remains the reference oracle:
``tests/test_verify_engine.py`` asserts row-for-row equivalence on
every shipped corpus.

Engines are memoized per dataplane *content* — see :func:`engine_for` —
so differential queries, multirun sweeps, and repeated pybf questions
stop rebuilding identical analyses.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.dataplane.forwarding import Disposition, ForwardingWalk, dst_atoms
from repro.dataplane.model import Dataplane
from repro.net.intervals import IntervalSet
from repro.obs import bus

logger = logging.getLogger(__name__)

#: Node-structure tags (see ``_resolve_node``).
_TERMINAL = {
    None: Disposition.NO_ROUTE,
    "receive": Disposition.ACCEPTED,
    "discard": Disposition.NULL_ROUTED,
}


@dataclass(frozen=True)
class AtomVerdict:
    """What happens to one atom's traffic entering at one device.

    ``dispositions`` is the union over every ECMP branch; ``accepts``
    the set of devices whose *receive* entry terminates some branch
    (what the all-pairs query needs); ``tainted`` marks verdicts whose
    reachable subgraph includes an ACL-bearing device — the graph
    abstraction cannot see ACL splits, so tainted queries must use the
    scalar walk.
    """

    dispositions: frozenset[Disposition]
    accepts: frozenset[str]
    tainted: bool

    @property
    def success(self) -> bool:
        return bool(self.dispositions) and all(
            d.is_success for d in self.dispositions
        )


class AtomGraphEngine:
    """One next-hop graph per destination atom, shared by every query.

    ``atoms`` defaults to the dataplane's own partition; differential
    and multirun callers pass a shared refinement so one engine per
    snapshot serves every pairwise comparison (any refinement of the
    atom partition keeps per-atom LPM decisions constant).
    """

    def __init__(
        self,
        dataplane: Dataplane,
        atoms: Optional[Sequence[IntervalSet]] = None,
    ) -> None:
        self.dataplane = dataplane
        self.atoms: list[IntervalSet] = list(
            atoms if atoms is not None else dst_atoms(dataplane)
        )
        self.walker = ForwardingWalk(dataplane)
        self._reps = [atom.min() for atom in self.atoms]
        self._names = dataplane.node_names()
        self._acl_nodes = frozenset(
            name
            for name, device in dataplane.devices.items()
            if device.has_acls
        )
        # atom index -> {device -> AtomVerdict}
        self._tables: dict[int, dict[str, AtomVerdict]] = {}
        # decision-vector key -> shared verdict table
        self._shared: dict[tuple, dict[str, AtomVerdict]] = {}
        # (device, interface, gateway) -> resolved peer device (or None)
        self._hop_peers: dict[tuple[str, str, int], Optional[str]] = {}
        # (device, entry) -> struct, for rep-independent resolutions.
        # Keyed by entry *content*, not id(): id() values are recycled
        # after GC, which in a long-lived process could silently alias
        # two different FIB entries; ForwardingEntry is frozen/hashable
        # so content keying is exact (and lets equal entries share).
        self._node_cache: dict[tuple, tuple] = {}
        self._complete = False
        if bus.ACTIVE.enabled:
            bus.ACTIVE.count("verify.engine_builds")
            bus.ACTIVE.count("verify.atoms", len(self.atoms))

    # -- public queries -----------------------------------------------------

    def verdict(self, ingress: str, atom_index: int) -> AtomVerdict:
        """The engine's verdict for ``ingress`` over atom ``atom_index``.

        Tainted verdicts describe reachability of an ACL device, not
        final dispositions — call :meth:`dispositions` for transparent
        scalar fallback.
        """
        table = self._tables.get(atom_index)
        if table is None:
            table = self._build_atom(atom_index)
        return table[ingress]

    def dispositions(
        self, ingress: str, atom_index: int
    ) -> frozenset[Disposition]:
        """Exact disposition set (scalar-walk fallback when tainted)."""
        verdict = self.verdict(ingress, atom_index)
        if not verdict.tainted:
            return verdict.dispositions
        return self.walker.walk(ingress, self._reps[atom_index]).dispositions

    def atom_index_of(self, address: int) -> int:
        """Index of the atom containing ``address``.

        Atoms are contiguous ascending spans covering the whole space,
        so this is a binary search over their lower bounds.
        """
        from bisect import bisect_right

        return bisect_right(self._reps, address) - 1

    def precompute(self, workers: Optional[int] = None) -> None:
        """Materialize every atom's verdict table.

        With ``workers`` > 1 the atom index range is sharded across a
        process pool — each worker rebuilds the engine from the pickled
        dataplane and returns its shard's tables. Falls back to the
        sequential sweep if the pool cannot be used (platform limits,
        unpicklable state).
        """
        if self._complete:
            return
        if workers is not None and workers > 1 and len(self.atoms) > 64:
            try:
                self._precompute_parallel(workers)
                return
            except Exception as exc:  # pragma: no cover - platform dependent
                logger.warning(
                    "process-pool precompute failed (%s); "
                    "falling back to sequential",
                    exc,
                )
        self._ensure_all()

    # -- construction -------------------------------------------------------

    def _ensure_all(self) -> None:
        """Resolve every (device, atom) decision in one sweep per device
        and assemble/evaluate each atom's graph."""
        if self._complete:
            return
        decisions = self._sweep_decisions()
        for index in range(len(self.atoms)):
            if index not in self._tables:
                self._build_atom(index, decisions)
        self._complete = True

    def _sweep_decisions(self) -> dict[str, list]:
        """Per device: the FIB entry governing each atom, via one
        linear merge of the compiled index against the sorted reps."""
        return {
            name: self.dataplane.devices[name].compiled_index().sweep(
                self._reps
            )
            for name in self._names
        }

    def _build_atom(
        self, index: int, decisions: Optional[dict[str, list]] = None
    ) -> dict[str, AtomVerdict]:
        rep = self._reps[index]
        if rep in self.dataplane.degraded_owned:
            # The atom's destination is owned by a degraded node
            # (partial snapshot): every ingress answers UNKNOWN_DEGRADED
            # — the graph would otherwise conclude NO_ROUTE from the
            # node's absence. Degraded addresses are /32 atom
            # boundaries, so the whole atom is the degraded address.
            verdict = AtomVerdict(
                dispositions=frozenset({Disposition.UNKNOWN_DEGRADED}),
                accepts=frozenset(),
                tainted=False,
            )
            table = {name: verdict for name in self._names}
            self._tables[index] = table
            return table
        structs: dict[str, tuple] = {}
        for name in self._names:
            if decisions is not None:
                entry = decisions[name][index]
            else:
                entry = self.dataplane.devices[name].compiled_index().probe(
                    rep
                )
            structs[name] = self._resolve_node(name, entry, rep)
        key = tuple(structs[name] for name in self._names)
        table = self._shared.get(key)
        if table is None:
            table = self._evaluate_graph(structs)
            self._shared[key] = table
            if bus.ACTIVE.enabled:
                bus.ACTIVE.count("verify.graph_builds")
        elif bus.ACTIVE.enabled:
            bus.ACTIVE.count("verify.graph_shared")
        self._tables[index] = table
        return table

    def _resolve_node(self, name: str, entry, rep: int) -> tuple:
        """One device's behaviour for one atom, as a hashable struct:
        ``(successor devices, terminal dispositions, accepted-here)``.

        Mirrors ``ForwardingWalk._explore`` exactly (minus ACLs, which
        taint instead): receive/discard/no-route terminate; forward
        hops either hand off to the subnet neighbor owning the gateway
        (or the destination itself when directly attached) or leave the
        modelled network.

        Most structs do not depend on the representative address at all
        (every hop names a gateway with a known subnet neighbor); those
        are memoized per FIB entry, so across a sweep each entry is
        resolved once — not once per atom it governs.
        """
        cache_key = (name, entry)
        cached = self._node_cache.get(cache_key)
        if cached is not None:
            return cached
        if entry is None or entry.entry_type in ("receive", "discard"):
            kind = None if entry is None else entry.entry_type
            struct = ((), (_TERMINAL[kind],), kind == "receive")
            self._node_cache[cache_key] = struct
            return struct
        successors: set[str] = set()
        terminals: set[Disposition] = set()
        rep_dependent = False
        for hop in entry.hops:
            gateway = hop.gateway
            if gateway is not None:
                hop_key = (name, hop.interface, gateway)
                try:
                    peer = self._hop_peers[hop_key]
                except KeyError:
                    resolved = self.dataplane.neighbor_via(
                        name, hop.interface, gateway, rep
                    )
                    peer = resolved[0] if resolved is not None else None
                    self._hop_peers[hop_key] = peer
                if peer is not None:
                    successors.add(peer)
                elif gateway == rep:
                    rep_dependent = True
                    terminals.add(self._direct_disposition(name, hop))
                else:
                    # EXITS unless the atom's representative *is* the
                    # gateway, so this branch is rep-dependent too.
                    rep_dependent = True
                    terminals.add(Disposition.EXITS_NETWORK)
                continue
            # Directly attached: the neighbor is the destination itself.
            rep_dependent = True
            resolved = self.dataplane.neighbor_via(
                name, hop.interface, None, rep
            )
            if resolved is not None:
                successors.add(resolved[0])
            else:
                terminals.add(self._direct_disposition(name, hop))
        struct = (
            tuple(sorted(successors)),
            tuple(sorted(terminals, key=lambda d: d.value)),
            False,
        )
        if not rep_dependent:
            self._node_cache[cache_key] = struct
        return struct

    def _direct_disposition(self, name: str, hop) -> Disposition:
        device = self.dataplane.devices[name]
        subnet_known = (
            (name, hop.interface) in self.dataplane.adjacency
            or hop.interface in device.interface_addresses
        )
        return (
            Disposition.DELIVERED_TO_SUBNET
            if subnet_known
            else Disposition.EXITS_NETWORK
        )

    # -- graph evaluation ---------------------------------------------------

    def _evaluate_graph(
        self, structs: dict[str, tuple]
    ) -> dict[str, AtomVerdict]:
        """Dispositions for every node in one linear pass.

        Tarjan's algorithm (iterative) emits SCCs with all successors
        already finished, so each SCC's verdict is the union of its
        members' terminals and its successor SCCs' verdicts — plus
        ``LOOP`` when the SCC is cyclic, because any walk entering it
        revisits a device.
        """
        index_of: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        verdicts: dict[str, AtomVerdict] = {}

        def successors(v: str) -> tuple:
            return structs[v][0]

        for root in self._names:
            if root in index_of:
                continue
            # Iterative Tarjan: (node, iterator position) frames.
            work = [(root, 0)]
            while work:
                v, pos = work.pop()
                if pos == 0:
                    index_of[v] = lowlink[v] = counter[0]
                    counter[0] += 1
                    stack.append(v)
                    on_stack.add(v)
                recurse = False
                succ = successors(v)
                for i in range(pos, len(succ)):
                    w = succ[i]
                    if w not in index_of:
                        work.append((v, i + 1))
                        work.append((w, 0))
                        recurse = True
                        break
                    if w in on_stack:
                        lowlink[v] = min(lowlink[v], index_of[w])
                if recurse:
                    continue
                if lowlink[v] == index_of[v]:
                    scc: list[str] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == v:
                            break
                    self._settle_scc(scc, structs, verdicts)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[v])
        return verdicts

    def _settle_scc(
        self,
        scc: list[str],
        structs: dict[str, tuple],
        verdicts: dict[str, AtomVerdict],
    ) -> None:
        members = set(scc)
        cyclic = len(scc) > 1
        dispositions: set[Disposition] = set()
        accepts: set[str] = set()
        tainted = False
        for v in scc:
            succ, terms, accepted_here = structs[v]
            dispositions.update(terms)
            if accepted_here:
                accepts.add(v)
            if v in self._acl_nodes:
                tainted = True
            for w in succ:
                if w in members:
                    cyclic = True  # covers self-loops
                    continue
                downstream = verdicts[w]
                dispositions.update(downstream.dispositions)
                accepts.update(downstream.accepts)
                tainted = tainted or downstream.tainted
        if cyclic:
            dispositions.add(Disposition.LOOP)
        verdict = AtomVerdict(
            dispositions=frozenset(dispositions),
            accepts=frozenset(accepts),
            tainted=tainted,
        )
        for v in scc:
            verdicts[v] = verdict

    # -- parallel fan-out ---------------------------------------------------

    def _precompute_parallel(self, workers: int) -> None:
        from concurrent.futures import ProcessPoolExecutor

        total = len(self.atoms)
        bounds = [(a.min(), a.max()) for a in self.atoms]
        shard_size = (total + workers - 1) // workers
        shards = [
            range(start, min(start + shard_size, total))
            for start in range(0, total, shard_size)
        ]
        if bus.ACTIVE.enabled:
            bus.ACTIVE.count("verify.engine_parallel_shards", len(shards))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = pool.map(
                _compute_shard,
                [
                    (self.dataplane, bounds, shard.start, shard.stop)
                    for shard in shards
                ],
            )
            for shard_tables in results:
                self._tables.update(shard_tables)
        self._complete = True


def _compute_shard(payload) -> dict[int, dict[str, AtomVerdict]]:
    """Worker entry point: rebuild the engine, evaluate one atom shard."""
    dataplane, bounds, start, stop = payload
    atoms = [IntervalSet.span(lo, hi) for lo, hi in bounds]
    engine = AtomGraphEngine(dataplane, atoms)
    decisions = engine._sweep_decisions()
    return {
        index: engine._build_atom(index, decisions)
        for index in range(start, stop)
    }


# -- the per-snapshot engine cache ------------------------------------------

_CACHE: OrderedDict[tuple, AtomGraphEngine] = OrderedDict()
_CACHE_LIMIT = 8  # default; override per process with MFV_ENGINE_CACHE
_CACHE_LOCK = threading.Lock()
# key -> build lock, so concurrent engine_for calls for the *same*
# forwarding state coalesce onto one build while distinct states still
# build in parallel (the service's worker threads hit this constantly).
_BUILDS: dict[tuple, threading.Lock] = {}


def _cache_limit() -> int:
    """The engine cache capacity (``MFV_ENGINE_CACHE``, default 8)."""
    raw = os.environ.get("MFV_ENGINE_CACHE")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            logger.warning("ignoring non-integer MFV_ENGINE_CACHE=%r", raw)
    return _CACHE_LIMIT


def _atoms_signature(atoms: Optional[Sequence[IntervalSet]]) -> int:
    if atoms is None:
        return 0
    return hash(tuple(atom.min() for atom in atoms))


def _cached_engine(key: tuple) -> Optional[AtomGraphEngine]:
    with _CACHE_LOCK:
        engine = _CACHE.get(key)
        if engine is not None:
            _CACHE.move_to_end(key)
            if bus.ACTIVE.enabled:
                bus.ACTIVE.count("verify.engine_cache_hits")
        return engine


def engine_for(
    dataplane: Dataplane,
    atoms: Optional[Sequence[IntervalSet]] = None,
) -> AtomGraphEngine:
    """The memoized engine for ``dataplane`` (and atom partition).

    Keyed by FIB *content* hash, not object identity: two snapshots
    that converged to the same forwarding state — N seeds in a multirun
    sweep, a reloaded snapshot file — share one engine, so repeated
    differential and pybf queries stop rebuilding identical analyses.

    Thread-safe: concurrent calls for one forwarding state coalesce
    onto a single build and all receive the shared engine object.
    """
    key = (dataplane.fib_fingerprint(), _atoms_signature(atoms))
    engine = _cached_engine(key)
    if engine is not None:
        return engine
    with _CACHE_LOCK:
        build = _BUILDS.get(key)
        if build is None:
            build = _BUILDS[key] = threading.Lock()
    with build:
        # A racing thread may have finished this build while we waited.
        engine = _cached_engine(key)
        if engine is not None:
            return engine
        if bus.ACTIVE.enabled:
            bus.ACTIVE.count("verify.engine_cache_misses")
        collector = bus.ACTIVE
        span = (
            collector.begin("verify.engine_build", 0.0, category="engine")
            if collector.enabled
            else None
        )
        build_start = time.perf_counter()
        engine = AtomGraphEngine(dataplane, atoms)
        build_seconds = time.perf_counter() - build_start
        if span is not None:
            collector.end(span, 0.0)
        registry = bus.metrics_registry()
        if registry.enabled:
            # Builds inside a service job carry its priority class —
            # that is how "p99 engine-build cost for interactive jobs"
            # becomes a scrapeable series.
            context = bus.current_job()
            registry.histogram(
                "verify.engine_build_seconds",
                "Wall seconds building one atom-graph engine",
                ("priority",),
            ).observe(
                build_seconds,
                priority=context.priority if context is not None else "none",
            )
        with _CACHE_LOCK:
            _CACHE[key] = engine
            limit = _cache_limit()
            while len(_CACHE) > limit:
                _CACHE.popitem(last=False)
                if bus.ACTIVE.enabled:
                    bus.ACTIVE.count("verify.engine_cache_evictions")
            _BUILDS.pop(key, None)
    return engine


def clear_engine_cache() -> None:
    """Drop all memoized engines (tests and long-lived processes)."""
    with _CACHE_LOCK:
        _CACHE.clear()
        _BUILDS.clear()
