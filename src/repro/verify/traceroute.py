"""Virtual traceroute over a dataplane snapshot."""

from __future__ import annotations

from typing import Union

from repro.dataplane.forwarding import ForwardingWalk, WalkResult
from repro.dataplane.model import Dataplane
from repro.net.addr import parse_ipv4


def traceroute(
    dataplane: Dataplane, ingress: str, destination: Union[str, int]
) -> WalkResult:
    """Trace one concrete destination from ``ingress``.

    Unlike a live traceroute this is exact and side-effect free: it
    follows the extracted FIBs, enumerating every ECMP branch.
    """
    if isinstance(destination, str):
        destination = parse_ipv4(destination)
    return ForwardingWalk(dataplane).walk(ingress, destination)
