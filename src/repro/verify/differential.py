"""Differential reachability between two dataplane snapshots.

This is the query the paper leans on twice:

* E1 (Fig. 2): same backend, two *configurations* (healthy vs. buggy) —
  the diff localizes exactly which traffic a change breaks;
* E3 (Fig. 3): same configuration, two *backends* (model-based vs.
  emulation-derived) — the diff surfaces where the model diverges from
  the real control plane.

The analysis is exhaustive over the union of both snapshots' destination
atoms: every possible destination address is classified in both
snapshots, and every (ingress, atom) whose disposition set changed is
reported with a concrete witness flow and both traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.dataplane.forwarding import (
    Disposition,
    ForwardingWalk,
    Trace,
)
from repro.dataplane.model import Dataplane
from repro.net.addr import MAX_IPV4, format_ipv4
from repro.net.headerspace import HeaderSpace
from repro.net.intervals import IntervalSet
from repro.verify.engine import AtomGraphEngine, engine_for


def _merged_pieces(
    ref_engine: AtomGraphEngine, new_engine: AtomGraphEngine
) -> list[tuple[IntervalSet, int, int]]:
    """The merge of two engines' partitions, as (piece, ref atom index,
    snapshot atom index) triples.

    Each engine's atoms are contiguous ascending spans covering the
    whole space, so cutting at the union of their lower bounds yields
    pieces lying inside exactly one atom of each engine — within a
    piece both verdicts are constant, which is all the comparison loop
    needs.
    """
    bounds = sorted(
        {atom.min() for atom in ref_engine.atoms}
        | {atom.min() for atom in new_engine.atoms}
    )
    uppers = bounds[1:] + [MAX_IPV4 + 1]
    return [
        (
            IntervalSet.span(lo, hi - 1),
            ref_engine.atom_index_of(lo),
            new_engine.atom_index_of(lo),
        )
        for lo, hi in zip(bounds, uppers)
    ]


@dataclass(frozen=True)
class DifferentialRow:
    """One (ingress, destination set) whose behaviour differs."""

    ingress: str
    dst_set: IntervalSet
    sample_destination: int
    reference_dispositions: frozenset[Disposition]
    snapshot_dispositions: frozenset[Disposition]
    reference_traces: tuple[Trace, ...]
    snapshot_traces: tuple[Trace, ...]

    @property
    def regressed(self) -> bool:
        """Success in the reference, any failure in the snapshot."""
        ref_ok = all(d.is_success for d in self.reference_dispositions)
        new_ok = all(d.is_success for d in self.snapshot_dispositions)
        return ref_ok and not new_ok

    @property
    def improved(self) -> bool:
        ref_ok = all(d.is_success for d in self.reference_dispositions)
        new_ok = all(d.is_success for d in self.snapshot_dispositions)
        return new_ok and not ref_ok

    def __str__(self) -> str:
        ref = ",".join(sorted(d.value for d in self.reference_dispositions))
        new = ",".join(sorted(d.value for d in self.snapshot_dispositions))
        return (
            f"{self.ingress} -> {format_ipv4(self.sample_destination)} "
            f"(covering {len(self.dst_set)} addrs): {ref} => {new}"
        )


@dataclass(frozen=True)
class BaselineComparison:
    """One snapshot judged against a fixed baseline.

    ``new_*`` counts are invariant *deltas* clamped at zero: a what-if
    scenario is charged for the loops/blackholes/unreachable pairs it
    introduces, never credited for ones the baseline already had.
    """

    rows: tuple[DifferentialRow, ...]
    invariants: dict[str, int]
    new_loops: int
    new_blackholes: int
    new_unreachable_pairs: int
    identical: bool = False

    @property
    def regressed(self) -> int:
        return sum(1 for row in self.rows if row.regressed)

    @property
    def improved(self) -> int:
        return sum(1 for row in self.rows if row.improved)

    @property
    def changed(self) -> int:
        return len(self.rows)


class BaselineDiff:
    """Many snapshots, one baseline: the campaign's verification core.

    Holds the reference dataplane plus everything derivable from it that
    every comparison needs — its fingerprint, its invariant summary —
    computed once. :meth:`compare` short-circuits on fingerprint
    equality (the common case for a cleanly reverted scenario and for
    any failure the IGP routes around without behaviour change), so the
    atom-graph engine only runs for snapshots that actually differ.
    """

    def __init__(self, reference: Dataplane) -> None:
        from repro.verify.invariants import verification_summary

        self.reference = reference
        self.fingerprint = reference.fib_fingerprint()
        self.baseline_invariants = verification_summary(reference)
        # The baseline's engine, pinned for the campaign's lifetime: it
        # is the delta base every differing scenario derives from
        # (verification_summary above already built and cached it).
        self.reference_engine = engine_for(reference)
        #: Lineage record of the latest :meth:`compare`'s snapshot
        #: engine: :class:`~repro.verify.engine.DeltaStats` after a
        #: non-identical comparison, None after a fingerprint skip.
        self.last_delta_stats = None

    def compare(self, snapshot: Dataplane) -> BaselineComparison:
        from repro.obs import bus
        from repro.verify.invariants import verification_summary

        if snapshot.fib_fingerprint() == self.fingerprint:
            collector = bus.ACTIVE
            if collector.enabled:
                collector.count("verify.baseline_diff_skips")
            self.last_delta_stats = None
            return BaselineComparison(
                rows=(),
                invariants=dict(self.baseline_invariants),
                new_loops=0,
                new_blackholes=0,
                new_unreachable_pairs=0,
                identical=True,
            )
        # Rows first: differential_reachability derives the snapshot's
        # engine from the baseline's via the delta path, and the
        # invariant summary below reuses it from the content cache —
        # so a single-link scenario verifies in time proportional to
        # its churn, never to the network.
        rows = differential_reachability(self.reference, snapshot)
        self.last_delta_stats = engine_for(snapshot).delta_stats
        invariants = verification_summary(snapshot)
        return BaselineComparison(
            rows=tuple(rows),
            invariants=invariants,
            new_loops=max(
                0, invariants["loops"] - self.baseline_invariants["loops"]
            ),
            new_blackholes=max(
                0,
                invariants["blackholes"]
                - self.baseline_invariants["blackholes"],
            ),
            new_unreachable_pairs=max(
                0,
                invariants["unreachable_pairs"]
                - self.baseline_invariants["unreachable_pairs"],
            ),
        )


def differential_reachability(
    reference: Dataplane,
    snapshot: Dataplane,
    *,
    ingress_nodes: Optional[Iterable[str]] = None,
    dst_space: Optional[HeaderSpace] = None,
    atoms: Optional[Sequence[IntervalSet]] = None,
) -> list[DifferentialRow]:
    """All behaviour differences between two snapshots.

    Only ingress devices present in both snapshots are compared.
    Adjacent differing atoms with identical (before, after) disposition
    pairs are merged, so each row is a maximal destination set with one
    coherent behaviour change.

    Both sides are evaluated by their (content-cached) atom-graph
    engines, so the comparison per (ingress, atom) is two table
    lookups; scalar walks run only to attach witness traces to
    differing rows and for ACL-tainted atoms, whose header-space splits
    require the exact walk comparison.

    Without ``atoms``, each snapshot keeps its *own* default partition
    — the snapshot engine derived incrementally from the reference's
    via :func:`engine_for`'s delta path when their churn allows — and
    the comparison iterates the merge of both partitions' boundaries
    (identical to the union partition, since boundaries are exactly the
    two prefix sets' endpoints). ``atoms`` may instead supply one
    shared pre-refined partition both engines are built over (it must
    refine the union partition of both dataplanes — multirun passes one
    shared across all seeds, so each snapshot's engine is built once,
    not once per pair).
    """
    common = set(reference.node_names()) & set(snapshot.node_names())
    nodes = sorted(common if ingress_nodes is None else
                   common & set(ingress_nodes))
    restriction = dst_space.dst_values() if dst_space is not None else None
    if atoms is None:
        ref_engine = engine_for(reference)
        new_engine = engine_for(snapshot, base=ref_engine)
        ref_engine.precompute()
        new_engine.precompute()
        spans = _merged_pieces(ref_engine, new_engine)
    else:
        ref_engine = engine_for(reference, atoms)
        new_engine = engine_for(snapshot, atoms)
        ref_engine.precompute()
        new_engine.precompute()
        spans = [(atom, index, index) for index, atom in enumerate(atoms)]
    ref_walk = ForwardingWalk(reference)
    new_walk = ForwardingWalk(snapshot)
    rows: list[DifferentialRow] = []
    for ingress in nodes:
        merged: dict[tuple, list] = {}
        for atom, ref_index, new_index in spans:
            piece = atom if restriction is None else (atom & restriction)
            if piece.is_empty():
                continue
            probe = piece.sample()
            ref_verdict = ref_engine.verdict(ingress, ref_index)
            new_verdict = new_engine.verdict(ingress, new_index)
            if ref_verdict.tainted or new_verdict.tainted:
                # ACLs may split the space on non-destination fields:
                # compare the exact per-slice behaviour, not samples.
                before = ref_walk.walk(ingress, probe)
                after = new_walk.walk(ingress, probe)
                if before.behaviour_equal(after):
                    continue
                key = (before.dispositions, after.dispositions)
            else:
                # No ACL anywhere reachable: every trace carries the
                # full queried space, so behaviour equality reduces to
                # disposition-set equality — no walk needed, and walks
                # for witness traces run once per merged row.
                if ref_verdict.dispositions == new_verdict.dispositions:
                    continue
                key = (ref_verdict.dispositions, new_verdict.dispositions)
                if key in merged:
                    merged[key][0] = merged[key][0] | piece
                    continue
                before = ref_walk.walk(ingress, probe)
                after = new_walk.walk(ingress, probe)
            bucket = merged.setdefault(key, [piece, before, after])
            if bucket[0] is not piece:
                bucket[0] = bucket[0] | piece
        for (ref_d, new_d), (dst_set, before, after) in merged.items():
            rows.append(
                DifferentialRow(
                    ingress=ingress,
                    dst_set=dst_set,
                    sample_destination=before.destination,
                    reference_dispositions=ref_d,
                    snapshot_dispositions=new_d,
                    reference_traces=before.traces,
                    snapshot_traces=after.traces,
                )
            )
    return rows
