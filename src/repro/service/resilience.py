"""The durable job journal and crash-recovery protocol.

The service's write-ahead log: every accepted *question* job appends a
``submit`` record before it runs, every lifecycle transition
(``start`` / ``retry`` / ``settle`` / ``dead-letter``) appends another,
and registered snapshots persist as content-addressed pickles beside a
``snapshot`` manifest record. On restart,
:meth:`VerificationService.recover <repro.service.service.VerificationService.recover>`
replays the log: snapshots re-register from the manifest, jobs that
were submitted (or mid-run) but never settled are requeued with their
idempotency key and a bumped delivery count, and jobs past the
redelivery limit are dead-lettered with a structured record instead of
looping forever.

Format: one JSON object per line (sorted keys), append-only, fsynced
every ``MFV_JOURNAL_FSYNC_BATCH`` records (and on every explicit
``flush``).  A torn final line — the crash happened mid-write — is
skipped on replay, which is exactly the write-ahead contract: a job
whose submit record never made it durable was never accepted.

Only *question* jobs are journaled: their
:class:`QuestionSpec` is a pure value (question name, params, content
fingerprints), so replay re-executes them deterministically. Batch
callables, campaigns and ensembles close over live objects and are
deliberately excluded (documented in the architecture notes).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Union

from repro.core.snapshot import Snapshot
from repro.service.store import env_int

logger = logging.getLogger(__name__)

#: Records buffered between fsyncs (override: ``MFV_JOURNAL_FSYNC_BATCH``).
DEFAULT_FSYNC_BATCH = 8

#: Redeliveries before a recovered job dead-letters
#: (override: ``MFV_REDELIVERY_LIMIT``).
DEFAULT_REDELIVERY_LIMIT = 3

JOURNAL_FILE = "journal.jsonl"
SNAPSHOT_DIR = "snapshots"


def _fp_hex(fingerprint: int) -> str:
    """Filesystem-safe content address for a (possibly negative) hash."""
    return format(fingerprint & 0xFFFFFFFFFFFFFFFF, "016x")


@dataclass(frozen=True)
class QuestionSpec:
    """The replayable identity of one question job.

    Everything needed to re-execute the job after a crash — and nothing
    live: names resolve through the recovered snapshot manifest, and the
    fingerprints pin the *content* the answer must be computed over, so
    a replay can never silently answer over different forwarding state.
    """

    question: str
    params: tuple
    snapshot: Optional[str]
    fingerprint: int
    reference_snapshot: Optional[str] = None
    reference_fingerprint: Optional[int] = None

    def key(self) -> str:
        """The idempotency key: a stable content hash of the spec."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "question": self.question,
            "params": [[k, v] for k, v in self.params],
            "snapshot": self.snapshot,
            "fingerprint": self.fingerprint,
            "reference_snapshot": self.reference_snapshot,
            "reference_fingerprint": self.reference_fingerprint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuestionSpec":
        return cls(
            question=data["question"],
            params=tuple((k, v) for k, v in data.get("params", ())),
            snapshot=data.get("snapshot"),
            fingerprint=data["fingerprint"],
            reference_snapshot=data.get("reference_snapshot"),
            reference_fingerprint=data.get("reference_fingerprint"),
        )


class JobJournal:
    """Append-only JSONL write-ahead log plus a snapshot manifest.

    Thread-safe: worker callbacks (settle, retry) append concurrently
    with the submission path. Batching is by record count — the
    ``fsync_batch``-th buffered record triggers ``flush()`` +
    ``os.fsync`` — so the durability window is bounded and measurable
    (the resilience bench gates the overhead at ≤ 1.05x).
    """

    def __init__(
        self,
        journal_dir: Union[str, Path],
        fsync_batch: Optional[int] = None,
    ) -> None:
        if fsync_batch is None:
            fsync_batch = env_int(
                "MFV_JOURNAL_FSYNC_BATCH", DEFAULT_FSYNC_BATCH
            )
        self.dir = Path(journal_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.path = self.dir / JOURNAL_FILE
        self.snapshot_dir = self.dir / SNAPSHOT_DIR
        self.snapshot_dir.mkdir(exist_ok=True)
        self.fsync_batch = max(1, fsync_batch)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._pending = 0
        #: delivery count per idempotency key (loaded lazily by the
        #: recovery path; fresh journals start empty).
        self._deliveries: dict[str, int] = {}
        #: fingerprints whose pickle + manifest record already exist.
        self._snapshots_recorded: set[int] = set()
        #: Chaos hook: called (record_index) before each append — the
        #: service fault plane injects journal-write stalls here.
        self.stall_hook: Optional[Callable[[int], None]] = None
        self.records_written = 0
        self.fsyncs = 0

    # -- low-level append ------------------------------------------------------

    def _append(self, record: dict) -> None:
        with self._lock:
            if self.stall_hook is not None:
                self.stall_hook(self.records_written)
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._pending += 1
            self.records_written += 1
            if self._pending >= self.fsync_batch:
                self._flush_locked()

    def _flush_locked(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._pending = 0
        self.fsyncs += 1

    def flush(self) -> None:
        with self._lock:
            if self._pending:
                self._flush_locked()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                if self._pending:
                    self._flush_locked()
                self._fh.close()

    # -- snapshot manifest -----------------------------------------------------

    def record_snapshot(self, name: str, snapshot: Snapshot) -> int:
        """Persist ``snapshot`` content-addressed; returns its fingerprint.

        The pickle is written once per distinct forwarding content
        (write to a temp file, then atomic rename — a crash mid-pickle
        leaves no half file under the content address). Re-registering
        known content appends nothing.
        """
        fingerprint = snapshot.dataplane.fib_fingerprint()
        with self._lock:
            known = fingerprint in self._snapshots_recorded
        if known:
            return fingerprint
        path = self.snapshot_dir / f"{_fp_hex(fingerprint)}.pkl"
        if not path.exists():
            tmp = path.with_suffix(".tmp")
            with open(tmp, "wb") as fh:
                pickle.dump(snapshot, fh, protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        self._append(
            {
                "type": "snapshot",
                "name": name,
                "fingerprint": fingerprint,
                "path": f"{SNAPSHOT_DIR}/{path.name}",
                "t": time.time(),
            }
        )
        with self._lock:
            self._snapshots_recorded.add(fingerprint)
        return fingerprint

    def snapshot_path(self, fingerprint: int) -> Path:
        return self.snapshot_dir / f"{_fp_hex(fingerprint)}.pkl"

    # -- job lifecycle ---------------------------------------------------------

    def record_submit(
        self,
        spec: QuestionSpec,
        *,
        priority: str,
        timeout: Optional[float],
    ) -> tuple[str, int]:
        """Journal one accepted submission; returns (key, deliveries)."""
        key = spec.key()
        with self._lock:
            deliveries = self._deliveries.get(key, 0) + 1
            self._deliveries[key] = deliveries
        self._append(
            {
                "type": "submit",
                "key": key,
                "spec": spec.to_dict(),
                "priority": priority,
                "timeout": timeout,
                "deliveries": deliveries,
                "t": time.time(),
            }
        )
        return key, deliveries

    def record_start(self, key: str) -> None:
        self._append({"type": "start", "key": key, "t": time.time()})

    def record_retry(self, key: str, attempt: int) -> None:
        self._append(
            {"type": "retry", "key": key, "attempt": attempt,
             "t": time.time()}
        )

    def record_redelivery(self, key: str) -> int:
        """A supervisor requeued the job; returns the new delivery count."""
        with self._lock:
            deliveries = self._deliveries.get(key, 0) + 1
            self._deliveries[key] = deliveries
        self._append(
            {
                "type": "redeliver",
                "key": key,
                "deliveries": deliveries,
                "t": time.time(),
            }
        )
        return deliveries

    def record_settle(self, key: str, state: str) -> None:
        self._append(
            {"type": "settle", "key": key, "state": state, "t": time.time()}
        )

    def record_dead_letter(
        self, key: str, reason: str, deliveries: int
    ) -> None:
        self._append(
            {
                "type": "dead-letter",
                "key": key,
                "reason": reason,
                "deliveries": deliveries,
                "t": time.time(),
            }
        )
        self.flush()  # a dead letter is a terminal promise — make it durable

    def record_drain(self, counts: dict) -> None:
        self._append({"type": "drain", "t": time.time(), **counts})
        self.flush()

    def adopt_deliveries(self, deliveries: dict[str, int]) -> None:
        """Seed the delivery counters from a replayed journal state."""
        with self._lock:
            for key, count in deliveries.items():
                if count > self._deliveries.get(key, 0):
                    self._deliveries[key] = count

    def adopt_snapshots(self, fingerprints) -> None:
        """Mark replayed manifest entries as already recorded."""
        with self._lock:
            self._snapshots_recorded.update(fingerprints)

    def stats(self) -> dict:
        with self._lock:
            return {
                "dir": str(self.dir),
                "records_written": self.records_written,
                "fsyncs": self.fsyncs,
                "fsync_batch": self.fsync_batch,
                "snapshots": len(self._snapshots_recorded),
            }


@dataclass
class PendingJob:
    """One journaled job folded out of the log during replay."""

    key: str
    spec: QuestionSpec
    priority: str = "interactive"
    timeout: Optional[float] = None
    deliveries: int = 1
    started: bool = False
    settled: bool = False
    dead: bool = False


@dataclass
class JournalState:
    """Everything replay learned from one journal directory."""

    #: fingerprint -> latest registered name (manifest order).
    snapshots: "dict[int, str]" = field(default_factory=dict)
    #: idempotency key -> folded job state, submission order.
    jobs: "dict[str, PendingJob]" = field(default_factory=dict)
    records: int = 0
    torn_records: int = 0

    def pending(self) -> list[PendingJob]:
        """Jobs owed an outcome: submitted, never settled, not dead."""
        return [
            job for job in self.jobs.values()
            if not job.settled and not job.dead
        ]

    def deliveries(self) -> dict[str, int]:
        return {key: job.deliveries for key, job in self.jobs.items()}


def replay_journal(journal_dir: Union[str, Path]) -> JournalState:
    """Fold a journal directory into its recovered state.

    Tolerates a torn final record (counted, skipped): the write-ahead
    contract means an unreadable record was never acknowledged. Unknown
    record types are ignored for forward compatibility.
    """
    state = JournalState()
    path = Path(journal_dir) / JOURNAL_FILE
    if not path.exists():
        return state
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                state.torn_records += 1
                continue
            state.records += 1
            rtype = record.get("type")
            if rtype == "snapshot":
                state.snapshots[record["fingerprint"]] = record["name"]
                continue
            key = record.get("key")
            if rtype == "submit":
                job = state.jobs.get(key)
                if job is None:
                    try:
                        spec = QuestionSpec.from_dict(record["spec"])
                    except (KeyError, TypeError):
                        state.torn_records += 1
                        continue
                    job = state.jobs[key] = PendingJob(key=key, spec=spec)
                job.priority = record.get("priority", job.priority)
                job.timeout = record.get("timeout", job.timeout)
                job.deliveries = max(
                    job.deliveries, record.get("deliveries", 1)
                )
                # A resubmission after a settle re-opens the obligation.
                job.settled = False
                job.started = False
            elif rtype == "start" and key in state.jobs:
                state.jobs[key].started = True
            elif rtype == "redeliver" and key in state.jobs:
                job = state.jobs[key]
                job.deliveries = max(job.deliveries, record["deliveries"])
            elif rtype == "settle" and key in state.jobs:
                state.jobs[key].settled = True
            elif rtype == "dead-letter" and key in state.jobs:
                state.jobs[key].dead = True
    return state


@dataclass
class RecoveryReport:
    """What one ``VerificationService.recover()`` call did."""

    journal_dir: str
    records_replayed: int = 0
    torn_records: int = 0
    snapshots_recovered: int = 0
    jobs_requeued: int = 0
    jobs_dead_lettered: int = 0
    wall_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "journal_dir": self.journal_dir,
            "records_replayed": self.records_replayed,
            "torn_records": self.torn_records,
            "snapshots_recovered": self.snapshots_recovered,
            "jobs_requeued": self.jobs_requeued,
            "jobs_dead_lettered": self.jobs_dead_lettered,
            "wall_seconds": self.wall_seconds,
        }


@dataclass
class DeadLetter:
    """A journaled job the service gave up on — structured, never silent."""

    key: str
    reason: str
    deliveries: int
    question: str = ""
    snapshot: Optional[str] = None
    t: float = field(default_factory=time.time)

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "reason": self.reason,
            "deliveries": self.deliveries,
            "question": self.question,
            "snapshot": self.snapshot,
            "t": self.t,
        }


def load_manifest_snapshot(
    journal_dir: Union[str, Path], fingerprint: int
) -> Snapshot:
    """Unpickle one content-addressed snapshot from a journal manifest.

    Raises ``FileNotFoundError`` when the content was never persisted —
    callers (worker processes adopting a fingerprint, recovery replay)
    treat that as the snapshot having left durability, not as corruption.
    """
    path = Path(journal_dir) / SNAPSHOT_DIR / f"{_fp_hex(fingerprint)}.pkl"
    with open(path, "rb") as fh:
        return pickle.load(fh)


__all__ = [
    "DeadLetter",
    "DEFAULT_FSYNC_BATCH",
    "DEFAULT_REDELIVERY_LIMIT",
    "JobJournal",
    "JournalState",
    "PendingJob",
    "QuestionSpec",
    "RecoveryReport",
    "load_manifest_snapshot",
    "replay_journal",
]
