"""Supervised OS-process workers: crash isolation for verification jobs.

The thread :class:`~repro.service.workers.WorkerPool` amortizes engine
builds through shared memory, but it shares a fate with every job it
runs — one segfault, OOM kill, or wedged native loop takes the whole
service down, and a caller blocked in ``Job.result()`` waits forever.
:class:`SupervisedProcessPool` is the resilience-plane alternative
(and the stepping stone to the ROADMAP's multi-process scale-out):

* each worker is an **OS process** that adopts snapshots *by content
  fingerprint* from the journal's pickled manifest, builds its own
  pinned engines, and answers question jobs from a picklable
  :class:`~repro.service.resilience.QuestionSpec`;
* a worker **heartbeats** from a background thread every
  ``heartbeat_s / 2`` seconds, so a busy worker still beats while a
  crashed, killed, or truly hung one goes silent;
* the parent-side **supervisor thread** dispatches one job per worker
  at a time (exact in-flight accounting — a dead worker's job is
  *known*, not inferred), detects death (``process.is_alive()``) and
  hangs (``max_missed`` heartbeat intervals), kills and respawns the
  worker, and requeues the in-flight job with a bumped delivery count —
  dead-lettering into :class:`~repro.service.jobs.JobLostError` once
  redelivery is exhausted;
* jobs with a per-job timeout are **preemptable**: unlike the
  cooperative thread pool, a process worker that blows its deadline is
  killed and the job fails with a structured
  :class:`~repro.service.jobs.JobTimeoutError`.

Jobs without a picklable spec (batch callables, campaigns, ensembles)
fall back to one parent-side executor thread, so the service API is
identical in both pool modes.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import queue as queue_mod
import signal
import threading
import time
from typing import Callable, Optional

from repro.service.jobs import (
    Job,
    JobLostError,
    JobQueue,
    JobState,
    JobTimeoutError,
)
from repro.service.store import env_float, env_int

logger = logging.getLogger(__name__)

#: Default worker-process count (override: ``MFV_SERVICE_WORKERS``).
DEFAULT_PROCESS_WORKERS = 2

#: Heartbeat interval in seconds (override: ``MFV_WORKER_HEARTBEAT_S``).
DEFAULT_HEARTBEAT_S = 5.0

#: Missed heartbeat intervals before a live-looking process is declared
#: hung and killed.
DEFAULT_MAX_MISSED = 3


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )


# -- worker side (runs in the child process) ---------------------------------


def _worker_execute(spec, manifest_dir, store, snapshots):
    """Answer one QuestionSpec inside a worker process.

    Snapshots are adopted by fingerprint from the content-addressed
    manifest (cached per process), engines pin in the worker's own
    store — the ROADMAP's "a fingerprint can be adopted by any worker"
    made concrete.
    """
    from repro.pybf.session import Session
    from repro.service.resilience import load_manifest_snapshot

    def adopt(fingerprint):
        snap = snapshots.get(fingerprint)
        if snap is None:
            snap = load_manifest_snapshot(manifest_dir, fingerprint)
            snapshots[fingerprint] = snap
        return snap

    snap = adopt(spec.fingerprint)
    runner = Session(store=store)
    kwargs = {"snapshot": "__job__"}
    if spec.reference_fingerprint is not None:
        ref = adopt(spec.reference_fingerprint)
        runner.init_snapshot(ref, name="__reference__")
        kwargs["reference_snapshot"] = "__reference__"
        runner.init_snapshot(
            snap, name="__job__", parent=spec.reference_fingerprint
        )
    else:
        runner.init_snapshot(snap, name="__job__")
    factory = getattr(runner.q, spec.question)
    value = factory(**dict(spec.params)).answer(**kwargs)
    degraded = bool(getattr(snap, "degraded_nodes", None))
    return value, degraded


def _worker_main(worker_id, task_q, result_q, manifest_dir, heartbeat_s):
    """The worker process entry point: heartbeat + task loop."""
    from repro.service.store import SnapshotStore

    stop_beating = threading.Event()

    def beat():
        while not stop_beating.wait(max(0.01, heartbeat_s / 2)):
            try:
                result_q.put(("heartbeat", worker_id, time.time()))
            except Exception:  # queue torn down mid-shutdown
                return

    threading.Thread(
        target=beat, name=f"mfv-worker-{worker_id}-heartbeat", daemon=True
    ).start()
    result_q.put(("ready", worker_id, os.getpid()))
    store = SnapshotStore()
    snapshots: dict = {}
    while True:
        task = task_q.get()
        if task is None:
            stop_beating.set()
            result_q.put(("bye", worker_id, os.getpid()))
            return
        job_id, spec = task
        try:
            value, degraded = _worker_execute(
                spec, manifest_dir, store, snapshots
            )
            result_q.put(("done", worker_id, job_id, value, degraded))
        except BaseException as exc:  # noqa: BLE001 — report, don't die
            result_q.put(
                ("failed", worker_id, job_id, type(exc).__name__, str(exc))
            )


# -- parent side -------------------------------------------------------------


class _Worker:
    """Parent-side bookkeeping for one supervised process."""

    __slots__ = ("index", "process", "task_q", "last_heartbeat",
                 "job", "dispatched_at", "generation")

    def __init__(self, index: int, process, task_q, generation: int) -> None:
        self.index = index
        self.process = process
        self.task_q = task_q
        self.last_heartbeat = time.monotonic()
        self.job: Optional[Job] = None
        self.dispatched_at: Optional[float] = None
        self.generation = generation

    @property
    def idle(self) -> bool:
        return self.job is None


class SupervisedProcessPool:
    """Heartbeat-monitored process workers draining one :class:`JobQueue`.

    API-compatible with the thread :class:`WorkerPool` where the service
    touches it (``start`` / ``stop`` / ``running`` / callbacks), plus
    the supervision surface: ``kill_worker`` (chaos), ``on_dispatch``
    (chaos hook), ``on_requeue`` (redelivery accounting, owned by the
    service), ``respawns`` / ``redeliveries`` counters.
    """

    def __init__(
        self,
        queue: JobQueue,
        *,
        manifest_dir,
        workers: Optional[int] = None,
        heartbeat_s: Optional[float] = None,
        max_missed: int = DEFAULT_MAX_MISSED,
        on_start: Optional[Callable[[Job], None]] = None,
        on_done: Optional[Callable[[Job], None]] = None,
        on_requeue: Optional[Callable[[Job, str], bool]] = None,
        on_degraded: Optional[Callable[[Job], None]] = None,
    ) -> None:
        if workers is None:
            workers = env_int("MFV_SERVICE_WORKERS", DEFAULT_PROCESS_WORKERS)
        if heartbeat_s is None:
            heartbeat_s = env_float(
                "MFV_WORKER_HEARTBEAT_S", DEFAULT_HEARTBEAT_S, minimum=0.05
            )
        self.queue = queue
        self.manifest_dir = str(manifest_dir)
        self.workers = max(1, workers)
        self.heartbeat_s = heartbeat_s
        self.max_missed = max(1, max_missed)
        self._on_start = on_start
        self._on_done = on_done
        self._on_requeue = on_requeue
        self._on_degraded = on_degraded
        #: Chaos hook: called (job, worker_index, dispatch_index) right
        #: after a job is handed to a worker.
        self.on_dispatch: Optional[Callable[[Job, int, int], None]] = None
        #: Drain accounting hook (set by the service, mirrors WorkerPool).
        self.on_drain: Optional[Callable[[dict], None]] = None
        self.registry = None  # parity with WorkerPool; parent-side only
        self._ctx = _mp_context()
        self._result_q = None
        self._pool: dict[int, _Worker] = {}
        self._inline_jobs: list[Job] = []
        self._supervisor: Optional[threading.Thread] = None
        self._inline_thread: Optional[threading.Thread] = None
        self._inline_queue: "queue_mod.Queue[Optional[Job]]" = (
            queue_mod.Queue()
        )
        self._stopping = threading.Event()
        self._draining = threading.Event()
        self._lock = threading.Lock()
        self._generation = 0
        self.dispatches = 0
        self.respawns = 0
        self.redeliveries = 0
        self.drained_count = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._supervisor is not None:
            return
        self._stopping.clear()
        self._draining.clear()
        self._result_q = self._ctx.Queue()
        for index in range(self.workers):
            self._spawn(index)
        self._supervisor = threading.Thread(
            target=self._supervise, name="mfv-supervisor", daemon=True
        )
        self._supervisor.start()
        self._inline_thread = threading.Thread(
            target=self._inline_loop, name="mfv-inline-worker", daemon=True
        )
        self._inline_thread.start()

    def _spawn(self, index: int) -> "_Worker":
        self._generation += 1
        task_q = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                index,
                task_q,
                self._result_q,
                self.manifest_dir,
                self.heartbeat_s,
            ),
            name=f"mfv-service-worker-{index}",
            daemon=True,
        )
        process.start()
        worker = _Worker(index, process, task_q, self._generation)
        self._pool[index] = worker
        return worker

    def stop(self, timeout: float = 5.0, drain: bool = True) -> dict:
        """Stop the pool; returns drain counts.

        ``drain=True`` (the default) keeps dispatching until the queue
        is empty or ``timeout`` passes; leftovers are rejected with a
        structured ``draining`` detail so no waiter blocks forever.
        """
        if self._supervisor is None:
            return {"settled": 0, "rejected": 0}
        deadline = time.monotonic() + max(0.0, timeout)
        if drain:
            self._draining.set()
            self.queue.close()
            while time.monotonic() < deadline:
                with self._lock:
                    busy = any(not w.idle for w in self._pool.values())
                if not busy and self.queue.depth == 0:
                    break
                time.sleep(0.02)
        self._stopping.set()
        self.queue.close()
        leftovers = self.queue.drain_remaining()
        for job in leftovers:
            job.reject(
                {"error": "draining", "detail": "service shut down before "
                 "this job could run"}
            )
            if self._on_done is not None:
                self._on_done(job)
        supervisor = self._supervisor
        supervisor.join(max(0.1, deadline - time.monotonic()))
        self._inline_queue.put(None)
        if self._inline_thread is not None:
            self._inline_thread.join(1.0)
        for worker in list(self._pool.values()):
            try:
                worker.task_q.put(None)
            except Exception:
                pass
        for worker in list(self._pool.values()):
            worker.process.join(0.5)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(0.5)
        self._pool.clear()
        self._supervisor = None
        self._inline_thread = None
        counts = {
            "settled": self.drained_count,
            "rejected": len(leftovers),
        }
        if drain and self.on_drain is not None:
            self.on_drain(counts)
        return counts

    @property
    def running(self) -> bool:
        return self._supervisor is not None

    # -- chaos surface ---------------------------------------------------------

    def kill_worker(self, index: int) -> bool:
        """SIGKILL one worker process (the chaos plane's crash lever)."""
        worker = self._pool.get(index)
        if worker is None or not worker.process.is_alive():
            return False
        try:
            os.kill(worker.process.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):
            return False
        return True

    # -- supervision loop ------------------------------------------------------

    def _supervise(self) -> None:
        poll = min(0.05, self.heartbeat_s / 4)
        while True:
            stopping = self._stopping.is_set()
            self._collect(poll)
            self._dispatch()
            self._check_liveness()
            self._check_timeouts()
            if stopping:
                with self._lock:
                    busy = any(not w.idle for w in self._pool.values())
                if not busy:
                    return

    @staticmethod
    def _expired(job: Job) -> bool:
        return (
            job.timeout is not None
            and time.monotonic() - job.submitted_at > job.timeout
        )

    def _dispatch(self) -> None:
        while True:
            with self._lock:
                worker = next(
                    (w for w in self._pool.values()
                     if w.idle and w.process.is_alive()),
                    None,
                )
            if worker is None:
                return
            job = self.queue.pop(timeout=0)
            if job is None:
                return
            if self._expired(job):
                job.mark_running()
                job.attempts = max(1, job.attempts)
                job.fail(
                    JobTimeoutError(
                        f"job {job.id} ({job.label}) missed its "
                        f"{job.timeout}s deadline while queued"
                    )
                )
                self._settle(job)
                continue
            if job.spec is None:
                # No picklable identity: run parent-side, supervised
                # only by the ordinary thread machinery.
                job.mark_running()
                job.attempts += 1
                if self._on_start is not None:
                    self._on_start(job)
                self._inline_queue.put(job)
                continue
            job.mark_running()
            job.attempts += 1
            if self._on_start is not None:
                self._on_start(job)
            with self._lock:
                worker.job = job
                worker.dispatched_at = time.monotonic()
                self.dispatches += 1
                dispatch_index = self.dispatches
            worker.task_q.put((job.id, job.spec))
            if self.on_dispatch is not None:
                try:
                    self.on_dispatch(job, worker.index, dispatch_index)
                except Exception:  # pragma: no cover - chaos hook bug
                    logger.exception("on_dispatch hook failed")

    def _collect(self, poll: float) -> None:
        try:
            message = self._result_q.get(timeout=poll)
        except (queue_mod.Empty, OSError, EOFError):
            return
        while True:
            kind = message[0]
            if kind == "heartbeat":
                _, worker_id, _t = message
                worker = self._pool.get(worker_id)
                if worker is not None:
                    worker.last_heartbeat = time.monotonic()
            elif kind in ("ready", "bye"):
                worker = self._pool.get(message[1])
                if worker is not None:
                    worker.last_heartbeat = time.monotonic()
            elif kind == "done":
                _, worker_id, job_id, value, degraded = message
                job = self._take_job(worker_id, job_id)
                if job is not None:
                    if degraded and self._on_degraded is not None:
                        self._on_degraded(job)
                    job.finish(value)
                    self._settle(job)
            elif kind == "failed":
                _, worker_id, job_id, etype, msg = message
                job = self._take_job(worker_id, job_id)
                if job is not None:
                    job.fail(RuntimeError(f"{etype}: {msg}"))
                    self._settle(job)
            try:
                message = self._result_q.get_nowait()
            except (queue_mod.Empty, OSError, EOFError):
                return

    def _take_job(self, worker_id: int, job_id: int) -> Optional[Job]:
        with self._lock:
            worker = self._pool.get(worker_id)
            if worker is None or worker.job is None:
                return None
            if worker.job.id != job_id:
                return None
            job = worker.job
            worker.job = None
            worker.dispatched_at = None
            worker.last_heartbeat = time.monotonic()
            return job

    def _check_liveness(self) -> None:
        now = time.monotonic()
        hung_after = self.heartbeat_s * self.max_missed
        for index, worker in list(self._pool.items()):
            dead = not worker.process.is_alive()
            hung = (
                not dead
                and now - worker.last_heartbeat > hung_after
            )
            if not dead and not hung:
                continue
            reason = (
                f"worker {index} "
                + ("crashed" if dead else
                   f"missed {self.max_missed} heartbeats")
            )
            logger.warning("%s; killing and respawning", reason)
            self._replace_worker(worker, reason)

    def _check_timeouts(self) -> None:
        now = time.monotonic()
        for worker in list(self._pool.values()):
            job = worker.job
            if job is None or job.timeout is None:
                continue
            if now - job.submitted_at <= job.timeout:
                continue
            # A process worker is preemptable: kill it rather than let
            # a runaway build hold the slot past the job's deadline.
            self._replace_worker(
                worker,
                f"job {job.id} deadline exceeded",
                fail_with=JobTimeoutError(
                    f"job {job.id} ({job.label}) exceeded its "
                    f"{job.timeout}s deadline in a process worker"
                ),
            )

    def _replace_worker(
        self,
        worker: "_Worker",
        reason: str,
        fail_with: Optional[BaseException] = None,
    ) -> None:
        with self._lock:
            current = self._pool.get(worker.index)
            if current is not worker:
                return  # already replaced
            job = worker.job
            worker.job = None
        if worker.process.is_alive():
            try:
                os.kill(worker.process.pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):
                pass
        worker.process.join(1.0)
        try:
            worker.task_q.close()
        except Exception:
            pass
        with self._lock:
            self._spawn(worker.index)
            self.respawns += 1
        if job is None:
            return
        if fail_with is not None:
            job.fail(fail_with)
            self._settle(job)
            return
        self._requeue(job, reason)

    def _requeue(self, job: Job, reason: str) -> None:
        """Redeliver a dead worker's in-flight job (bounded)."""
        allowed = True
        if self._on_requeue is not None:
            allowed = self._on_requeue(job, reason)
        self.redeliveries += 1
        if not allowed:
            job.fail(
                JobLostError(
                    f"job {job.id} ({job.label}) lost: {reason}; "
                    f"redelivery exhausted after "
                    f"{job.deliveries} deliveries",
                    detail={
                        "reason": reason,
                        "deliveries": job.deliveries,
                    },
                )
            )
            self._settle(job)
            return
        # Back to QUEUED and into the queue at its original priority;
        # force past the watermark — this work was already accepted.
        job.state = JobState.QUEUED
        job.started_at = None
        self.queue.submit(job, force=True)

    def _settle(self, job: Job) -> None:
        if self._draining.is_set() or self._stopping.is_set():
            self.drained_count += 1
        if self._on_done is not None:
            try:
                self._on_done(job)
            except Exception:  # pragma: no cover - callback bug
                logger.exception("on_done callback failed for job %s", job.id)

    # -- parent-side fallback executor ----------------------------------------

    def _inline_loop(self) -> None:
        while True:
            job = self._inline_queue.get()
            if job is None:
                return
            try:
                job.finish(job.run())
            except Exception as exc:
                job.fail(exc)
            except BaseException as exc:
                job.fail(exc)
                self._settle(job)
                raise
            self._settle(job)

    def stats(self) -> dict:
        with self._lock:
            alive = sum(
                1 for w in self._pool.values() if w.process.is_alive()
            )
            busy = sum(1 for w in self._pool.values() if not w.idle)
        return {
            "mode": "process",
            "workers": self.workers,
            "alive": alive,
            "busy": busy,
            "dispatches": self.dispatches,
            "respawns": self.respawns,
            "redeliveries": self.redeliveries,
            "heartbeat_s": self.heartbeat_s,
        }

    def __repr__(self) -> str:
        return (
            f"SupervisedProcessPool(workers={self.workers}, "
            f"running={self.running}, respawns={self.respawns})"
        )
