"""Per-snapshot circuit breakers: fail fast instead of burning workers.

A snapshot whose verifications keep failing or coming back degraded —
its content left the store every time, its extraction is broken, its
engine build OOMs a worker — will keep failing for every caller. The
classic remedy: count consecutive failures per breaker key (the
snapshot's content fingerprint), and past ``MFV_BREAKER_THRESHOLD``
*open* the breaker. While open, submissions against that content settle
immediately with a structured :class:`BreakerOpenError` carrying an
``UNKNOWN_DEGRADED`` verdict — milliseconds, no queue slot, no worker.
After ``cooldown_s`` the breaker goes *half-open*: exactly one probe
job is admitted; its success closes the breaker, its failure re-opens
the clock.

Transitions are reported through an ``on_transition`` callback (the
service turns them into ``service.breaker`` obs events and the
``service.breaker_transitions`` counter), so the whole state machine is
visible in ``mfv obs timeline`` and the metrics scrape.
"""

from __future__ import annotations

import threading
import time
from enum import Enum
from typing import Any, Callable, Optional

from repro.service.jobs import JobFailedError
from repro.service.store import env_float, env_int

#: Consecutive failures that open a breaker
#: (override: ``MFV_BREAKER_THRESHOLD``).
DEFAULT_BREAKER_THRESHOLD = 5

#: Seconds an open breaker waits before admitting a half-open probe
#: (override: ``MFV_BREAKER_COOLDOWN_S``).
DEFAULT_BREAKER_COOLDOWN_S = 30.0


class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class BreakerOpenError(JobFailedError):
    """Fast structured answer for a snapshot whose breaker is open."""

    def __init__(self, detail: dict) -> None:
        self.detail = dict(detail)
        super().__init__(
            "circuit breaker open for snapshot "
            f"{detail.get('breaker_key')!r}: verdict UNKNOWN_DEGRADED "
            f"({detail.get('failures')} consecutive failures)"
        )


class CircuitBreaker:
    """One key's failure state machine. Not thread-safe on its own —
    the :class:`BreakerBoard` serializes access."""

    __slots__ = ("threshold", "cooldown_s", "state", "failures",
                 "opened_at", "probe_inflight")

    def __init__(self, threshold: int, cooldown_s: float) -> None:
        self.threshold = max(1, threshold)
        self.cooldown_s = max(0.0, cooldown_s)
        self.state = BreakerState.CLOSED
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.probe_inflight = False

    def allow(self, now: float) -> bool:
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if (
                self.opened_at is not None
                and now - self.opened_at >= self.cooldown_s
            ):
                self.state = BreakerState.HALF_OPEN
                self.probe_inflight = True
                return True
            return False
        # HALF_OPEN: exactly one probe at a time.
        if self.probe_inflight:
            return False
        self.probe_inflight = True
        return True

    def record_success(self) -> None:
        self.state = BreakerState.CLOSED
        self.failures = 0
        self.opened_at = None
        self.probe_inflight = False

    def record_failure(self, now: float) -> None:
        self.failures += 1
        self.probe_inflight = False
        if (
            self.state is BreakerState.HALF_OPEN
            or self.failures >= self.threshold
        ):
            self.state = BreakerState.OPEN
            self.opened_at = now


class BreakerBoard:
    """Thread-safe registry of per-key breakers with transition hooks."""

    def __init__(
        self,
        threshold: Optional[int] = None,
        cooldown_s: Optional[float] = None,
        on_transition: Optional[
            Callable[[Any, BreakerState, BreakerState, int], None]
        ] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold is None:
            threshold = env_int(
                "MFV_BREAKER_THRESHOLD", DEFAULT_BREAKER_THRESHOLD
            )
        if cooldown_s is None:
            cooldown_s = env_float(
                "MFV_BREAKER_COOLDOWN_S", DEFAULT_BREAKER_COOLDOWN_S
            )
        self.threshold = max(1, threshold)
        self.cooldown_s = max(0.0, cooldown_s)
        self.on_transition = on_transition
        self._clock = clock
        self._breakers: dict[Any, CircuitBreaker] = {}
        self._lock = threading.Lock()
        self.fast_answers = 0

    def _get(self, key: Any) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = self._breakers[key] = CircuitBreaker(
                self.threshold, self.cooldown_s
            )
        return breaker

    def _transitioned(
        self, key: Any, breaker: CircuitBreaker, before: BreakerState
    ) -> None:
        if breaker.state is not before and self.on_transition is not None:
            self.on_transition(key, before, breaker.state, breaker.failures)

    def allow(self, key: Any) -> bool:
        """True if a job against ``key`` may run (closed, or the one
        half-open probe); False → answer fast with BreakerOpenError."""
        if key is None:
            return True
        with self._lock:
            breaker = self._get(key)
            before = breaker.state
            allowed = breaker.allow(self._clock())
            self._transitioned(key, breaker, before)
            if not allowed:
                self.fast_answers += 1
            return allowed

    def record(self, key: Any, ok: bool) -> None:
        if key is None:
            return
        with self._lock:
            breaker = self._get(key)
            before = breaker.state
            if ok:
                breaker.record_success()
            else:
                breaker.record_failure(self._clock())
            self._transitioned(key, breaker, before)

    def release(self, key: Any) -> None:
        """Give back an admitted slot that never ran (the job was shed
        or rejected during drain) — otherwise a consumed half-open
        probe would wedge the breaker with no execution to settle it."""
        if key is None:
            return
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is not None:
                breaker.probe_inflight = False

    def state_of(self, key: Any) -> BreakerState:
        with self._lock:
            breaker = self._breakers.get(key)
            return breaker.state if breaker else BreakerState.CLOSED

    def failures_of(self, key: Any) -> int:
        with self._lock:
            breaker = self._breakers.get(key)
            return breaker.failures if breaker else 0

    def detail_for(self, key: Any) -> dict:
        """The structured BreakerOpenError payload for ``key``."""
        with self._lock:
            breaker = self._get(key)
            retry_after = 0.0
            if breaker.opened_at is not None:
                retry_after = max(
                    0.0,
                    breaker.cooldown_s
                    - (self._clock() - breaker.opened_at),
                )
            return {
                "error": "breaker-open",
                "verdict": "UNKNOWN_DEGRADED",
                "breaker_key": (
                    f"{key:#x}" if isinstance(key, int) else str(key)
                ),
                "state": breaker.state.value,
                "failures": breaker.failures,
                "threshold": breaker.threshold,
                "retry_after_seconds": round(retry_after, 3),
            }

    def stats(self) -> dict:
        with self._lock:
            by_state = {state.value: 0 for state in BreakerState}
            for breaker in self._breakers.values():
                by_state[breaker.state.value] += 1
            return {
                "keys": len(self._breakers),
                "fast_answers": self.fast_answers,
                **by_state,
            }


__all__ = [
    "BreakerBoard",
    "BreakerOpenError",
    "BreakerState",
    "CircuitBreaker",
    "DEFAULT_BREAKER_COOLDOWN_S",
    "DEFAULT_BREAKER_THRESHOLD",
]
