"""repro.service — the continuous verification service.

A long-lived daemon over the one-shot pipeline: converged snapshots
stay resident in a content-addressed :class:`SnapshotStore`, query jobs
flow through a priority :class:`JobQueue` into a thread
:class:`WorkerPool` (or crash-isolated :class:`SupervisedProcessPool`),
identical in-flight requests coalesce onto one execution, and completed
answers serve from a bounded :class:`ResultCache`.
:class:`VerificationService` is the front door; ``mfv serve`` wraps it
in a JSON-lines loop.

The resilience plane makes the service survivable: a durable
:class:`JobJournal` write-ahead log with a content-addressed snapshot
manifest, ``VerificationService.recover()`` crash recovery with bounded
redelivery and structured :class:`DeadLetter` records, per-snapshot
circuit breakers (:class:`BreakerBoard`) answering fast while content
keeps failing, and graceful draining shutdown that never silently drops
accepted work.
"""

from repro.service.breakers import (
    BreakerBoard,
    BreakerOpenError,
    BreakerState,
    CircuitBreaker,
)
from repro.service.jobs import (
    Job,
    JobFailedError,
    JobLostError,
    JobPriority,
    JobQueue,
    JobResult,
    JobState,
    JobTimeoutError,
    OverloadedError,
    ResultCache,
)
from repro.service.resilience import (
    DeadLetter,
    JobJournal,
    QuestionSpec,
    RecoveryReport,
    replay_journal,
)
from repro.service.service import VerificationService
from repro.service.store import (
    DeploymentLostError,
    SnapshotStore,
    StoreEntry,
)
from repro.service.supervisor import SupervisedProcessPool
from repro.service.workers import WorkerPool

__all__ = [
    "BreakerBoard",
    "BreakerOpenError",
    "BreakerState",
    "CircuitBreaker",
    "DeadLetter",
    "DeploymentLostError",
    "Job",
    "JobFailedError",
    "JobJournal",
    "JobLostError",
    "JobPriority",
    "JobQueue",
    "JobResult",
    "JobState",
    "JobTimeoutError",
    "OverloadedError",
    "QuestionSpec",
    "RecoveryReport",
    "ResultCache",
    "SnapshotStore",
    "StoreEntry",
    "SupervisedProcessPool",
    "VerificationService",
    "WorkerPool",
    "replay_journal",
]
