"""repro.service — the continuous verification service.

A long-lived daemon over the one-shot pipeline: converged snapshots
stay resident in a content-addressed :class:`SnapshotStore`, query jobs
flow through a priority :class:`JobQueue` into a thread
:class:`WorkerPool`, identical in-flight requests coalesce onto one
execution, and completed answers serve from a bounded
:class:`ResultCache`. :class:`VerificationService` is the front door;
``mfv serve`` wraps it in a JSON-lines loop.
"""

from repro.service.jobs import (
    Job,
    JobFailedError,
    JobPriority,
    JobQueue,
    JobResult,
    JobState,
    JobTimeoutError,
    OverloadedError,
    ResultCache,
)
from repro.service.service import VerificationService
from repro.service.store import (
    DeploymentLostError,
    SnapshotStore,
    StoreEntry,
)
from repro.service.workers import WorkerPool

__all__ = [
    "DeploymentLostError",
    "Job",
    "JobFailedError",
    "JobPriority",
    "JobQueue",
    "JobResult",
    "JobState",
    "JobTimeoutError",
    "OverloadedError",
    "ResultCache",
    "SnapshotStore",
    "StoreEntry",
    "VerificationService",
    "WorkerPool",
]
