"""`VerificationService` — the resident verification front end.

One long-lived object owning the four moving parts the tentpole names:
a content-addressed :class:`~repro.service.store.SnapshotStore`, a
priority :class:`~repro.service.jobs.JobQueue` drained by a thread
:class:`~repro.service.workers.WorkerPool`, a request-coalescing
registry over in-flight jobs, and a bounded
:class:`~repro.service.jobs.ResultCache` of completed answers.

The query surface is deliberately *not* new: questions execute through
an ordinary store-backed :class:`~repro.pybf.session.Session`, so every
question in the pybf library runs unchanged — the service only decides
*when* they run (priority, admission) and *how often* the underlying
analyses are rebuilt (ideally once per distinct forwarding state).

Time base: the service lives in wall-clock time (there is no simulated
kernel behind a query), so its obs events and spans are stamped with
seconds since the service's epoch. The ``service.*`` counters and
``service.job`` events feed the ``mfv obs timeline`` service section.
"""

from __future__ import annotations

import logging
import threading
import time
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Union

from repro.core.snapshot import Snapshot
from repro.obs import bus
from repro.obs.metrics import MetricsRegistry
from repro.pybf.session import Session, SessionError
from repro.service.jobs import (
    Job,
    JobPriority,
    JobQueue,
    JobState,
    ResultCache,
)
from repro.service.store import DeploymentLostError, SnapshotStore, env_int
from repro.service.workers import WorkerPool

logger = logging.getLogger(__name__)

#: Queue-depth watermark (override: ``MFV_SERVICE_QUEUE_DEPTH``).
DEFAULT_QUEUE_DEPTH = 64
#: Result-cache capacity (override: ``MFV_SERVICE_RESULT_CACHE``).
DEFAULT_RESULT_CACHE = 256

#: Questions whose ``answer()`` accepts a reference snapshot.
_DIFFERENTIAL_QUESTIONS = frozenset({"differentialReachability", "routes"})

#: Operational counters exposed by ``stats()`` (flat names; the metric
#: series carry a ``service.`` prefix on the registry).
_COUNTER_NAMES = (
    "jobs_submitted",
    "jobs_completed",
    "jobs_failed",
    "jobs_rejected",
    "coalesced",
    "result_cache_hits",
    "retries",
    "degraded_answers",
)


class VerificationService:
    """Submit/await verification jobs against resident snapshots."""

    def __init__(
        self,
        *,
        store: Optional[SnapshotStore] = None,
        workers: Optional[int] = None,
        max_queue_depth: Optional[int] = None,
        result_cache_size: Optional[int] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
    ) -> None:
        if max_queue_depth is None:
            max_queue_depth = env_int(
                "MFV_SERVICE_QUEUE_DEPTH", DEFAULT_QUEUE_DEPTH
            )
        if result_cache_size is None:
            result_cache_size = env_int(
                "MFV_SERVICE_RESULT_CACHE", DEFAULT_RESULT_CACHE
            )
        self.store = store if store is not None else SnapshotStore()
        self.session = Session(store=self.store)
        self.queue = JobQueue(max_depth=max_queue_depth)
        self.results = ResultCache(result_cache_size)
        self.pool = WorkerPool(
            self.queue,
            workers=workers,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            on_start=self._job_started,
            on_done=self._job_settled,
            on_retry=self._job_retried,
        )
        self._inflight: dict[tuple, Job] = {}
        self._lock = threading.Lock()
        self._epoch = time.monotonic()
        # The service's metrics plane. A traced service shares the
        # tracer's registry (so the trace exports service metrics); an
        # untraced one gets a *private* always-on registry — counters
        # are part of the stats() API and must be per-instance, never
        # shared process-wide state. Worker threads install it as the
        # ambient registry while a job runs (see WorkerPool), so engine
        # builds and store lookups inside jobs land here too.
        tracer_registry = getattr(bus.ACTIVE, "registry", None)
        self.metrics: MetricsRegistry = (
            tracer_registry
            if tracer_registry is not None
            else MetricsRegistry(enabled=True)
        )
        self.pool.registry = self.metrics
        self._preregister_metrics()

    # -- metrics ---------------------------------------------------------------

    def _preregister_metrics(self) -> None:
        """Create every service series up front so a scrape is complete
        (queue-wait and engine-build histograms per priority class)
        before the first job ever runs."""
        m = self.metrics
        for name in _COUNTER_NAMES:
            m.counter(
                f"service.{name}", f"Service {name.replace('_', ' ')}"
            ).labels()
        m.gauge("service.queue_depth", "Jobs waiting in the priority queue")
        m.gauge("service.inflight", "Executions admitted and not settled")
        m.gauge(
            "service.degraded_answer_fraction",
            "Completed answers served over degraded (partial) snapshots",
        )
        m.gauge(
            "service.result_cache_entries", "Completed answers held in cache"
        ).set(0)
        shed = m.counter(
            "service.shed", "Admission-control losses", ("reason",)
        )
        shed.labels(reason="displaced")
        shed.labels(reason="rejected")
        queue_hist = m.histogram(
            "service.job_queue_seconds",
            "Wall seconds a job waited between submit and first run",
            ("priority",),
        )
        run_hist = m.histogram(
            "service.job_run_seconds",
            "Wall seconds a job spent executing (retries included)",
            ("priority",),
        )
        build_hist = m.histogram(
            "verify.engine_build_seconds",
            "Wall seconds building one atom-graph engine",
            ("priority",),
        )
        for priority in JobPriority:
            name = priority.name.lower()
            queue_hist.labels(priority=name)
            run_hist.labels(priority=name)
            build_hist.labels(priority=name)
        # Engine builds outside any job scope (warm-up, campaigns run
        # inline) land in the "none" class.
        build_hist.labels(priority="none")
        # Delta-derivation series (emitted by repro.verify.engine when a
        # lineage base is available): preregistered so a scrape shows
        # zeroes rather than gaps before the first churn arrives.
        from repro.verify.engine import DIRTY_ATOM_BUCKETS

        m.counter(
            "verify.delta_applies",
            "Engines derived incrementally from a resident base",
        ).labels()
        m.counter(
            "verify.delta_dirty_atoms",
            "Total atoms re-evaluated across all delta applies",
        ).labels()
        m.counter(
            "verify.delta_fallbacks",
            "Delta derivations abandoned for a cold build",
        ).labels()
        reasons = m.counter(
            "verify.delta_fallback_reasons",
            "Delta derivations abandoned for a cold build, by reason",
            ("reason",),
        )
        for reason in (
            "device-set", "acl-change", "dirty-fraction", "base-mismatch"
        ):
            reasons.labels(reason=reason)
        m.histogram(
            "verify.dirty_atoms",
            "Atoms re-evaluated per delta apply",
            buckets=DIRTY_ATOM_BUCKETS,
        )
        m.histogram(
            "verify.delta_apply_seconds",
            "Wall seconds diffing and applying one dataplane delta",
        )

    def _count(self, name: str, n: int = 1) -> None:
        self.metrics.counter(f"service.{name}").labels().inc(n)

    @property
    def counters(self) -> dict[str, int]:
        """The operational counters (registry-backed; flat names kept)."""
        values = self.metrics.counter_values()
        return {
            name: int(values.get(f"service.{name}", 0))
            for name in _COUNTER_NAMES
        }

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "VerificationService":
        self.pool.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self.pool.stop(timeout)

    def __enter__(self) -> "VerificationService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _now(self) -> float:
        return time.monotonic() - self._epoch

    # -- snapshot residence ----------------------------------------------------

    def register_snapshot(
        self,
        snapshot: Snapshot,
        name: Optional[str] = None,
        overwrite: bool = True,
    ) -> tuple[str, int]:
        """Make a snapshot queryable; returns (name, fingerprint).

        Unlike a bare session, re-registering under an existing name
        defaults to overwrite — a service replacing a snapshot with a
        newer converged state is the normal flow, not a mistake.
        """
        name = self.session.init_snapshot(
            snapshot, name=name, overwrite=overwrite
        )
        return name, snapshot.dataplane.fib_fingerprint()

    def load_snapshot(
        self, path: Union[str, Path], name: Optional[str] = None
    ) -> tuple[str, int]:
        return self.register_snapshot(Snapshot.load(path), name=name)

    def snapshots(self) -> list[str]:
        return self.session.list_snapshots()

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        question: str,
        params: Optional[dict] = None,
        *,
        snapshot: Optional[str] = None,
        reference_snapshot: Optional[str] = None,
        priority: Optional[Union[JobPriority, int, str]] = None,
        timeout: Optional[float] = None,
    ) -> Job:
        """Enqueue one pybf question; returns its (possibly shared) job.

        The job signature folds in the *fingerprints* of the named
        snapshots, so identical questions against identical forwarding
        content coalesce even across snapshot names. Coalescing onto an
        in-flight job promotes it to the best priority class asked of
        it; the shared execution keeps the first submitter's timeout.
        Differential questions default to the DIFFERENTIAL priority
        class, everything else to INTERACTIVE.
        """
        params = dict(params or {})
        if not hasattr(self.session.q, question):
            raise SessionError(f"unknown question: {question!r}")
        if (
            reference_snapshot is not None
            and question not in _DIFFERENTIAL_QUESTIONS
        ):
            raise SessionError(
                f"question {question!r} does not take a reference snapshot"
            )
        if priority is None:
            priority = (
                JobPriority.DIFFERENTIAL
                if question in _DIFFERENTIAL_QUESTIONS
                and reference_snapshot is not None
                else JobPriority.INTERACTIVE
            )
        # The fingerprints resolved here are the content the signature
        # keys on — the executor re-verifies them at run time so a
        # replaced name can never cache an answer under them.
        snapshot_fp = self._fingerprint_of(snapshot)
        reference_fp = (
            self._fingerprint_of(reference_snapshot)
            if reference_snapshot is not None
            else None
        )
        signature = (
            question,
            tuple(sorted(params.items())),
            snapshot_fp,
            reference_fp,
        )
        label = f"{question}"
        run = self._question_executor(
            question,
            params,
            snapshot,
            snapshot_fp,
            reference_snapshot,
            reference_fp,
            label,
        )
        return self._submit_job(
            signature,
            run,
            priority=JobPriority.parse(priority),
            timeout=timeout,
            label=label,
        )

    def submit_callable(
        self,
        run: Callable[[], Any],
        *,
        signature: tuple,
        priority: Union[JobPriority, int, str] = JobPriority.CAMPAIGN,
        timeout: Optional[float] = None,
        label: str = "",
        cacheable: bool = True,
    ) -> Job:
        """Enqueue an arbitrary execution (batch work, tests).

        Coalescing and result caching key on the caller's ``signature``;
        pass ``cacheable=False`` for non-deterministic work.
        """
        return self._submit_job(
            signature,
            run,
            priority=JobPriority.parse(priority),
            timeout=timeout,
            label=label,
            cacheable=cacheable,
        )

    def submit_campaign(
        self,
        topology,
        scenarios: Sequence,
        *,
        context=None,
        timers=None,
        quiet_period: float = 30.0,
        seed: int = 0,
        priority: Union[JobPriority, int, str] = JobPriority.CAMPAIGN,
        timeout: Optional[float] = None,
    ) -> Job:
        """A what-if campaign as one batch job (CAMPAIGN priority).

        The campaign's baseline snapshot registers with the service's
        store, so interactive questions asked afterwards reuse its
        engine. Deterministic per (topology, scenarios, seed), hence
        coalescable and cacheable like any question.
        """
        from repro.protocols.timers import PRODUCTION_TIMERS
        from repro.whatif.campaign import WhatIfCampaign

        scenario_list = list(scenarios)
        signature = (
            "whatif",
            topology.name,
            tuple(s.name for s in scenario_list),
            context.name if context is not None else "",
            seed,
            quiet_period,
        )

        def run():
            campaign = WhatIfCampaign(
                topology,
                scenario_list,
                context=context,
                timers=timers if timers is not None else PRODUCTION_TIMERS,
                quiet_period=quiet_period,
                seed=seed,
                store=self.store,
            )
            return campaign.run()

        return self._submit_job(
            signature,
            run,
            priority=JobPriority.parse(priority),
            timeout=timeout,
            label=f"whatif:{topology.name}",
        )

    def submit_ensemble(
        self,
        snapshots: Optional[Sequence[str]] = None,
        *,
        waypoint: Optional[str] = None,
        priority: Union[JobPriority, int, str] = JobPriority.CAMPAIGN,
        timeout: Optional[float] = None,
    ) -> Job:
        """Fold ensemble verdicts over resident snapshots.

        Treats the named snapshots (default: everything resident) as
        members of one ensemble — dedups them by forwarding
        fingerprint, pays one pinned engine per distinct outcome, and
        answers holds-always / holds-sometimes / never per invariant.
        ``waypoint`` ("DST_IP:VIA_NODE") appends a waypoint invariant
        to the standard battery. The job is keyed on the members'
        content fingerprints, so it coalesces and caches like any
        question and fails with ``DeploymentLostError`` if a member is
        replaced mid-flight.
        """
        from repro.ensemble import (
            RunRecord,
            Waypoint,
            default_ensemble_invariants,
            fold_records,
        )

        names = (
            tuple(snapshots) if snapshots is not None
            else tuple(self.snapshots())
        )
        if not names:
            raise ValueError("no snapshots to fold an ensemble over")
        fingerprints = tuple(self._fingerprint_of(name) for name in names)
        signature = ("ensemble", names, fingerprints, waypoint or "")

        def run():
            invariants = default_ensemble_invariants()
            if waypoint:
                dst, _, via = waypoint.partition(":")
                invariants.append(Waypoint(dst, via))
            records = []
            for name, expected in zip(names, fingerprints):
                snap = self._resolve_pinned(name, expected)
                records.append(
                    RunRecord(
                        seed=snap.seed if snap.seed is not None else 0,
                        plan_name=name,
                        snapshot=snap,
                    )
                )
            return fold_records(
                records,
                invariants=invariants,
                engine_of=self.store.engine,
                topology_name=names[0],
                seeds=tuple(r.seed for r in records),
                plans=names,
            )

        return self._submit_job(
            signature,
            run,
            priority=JobPriority.parse(priority),
            timeout=timeout,
            label=f"ensemble:{len(names)}",
        )

    # -- waiting ----------------------------------------------------------------

    def result(self, job: Job, timeout: Optional[float] = None):
        """``job.result(timeout)``, for symmetry with submit()."""
        return job.result(timeout)

    def stats(self) -> dict:
        with self._lock:
            inflight = len(self._inflight)
        counters = self.counters
        completed = counters["jobs_completed"]
        stats = {
            "uptime_seconds": self._now(),
            "workers": self.pool.workers,
            "queue_depth": self.queue.depth,
            "queue_watermark": self.queue.max_depth,
            "inflight": inflight,
            "degraded_answer_fraction": (
                counters["degraded_answers"] / completed if completed else 0.0
            ),
            "snapshots": self.snapshots(),
            "store": self.store.stats(),
            "result_cache": self.results.stats(),
            "counters": counters,
        }
        # Deprecated: the counters used to be splatted into the top
        # level, where any new stats field could collide with a counter
        # name. Kept as read-only aliases for one release; consumers
        # should move to stats["counters"].
        for name, value in counters.items():
            stats.setdefault(name, value)
        return stats

    # -- internals ---------------------------------------------------------------

    def _fingerprint_of(self, name: Optional[str]) -> int:
        return self.session.get_snapshot(name).dataplane.fib_fingerprint()

    def _resolve_pinned(self, name: Optional[str], expected: int) -> Snapshot:
        """The snapshot ``name`` resolves to, iff it still carries the
        forwarding content the job was keyed on at submit time.

        Raises :class:`DeploymentLostError` when the name is gone
        (deleted mid-flight) *or* points at different content
        (replaced via ``register_snapshot(overwrite=True)``) — either
        way the retry/failure path engages instead of an answer for
        the new content being cached under the old content's
        signature.
        """
        try:
            snap = self.session.get_snapshot(name)
        except SessionError as exc:
            raise DeploymentLostError(str(exc)) from exc
        actual = snap.dataplane.fib_fingerprint()
        if actual != expected:
            raise DeploymentLostError(
                f"snapshot {name or '<current>'} was replaced mid-flight: "
                f"submitted against {expected:#x}, now {actual:#x}"
            )
        return snap

    def _question_executor(
        self,
        question: str,
        params: dict,
        snapshot: Optional[str],
        snapshot_fp: int,
        reference_snapshot: Optional[str],
        reference_fp: Optional[int],
        label: str,
    ) -> Callable[[], Any]:
        def run():
            collector = bus.ACTIVE
            span = (
                collector.begin(
                    f"service:{label}", self._now(), category="service"
                )
                if collector.enabled
                else None
            )
            try:
                # Resolve by verified content and answer through a
                # private session over the exact resolved objects, so a
                # rename between this check and the answer cannot swap
                # the content out from under the signature. The private
                # session shares the service store, hence its pinned
                # engines.
                snap = self._resolve_pinned(snapshot, snapshot_fp)
                if getattr(snap, "degraded_nodes", None):
                    # Answering over a partial snapshot: the answer is
                    # still served (degraded pairs come back
                    # UNKNOWN_DEGRADED), but the service keeps score so
                    # operators can see how much of the load ran over
                    # degraded data.
                    self._count("degraded_answers")
                runner = Session(store=self.store)
                kwargs: dict[str, Any] = {"snapshot": "__job__"}
                if reference_snapshot is not None:
                    # A differential question declares its pair: the
                    # snapshot is churn of the reference, so record the
                    # lineage and let the snapshot's engine derive from
                    # the reference's instead of building cold.
                    ref = self._resolve_pinned(
                        reference_snapshot, reference_fp
                    )
                    runner.init_snapshot(ref, name="__reference__")
                    kwargs["reference_snapshot"] = "__reference__"
                    runner.init_snapshot(
                        snap, name="__job__", parent=reference_fp
                    )
                else:
                    runner.init_snapshot(snap, name="__job__")
                factory = getattr(runner.q, question)
                return factory(**params).answer(**kwargs)
            finally:
                if span is not None:
                    collector.end(span, self._now())

        return run

    def _submit_job(
        self,
        signature: tuple,
        run: Callable[[], Any],
        *,
        priority: JobPriority,
        timeout: Optional[float],
        label: str,
        cacheable: bool = True,
    ) -> Job:
        with self._lock:
            cached = self.results.get(signature) if cacheable else None
            if cached is not None:
                self._count("result_cache_hits")
                job = Job(
                    signature, run, priority=priority, timeout=timeout,
                    label=label,
                )
                job.attempts = cached.attempts
                job.coalesced = cached.coalesced
                job.cached = True
                job.finish(cached.value)
                self._emit_job_event(job)
                return job
            inflight = self._inflight.get(signature)
            if inflight is not None and not inflight.done:
                inflight.coalesced += 1
                self._count("coalesced")
                # The shared execution adopts the best class asked of
                # it: an interactive caller attaching to a queued
                # campaign job must not wait at campaign rank. (The
                # timeout stays the first submitter's — the execution
                # is shared, so there is only one deadline.)
                self.queue.promote(inflight, priority)
                return inflight
            job = Job(
                signature, run, priority=priority, timeout=timeout,
                label=label,
            )
            job.cacheable = cacheable
            accepted, shed = self.queue.submit(job)
            if shed is not None:
                self._inflight.pop(shed.signature, None)
                self._count("jobs_rejected")
                self.metrics.counter("service.shed").inc(reason="displaced")
                self._emit_job_event(shed)
            if not accepted:
                self._count("jobs_rejected")
                self.metrics.counter("service.shed").inc(reason="rejected")
                self._emit_job_event(job)
                return job
            self._inflight[signature] = job
            self._count("jobs_submitted")
            self._emit_job_event(job)  # state=queued: the waterfall's start
        self.metrics.gauge("service.queue_depth").set(self.queue.depth)
        if not self.pool.running:
            logger.warning(
                "job %s submitted to a stopped service; call start()", job.id
            )
        return job

    def _job_retried(self, job: Job, exc: BaseException) -> None:
        del exc
        self._count("retries")
        self.metrics.counter(
            "service.job_retries",
            "Retries after a lost deployment, by priority class",
            ("priority",),
        ).inc(priority=job.priority.name.lower())

    def _job_started(self, job: Job) -> None:
        """Worker-pool start hook: the waterfall's queued->running edge."""
        self._emit_job_event(job)

    def _job_settled(self, job: Job) -> None:
        """Worker-pool completion hook: cache, uncoalesce, instrument."""
        with self._lock:
            if self._inflight.get(job.signature) is job:
                del self._inflight[job.signature]
            inflight = len(self._inflight)
            if job.state is JobState.DONE:
                self._count("jobs_completed")
                if getattr(job, "cacheable", True):
                    self.results.put(
                        job.signature,
                        job.result(timeout=0),
                    )
            elif job.state is JobState.FAILED:
                self._count("jobs_failed")
        m = self.metrics
        priority = job.priority.name.lower()
        m.histogram("service.job_queue_seconds", labelnames=("priority",)).observe(
            job.queue_seconds, priority=priority
        )
        if job.state in (JobState.DONE, JobState.FAILED):
            m.histogram(
                "service.job_run_seconds", labelnames=("priority",)
            ).observe(job.run_seconds, priority=priority)
        m.gauge("service.inflight").set(inflight)
        m.gauge("service.result_cache_entries").set(len(self.results))
        counters = self.counters
        completed = counters["jobs_completed"]
        if completed:
            m.gauge("service.degraded_answer_fraction").set(
                counters["degraded_answers"] / completed
            )
        self._emit_job_event(job)

    def _emit_job_event(self, job: Job) -> None:
        collector = bus.ACTIVE
        if not collector.enabled:
            return
        collector.emit(
            "service.job",
            self._now(),
            job=job.id,
            label=job.label,
            priority=job.priority.name.lower(),
            state=job.state.value,
            queue_seconds=round(job.queue_seconds, 6),
            run_seconds=round(job.run_seconds, 6),
            attempts=job.attempts,
            coalesced=job.coalesced,
        )
