"""`VerificationService` — the resident verification front end.

One long-lived object owning the four moving parts the tentpole names:
a content-addressed :class:`~repro.service.store.SnapshotStore`, a
priority :class:`~repro.service.jobs.JobQueue` drained by a thread
:class:`~repro.service.workers.WorkerPool`, a request-coalescing
registry over in-flight jobs, and a bounded
:class:`~repro.service.jobs.ResultCache` of completed answers.

The query surface is deliberately *not* new: questions execute through
an ordinary store-backed :class:`~repro.pybf.session.Session`, so every
question in the pybf library runs unchanged — the service only decides
*when* they run (priority, admission) and *how often* the underlying
analyses are rebuilt (ideally once per distinct forwarding state).

Time base: the service lives in wall-clock time (there is no simulated
kernel behind a query), so its obs events and spans are stamped with
seconds since the service's epoch. The ``service.*`` counters and
``service.job`` events feed the ``mfv obs timeline`` service section.
"""

from __future__ import annotations

import logging
import os
import pickle
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Union

from repro.core.snapshot import Snapshot
from repro.obs import bus
from repro.obs.metrics import MetricsRegistry
from repro.pybf.session import Session, SessionError
from repro.service.breakers import BreakerBoard, BreakerOpenError, BreakerState
from repro.service.jobs import (
    Job,
    JobPriority,
    JobQueue,
    JobState,
    ResultCache,
)
from repro.service.resilience import (
    DEFAULT_REDELIVERY_LIMIT,
    DeadLetter,
    JobJournal,
    QuestionSpec,
    RecoveryReport,
    load_manifest_snapshot,
    replay_journal,
)
from repro.service.store import DeploymentLostError, SnapshotStore, env_int
from repro.service.supervisor import SupervisedProcessPool
from repro.service.workers import WorkerPool

logger = logging.getLogger(__name__)

#: Queue-depth watermark (override: ``MFV_SERVICE_QUEUE_DEPTH``).
DEFAULT_QUEUE_DEPTH = 64
#: Result-cache capacity (override: ``MFV_SERVICE_RESULT_CACHE``).
DEFAULT_RESULT_CACHE = 256

#: Questions whose ``answer()`` accepts a reference snapshot.
_DIFFERENTIAL_QUESTIONS = frozenset({"differentialReachability", "routes"})

#: Operational counters exposed by ``stats()`` (flat names; the metric
#: series carry a ``service.`` prefix on the registry).
_COUNTER_NAMES = (
    "jobs_submitted",
    "jobs_completed",
    "jobs_failed",
    "jobs_rejected",
    "coalesced",
    "result_cache_hits",
    "retries",
    "degraded_answers",
)


class VerificationService:
    """Submit/await verification jobs against resident snapshots."""

    def __init__(
        self,
        *,
        store: Optional[SnapshotStore] = None,
        workers: Optional[int] = None,
        max_queue_depth: Optional[int] = None,
        result_cache_size: Optional[int] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        journal_dir: Optional[Union[str, Path]] = None,
        worker_mode: Optional[str] = None,
        heartbeat_s: Optional[float] = None,
        redelivery_limit: Optional[int] = None,
        breaker_threshold: Optional[int] = None,
        breaker_cooldown_s: Optional[float] = None,
    ) -> None:
        if max_queue_depth is None:
            max_queue_depth = env_int(
                "MFV_SERVICE_QUEUE_DEPTH", DEFAULT_QUEUE_DEPTH
            )
        if result_cache_size is None:
            result_cache_size = env_int(
                "MFV_SERVICE_RESULT_CACHE", DEFAULT_RESULT_CACHE
            )
        if worker_mode is None:
            worker_mode = os.environ.get("MFV_SERVICE_WORKER_MODE", "thread")
        if worker_mode not in ("thread", "process"):
            raise ValueError(
                f"worker_mode must be 'thread' or 'process', "
                f"got {worker_mode!r}"
            )
        if journal_dir is None:
            journal_dir = os.environ.get("MFV_JOURNAL_DIR") or None
        if journal_dir is None and worker_mode == "process":
            # Process workers adopt snapshots from the journal's
            # content-addressed manifest; without a caller-provided
            # directory the service runs one in a scratch location.
            journal_dir = tempfile.mkdtemp(prefix="mfv-journal-")
        if redelivery_limit is None:
            redelivery_limit = env_int(
                "MFV_REDELIVERY_LIMIT", DEFAULT_REDELIVERY_LIMIT
            )
        self.worker_mode = worker_mode
        self.redelivery_limit = max(0, redelivery_limit)
        self.journal: Optional[JobJournal] = (
            JobJournal(journal_dir) if journal_dir else None
        )
        self.breakers = BreakerBoard(
            breaker_threshold,
            breaker_cooldown_s,
            on_transition=self._breaker_transition,
        )
        self.dead_letters: list[DeadLetter] = []
        self.store = store if store is not None else SnapshotStore()
        self.session = Session(store=self.store)
        self.queue = JobQueue(max_depth=max_queue_depth)
        self.results = ResultCache(result_cache_size)
        if worker_mode == "process":
            self.pool: Union[WorkerPool, SupervisedProcessPool] = (
                SupervisedProcessPool(
                    self.queue,
                    manifest_dir=self.journal.dir,
                    workers=workers,
                    heartbeat_s=heartbeat_s,
                    on_start=self._job_started,
                    on_done=self._job_settled,
                    on_requeue=self._job_redelivered,
                    on_degraded=self._job_degraded,
                )
            )
        else:
            self.pool = WorkerPool(
                self.queue,
                workers=workers,
                max_retries=max_retries,
                retry_backoff=retry_backoff,
                on_start=self._job_started,
                on_done=self._job_settled,
                on_retry=self._job_retried,
            )
        self.pool.on_drain = self._drain_completed
        #: Chaos hook: called with the 1-based submission index on every
        #: job submission (the service fault plane triggers eviction
        #: storms from it).
        self.on_submit: Optional[Callable[[int], None]] = None
        self._submit_index = 0
        self._draining = False
        self._inflight: dict[tuple, Job] = {}
        self._lock = threading.Lock()
        self._epoch = time.monotonic()
        # The service's metrics plane. A traced service shares the
        # tracer's registry (so the trace exports service metrics); an
        # untraced one gets a *private* always-on registry — counters
        # are part of the stats() API and must be per-instance, never
        # shared process-wide state. Worker threads install it as the
        # ambient registry while a job runs (see WorkerPool), so engine
        # builds and store lookups inside jobs land here too.
        tracer_registry = getattr(bus.ACTIVE, "registry", None)
        self.metrics: MetricsRegistry = (
            tracer_registry
            if tracer_registry is not None
            else MetricsRegistry(enabled=True)
        )
        self.pool.registry = self.metrics
        self._preregister_metrics()

    # -- metrics ---------------------------------------------------------------

    def _preregister_metrics(self) -> None:
        """Create every service series up front so a scrape is complete
        (queue-wait and engine-build histograms per priority class)
        before the first job ever runs."""
        m = self.metrics
        for name in _COUNTER_NAMES:
            m.counter(
                f"service.{name}", f"Service {name.replace('_', ' ')}"
            ).labels()
        m.gauge("service.queue_depth", "Jobs waiting in the priority queue")
        m.gauge("service.inflight", "Executions admitted and not settled")
        m.gauge(
            "service.degraded_answer_fraction",
            "Completed answers served over degraded (partial) snapshots",
        )
        m.gauge(
            "service.result_cache_entries", "Completed answers held in cache"
        ).set(0)
        shed = m.counter(
            "service.shed", "Admission-control losses", ("reason",)
        )
        shed.labels(reason="displaced")
        shed.labels(reason="rejected")
        queue_hist = m.histogram(
            "service.job_queue_seconds",
            "Wall seconds a job waited between submit and first run",
            ("priority",),
        )
        run_hist = m.histogram(
            "service.job_run_seconds",
            "Wall seconds a job spent executing (retries included)",
            ("priority",),
        )
        build_hist = m.histogram(
            "verify.engine_build_seconds",
            "Wall seconds building one atom-graph engine",
            ("priority",),
        )
        for priority in JobPriority:
            name = priority.name.lower()
            queue_hist.labels(priority=name)
            run_hist.labels(priority=name)
            build_hist.labels(priority=name)
        # Engine builds outside any job scope (warm-up, campaigns run
        # inline) land in the "none" class.
        build_hist.labels(priority="none")
        # Delta-derivation series (emitted by repro.verify.engine when a
        # lineage base is available): preregistered so a scrape shows
        # zeroes rather than gaps before the first churn arrives.
        from repro.verify.engine import DIRTY_ATOM_BUCKETS

        m.counter(
            "verify.delta_applies",
            "Engines derived incrementally from a resident base",
        ).labels()
        m.counter(
            "verify.delta_dirty_atoms",
            "Total atoms re-evaluated across all delta applies",
        ).labels()
        m.counter(
            "verify.delta_fallbacks",
            "Delta derivations abandoned for a cold build",
        ).labels()
        reasons = m.counter(
            "verify.delta_fallback_reasons",
            "Delta derivations abandoned for a cold build, by reason",
            ("reason",),
        )
        for reason in (
            "device-set", "acl-change", "dirty-fraction", "base-mismatch"
        ):
            reasons.labels(reason=reason)
        m.histogram(
            "verify.dirty_atoms",
            "Atoms re-evaluated per delta apply",
            buckets=DIRTY_ATOM_BUCKETS,
        )
        m.histogram(
            "verify.delta_apply_seconds",
            "Wall seconds diffing and applying one dataplane delta",
        )
        # Resilience-plane series: journal/redelivery/breaker/recovery.
        for name, help_text in (
            ("redeliveries", "Jobs requeued after their worker died"),
            ("dead_letters", "Jobs abandoned after redelivery exhaustion"),
            ("breaker_fast_answers",
             "Submissions answered UNKNOWN_DEGRADED by an open breaker"),
            ("recovery_requeued", "Jobs requeued by journal recovery"),
            ("recovery_dead_lettered",
             "Jobs dead-lettered by journal recovery"),
            ("recovery_snapshots",
             "Snapshots re-registered from the journal manifest"),
        ):
            m.counter(f"service.{name}", help_text).labels()
        transitions = m.counter(
            "service.breaker_transitions",
            "Circuit-breaker state transitions, by destination state",
            ("state",),
        )
        for state in BreakerState:
            transitions.labels(state=state.value)
        drained = m.counter(
            "service.drained",
            "Jobs settled or rejected during a draining shutdown",
            ("outcome",),
        )
        drained.labels(outcome="settled")
        drained.labels(outcome="rejected")
        m.gauge(
            "service.worker_respawns",
            "Worker processes killed and respawned by the supervisor",
        ).set(0)
        m.histogram(
            "service.recovery_seconds",
            "Wall seconds replaying the journal in recover()",
        )

    def _count(self, name: str, n: int = 1) -> None:
        self.metrics.counter(f"service.{name}").labels().inc(n)

    @property
    def counters(self) -> dict[str, int]:
        """The operational counters (registry-backed; flat names kept)."""
        values = self.metrics.counter_values()
        return {
            name: int(values.get(f"service.{name}", 0))
            for name in _COUNTER_NAMES
        }

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "VerificationService":
        with self._lock:
            self._draining = False
        self.pool.start()
        return self

    def stop(self, timeout: float = 5.0, drain: bool = True) -> dict:
        """Shut the service down; returns the drain counts.

        The default is a *graceful drain*: new submissions are rejected
        with a structured ``draining`` detail, queued jobs settle (or
        are rejected once ``timeout`` passes — never silently dropped),
        the drain is journaled, and a ``service.drain`` obs event
        carries the counts. ``drain=False`` stops promptly after the
        in-flight jobs.
        """
        with self._lock:
            self._draining = True
        counts = self.pool.stop(timeout, drain=drain)
        if self.journal is not None:
            self.journal.close()
        return counts

    def drain(self, timeout: float = 5.0) -> dict:
        """Graceful-drain alias for ``stop`` (the SIGTERM path)."""
        return self.stop(timeout, drain=True)

    def health(self) -> dict:
        """Liveness/readiness (the frontend's ``{"op": "health"}``).

        ``live`` — the process can answer at all; ``ready`` — the pool
        runs, the queue admits, and the service is not draining.
        """
        with self._lock:
            draining = self._draining
            dead_letters = len(self.dead_letters)
        ready = self.pool.running and not draining and not self.queue.closed
        health = {
            "live": True,
            "ready": bool(ready),
            "draining": draining,
            "worker_mode": self.worker_mode,
            "workers": self.pool.workers,
            "queue_depth": self.queue.depth,
            "breakers": self.breakers.stats(),
            "dead_letters": dead_letters,
        }
        if isinstance(self.pool, SupervisedProcessPool):
            pool_stats = self.pool.stats()
            health["workers_alive"] = pool_stats["alive"]
            health["worker_respawns"] = pool_stats["respawns"]
            if self.pool.running and not pool_stats["alive"]:
                health["ready"] = False
        if self.journal is not None:
            health["journal"] = self.journal.stats()
        return health

    def __enter__(self) -> "VerificationService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _now(self) -> float:
        return time.monotonic() - self._epoch

    # -- snapshot residence ----------------------------------------------------

    def register_snapshot(
        self,
        snapshot: Snapshot,
        name: Optional[str] = None,
        overwrite: bool = True,
    ) -> tuple[str, int]:
        """Make a snapshot queryable; returns (name, fingerprint).

        Unlike a bare session, re-registering under an existing name
        defaults to overwrite — a service replacing a snapshot with a
        newer converged state is the normal flow, not a mistake.
        """
        name = self.session.init_snapshot(
            snapshot, name=name, overwrite=overwrite
        )
        fingerprint = snapshot.dataplane.fib_fingerprint()
        if self.journal is not None:
            # Durable residence: the content-addressed pickle plus a
            # manifest record, so recovery (and process workers) can
            # adopt this content by fingerprint.
            self.journal.record_snapshot(name, snapshot)
        return name, fingerprint

    def load_snapshot(
        self, path: Union[str, Path], name: Optional[str] = None
    ) -> tuple[str, int]:
        return self.register_snapshot(Snapshot.load(path), name=name)

    def snapshots(self) -> list[str]:
        return self.session.list_snapshots()

    # -- crash recovery --------------------------------------------------------

    @classmethod
    def recover(
        cls, journal_dir: Union[str, Path], **kwargs
    ) -> tuple["VerificationService", "RecoveryReport"]:
        """Rebuild a service from a journal directory after a crash.

        Replays the write-ahead log: snapshots re-register from the
        content-addressed manifest, every job that was accepted but
        never settled is requeued under its idempotency key with a
        bumped delivery count (``force=True`` — durably accepted work
        is never shed by the watermark), and jobs past the redelivery
        limit are dead-lettered instead of crash-looping. Returns the
        recovered (not yet started) service and a
        :class:`~repro.service.resilience.RecoveryReport`.
        """
        started = time.monotonic()
        state = replay_journal(journal_dir)
        service = cls(journal_dir=journal_dir, **kwargs)
        assert service.journal is not None
        service.journal.adopt_deliveries(state.deliveries())
        service.journal.adopt_snapshots(state.snapshots.keys())
        report = RecoveryReport(
            journal_dir=str(journal_dir),
            records_replayed=state.records,
            torn_records=state.torn_records,
        )
        for fingerprint, name in state.snapshots.items():
            try:
                snapshot = load_manifest_snapshot(journal_dir, fingerprint)
            except (OSError, pickle.UnpicklingError) as exc:
                logger.warning(
                    "manifest snapshot %s (%#x) unrecoverable: %s",
                    name, fingerprint, exc,
                )
                continue
            service.register_snapshot(snapshot, name=name)
            report.snapshots_recovered += 1
        for pending in state.pending():
            # `redelivery_limit` bounds redeliveries; requeueing now
            # makes delivery `deliveries + 1`, which must stay within
            # limit + 1 total (first delivery + limit redeliveries).
            if pending.deliveries > service.redelivery_limit:
                service._dead_letter(
                    key=pending.key,
                    reason="redelivery exhausted during recovery",
                    deliveries=pending.deliveries,
                    question=pending.spec.question,
                    snapshot=pending.spec.snapshot,
                )
                report.jobs_dead_lettered += 1
                continue
            try:
                service._recover_submit(pending)
                report.jobs_requeued += 1
            except Exception as exc:
                service._dead_letter(
                    key=pending.key,
                    reason=f"replay failed: {exc}",
                    deliveries=pending.deliveries,
                    question=pending.spec.question,
                    snapshot=pending.spec.snapshot,
                )
                report.jobs_dead_lettered += 1
        report.wall_seconds = time.monotonic() - started
        m = service.metrics
        m.counter("service.recovery_requeued").labels().inc(
            report.jobs_requeued
        )
        m.counter("service.recovery_dead_lettered").labels().inc(
            report.jobs_dead_lettered
        )
        m.counter("service.recovery_snapshots").labels().inc(
            report.snapshots_recovered
        )
        m.histogram("service.recovery_seconds").observe(report.wall_seconds)
        collector = bus.ACTIVE
        if collector.enabled:
            collector.emit(
                "service.recovery", service._now(), **report.to_dict()
            )
        logger.info(
            "recovered %d snapshot(s), requeued %d job(s), "
            "dead-lettered %d in %.3fs from %s",
            report.snapshots_recovered, report.jobs_requeued,
            report.jobs_dead_lettered, report.wall_seconds, journal_dir,
        )
        return service, report

    def _recover_submit(self, pending) -> Job:
        """Requeue one replayed journal obligation under its spec."""
        spec = pending.spec
        params = dict(spec.params)
        label = spec.question
        signature = (
            spec.question,
            tuple(sorted(params.items())),
            spec.fingerprint,
            spec.reference_fingerprint,
        )
        run = self._question_executor(
            spec.question,
            params,
            spec.snapshot,
            spec.fingerprint,
            spec.reference_snapshot,
            spec.reference_fingerprint,
            label,
            signature,
        )
        try:
            priority = JobPriority.parse(pending.priority)
        except (KeyError, ValueError):
            priority = JobPriority.INTERACTIVE
        return self._submit_job(
            signature,
            run,
            priority=priority,
            timeout=pending.timeout,
            label=label,
            spec=spec,
            breaker_key=spec.fingerprint,
            force=True,
        )

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        question: str,
        params: Optional[dict] = None,
        *,
        snapshot: Optional[str] = None,
        reference_snapshot: Optional[str] = None,
        priority: Optional[Union[JobPriority, int, str]] = None,
        timeout: Optional[float] = None,
    ) -> Job:
        """Enqueue one pybf question; returns its (possibly shared) job.

        The job signature folds in the *fingerprints* of the named
        snapshots, so identical questions against identical forwarding
        content coalesce even across snapshot names. Coalescing onto an
        in-flight job promotes it to the best priority class asked of
        it; the shared execution keeps the first submitter's timeout.
        Differential questions default to the DIFFERENTIAL priority
        class, everything else to INTERACTIVE.
        """
        params = dict(params or {})
        if not hasattr(self.session.q, question):
            raise SessionError(f"unknown question: {question!r}")
        if (
            reference_snapshot is not None
            and question not in _DIFFERENTIAL_QUESTIONS
        ):
            raise SessionError(
                f"question {question!r} does not take a reference snapshot"
            )
        if priority is None:
            priority = (
                JobPriority.DIFFERENTIAL
                if question in _DIFFERENTIAL_QUESTIONS
                and reference_snapshot is not None
                else JobPriority.INTERACTIVE
            )
        # The fingerprints resolved here are the content the signature
        # keys on — the executor re-verifies them at run time so a
        # replaced name can never cache an answer under them.
        snapshot_fp = self._fingerprint_of(snapshot)
        reference_fp = (
            self._fingerprint_of(reference_snapshot)
            if reference_snapshot is not None
            else None
        )
        signature = (
            question,
            tuple(sorted(params.items())),
            snapshot_fp,
            reference_fp,
        )
        label = f"{question}"
        run = self._question_executor(
            question,
            params,
            snapshot,
            snapshot_fp,
            reference_snapshot,
            reference_fp,
            label,
            signature,
        )
        # The replayable identity: journaled on acceptance, executed
        # directly by process workers (which adopt the fingerprints from
        # the journal manifest instead of running this closure).
        spec = QuestionSpec(
            question=question,
            params=tuple(sorted(params.items())),
            snapshot=snapshot,
            fingerprint=snapshot_fp,
            reference_snapshot=reference_snapshot,
            reference_fingerprint=reference_fp,
        )
        return self._submit_job(
            signature,
            run,
            priority=JobPriority.parse(priority),
            timeout=timeout,
            label=label,
            spec=spec,
            breaker_key=snapshot_fp,
        )

    def submit_callable(
        self,
        run: Callable[[], Any],
        *,
        signature: tuple,
        priority: Union[JobPriority, int, str] = JobPriority.CAMPAIGN,
        timeout: Optional[float] = None,
        label: str = "",
        cacheable: bool = True,
        breaker_key: Any = None,
    ) -> Job:
        """Enqueue an arbitrary execution (batch work, tests).

        Coalescing and result caching key on the caller's ``signature``;
        pass ``cacheable=False`` for non-deterministic work. An optional
        ``breaker_key`` routes the execution's success/failure through
        the circuit-breaker board like a question job's snapshot
        fingerprint does.
        """
        return self._submit_job(
            signature,
            run,
            priority=JobPriority.parse(priority),
            timeout=timeout,
            label=label,
            cacheable=cacheable,
            breaker_key=breaker_key,
        )

    def submit_campaign(
        self,
        topology,
        scenarios: Sequence,
        *,
        context=None,
        timers=None,
        quiet_period: float = 30.0,
        seed: int = 0,
        priority: Union[JobPriority, int, str] = JobPriority.CAMPAIGN,
        timeout: Optional[float] = None,
    ) -> Job:
        """A what-if campaign as one batch job (CAMPAIGN priority).

        The campaign's baseline snapshot registers with the service's
        store, so interactive questions asked afterwards reuse its
        engine. Deterministic per (topology, scenarios, seed), hence
        coalescable and cacheable like any question.
        """
        from repro.protocols.timers import PRODUCTION_TIMERS
        from repro.whatif.campaign import WhatIfCampaign

        scenario_list = list(scenarios)
        signature = (
            "whatif",
            topology.name,
            tuple(s.name for s in scenario_list),
            context.name if context is not None else "",
            seed,
            quiet_period,
        )

        def run():
            campaign = WhatIfCampaign(
                topology,
                scenario_list,
                context=context,
                timers=timers if timers is not None else PRODUCTION_TIMERS,
                quiet_period=quiet_period,
                seed=seed,
                store=self.store,
            )
            return campaign.run()

        return self._submit_job(
            signature,
            run,
            priority=JobPriority.parse(priority),
            timeout=timeout,
            label=f"whatif:{topology.name}",
        )

    def submit_ensemble(
        self,
        snapshots: Optional[Sequence[str]] = None,
        *,
        waypoint: Optional[str] = None,
        priority: Union[JobPriority, int, str] = JobPriority.CAMPAIGN,
        timeout: Optional[float] = None,
    ) -> Job:
        """Fold ensemble verdicts over resident snapshots.

        Treats the named snapshots (default: everything resident) as
        members of one ensemble — dedups them by forwarding
        fingerprint, pays one pinned engine per distinct outcome, and
        answers holds-always / holds-sometimes / never per invariant.
        ``waypoint`` ("DST_IP:VIA_NODE") appends a waypoint invariant
        to the standard battery. The job is keyed on the members'
        content fingerprints, so it coalesces and caches like any
        question and fails with ``DeploymentLostError`` if a member is
        replaced mid-flight.
        """
        from repro.ensemble import (
            RunRecord,
            Waypoint,
            default_ensemble_invariants,
            fold_records,
        )

        names = (
            tuple(snapshots) if snapshots is not None
            else tuple(self.snapshots())
        )
        if not names:
            raise ValueError("no snapshots to fold an ensemble over")
        fingerprints = tuple(self._fingerprint_of(name) for name in names)
        signature = ("ensemble", names, fingerprints, waypoint or "")

        def run():
            invariants = default_ensemble_invariants()
            if waypoint:
                dst, _, via = waypoint.partition(":")
                invariants.append(Waypoint(dst, via))
            records = []
            for name, expected in zip(names, fingerprints):
                snap = self._resolve_pinned(name, expected)
                records.append(
                    RunRecord(
                        seed=snap.seed if snap.seed is not None else 0,
                        plan_name=name,
                        snapshot=snap,
                    )
                )
            return fold_records(
                records,
                invariants=invariants,
                engine_of=self.store.engine,
                topology_name=names[0],
                seeds=tuple(r.seed for r in records),
                plans=names,
            )

        return self._submit_job(
            signature,
            run,
            priority=JobPriority.parse(priority),
            timeout=timeout,
            label=f"ensemble:{len(names)}",
        )

    # -- waiting ----------------------------------------------------------------

    def result(self, job: Job, timeout: Optional[float] = None):
        """``job.result(timeout)``, for symmetry with submit()."""
        return job.result(timeout)

    def stats(self) -> dict:
        with self._lock:
            inflight = len(self._inflight)
        counters = self.counters
        completed = counters["jobs_completed"]
        stats = {
            "uptime_seconds": self._now(),
            "workers": self.pool.workers,
            "queue_depth": self.queue.depth,
            "queue_watermark": self.queue.max_depth,
            "inflight": inflight,
            "degraded_answer_fraction": (
                counters["degraded_answers"] / completed if completed else 0.0
            ),
            "snapshots": self.snapshots(),
            "store": self.store.stats(),
            "result_cache": self.results.stats(),
            "counters": counters,
            "worker_mode": self.worker_mode,
            "breakers": self.breakers.stats(),
            "dead_letter_count": len(self.dead_letters),
        }
        if self.journal is not None:
            stats["journal"] = self.journal.stats()
        if isinstance(self.pool, SupervisedProcessPool):
            pool_stats = self.pool.stats()
            stats["pool"] = pool_stats
            self.metrics.gauge("service.worker_respawns").set(
                pool_stats["respawns"]
            )
        # Deprecated: the counters used to be splatted into the top
        # level, where any new stats field could collide with a counter
        # name. Kept as read-only aliases for one release; consumers
        # should move to stats["counters"].
        for name, value in counters.items():
            stats.setdefault(name, value)
        return stats

    # -- internals ---------------------------------------------------------------

    def _fingerprint_of(self, name: Optional[str]) -> int:
        return self.session.get_snapshot(name).dataplane.fib_fingerprint()

    def _resolve_pinned(self, name: Optional[str], expected: int) -> Snapshot:
        """The snapshot ``name`` resolves to, iff it still carries the
        forwarding content the job was keyed on at submit time.

        Raises :class:`DeploymentLostError` when the name is gone
        (deleted mid-flight) *or* points at different content
        (replaced via ``register_snapshot(overwrite=True)``) — either
        way the retry/failure path engages instead of an answer for
        the new content being cached under the old content's
        signature.
        """
        try:
            snap = self.session.get_snapshot(name)
        except SessionError as exc:
            raise DeploymentLostError(str(exc)) from exc
        actual = snap.dataplane.fib_fingerprint()
        if actual != expected:
            raise DeploymentLostError(
                f"snapshot {name or '<current>'} was replaced mid-flight: "
                f"submitted against {expected:#x}, now {actual:#x}"
            )
        return snap

    def _question_executor(
        self,
        question: str,
        params: dict,
        snapshot: Optional[str],
        snapshot_fp: int,
        reference_snapshot: Optional[str],
        reference_fp: Optional[int],
        label: str,
        signature: Optional[tuple] = None,
    ) -> Callable[[], Any]:
        def run():
            collector = bus.ACTIVE
            span = (
                collector.begin(
                    f"service:{label}", self._now(), category="service"
                )
                if collector.enabled
                else None
            )
            try:
                # Resolve by verified content and answer through a
                # private session over the exact resolved objects, so a
                # rename between this check and the answer cannot swap
                # the content out from under the signature. The private
                # session shares the service store, hence its pinned
                # engines.
                snap = self._resolve_pinned(snapshot, snapshot_fp)
                if getattr(snap, "degraded_nodes", None):
                    # Answering over a partial snapshot: the answer is
                    # still served (degraded pairs come back
                    # UNKNOWN_DEGRADED), but the service keeps score so
                    # operators can see how much of the load ran over
                    # degraded data — and the snapshot's breaker counts
                    # it as a strike.
                    self._count("degraded_answers")
                    holder = (
                        self._inflight.get(signature)
                        if signature is not None
                        else None
                    )
                    if holder is not None:
                        holder.degraded_answer = True
                runner = Session(store=self.store)
                kwargs: dict[str, Any] = {"snapshot": "__job__"}
                if reference_snapshot is not None:
                    # A differential question declares its pair: the
                    # snapshot is churn of the reference, so record the
                    # lineage and let the snapshot's engine derive from
                    # the reference's instead of building cold.
                    ref = self._resolve_pinned(
                        reference_snapshot, reference_fp
                    )
                    runner.init_snapshot(ref, name="__reference__")
                    kwargs["reference_snapshot"] = "__reference__"
                    runner.init_snapshot(
                        snap, name="__job__", parent=reference_fp
                    )
                else:
                    runner.init_snapshot(snap, name="__job__")
                factory = getattr(runner.q, question)
                return factory(**params).answer(**kwargs)
            finally:
                if span is not None:
                    collector.end(span, self._now())

        return run

    def _submit_job(
        self,
        signature: tuple,
        run: Callable[[], Any],
        *,
        priority: JobPriority,
        timeout: Optional[float],
        label: str,
        cacheable: bool = True,
        spec: Optional[QuestionSpec] = None,
        breaker_key: Any = None,
        force: bool = False,
    ) -> Job:
        self._submit_index += 1
        if self.on_submit is not None:
            try:
                self.on_submit(self._submit_index)
            except Exception:  # pragma: no cover - chaos hook bug
                logger.exception("on_submit hook failed")
        with self._lock:
            if self._draining:
                job = Job(
                    signature, run, priority=priority, timeout=timeout,
                    label=label,
                )
                job.reject(
                    {"error": "draining",
                     "detail": "service is shutting down"}
                )
                self._count("jobs_rejected")
                self._emit_job_event(job)
                return job
            cached = self.results.get(signature) if cacheable else None
            if cached is not None:
                self._count("result_cache_hits")
                job = Job(
                    signature, run, priority=priority, timeout=timeout,
                    label=label,
                )
                job.attempts = cached.attempts
                job.coalesced = cached.coalesced
                job.cached = True
                job.finish(cached.value)
                self._emit_job_event(job)
                return job
            inflight = self._inflight.get(signature)
            if inflight is not None and not inflight.done:
                inflight.coalesced += 1
                self._count("coalesced")
                # The shared execution adopts the best class asked of
                # it: an interactive caller attaching to a queued
                # campaign job must not wait at campaign rank. (The
                # timeout stays the first submitter's — the execution
                # is shared, so there is only one deadline.)
                self.queue.promote(inflight, priority)
                return inflight
            # Breaker gate — checked only for genuinely new executions
            # (a cache hit or coalesce costs no worker, so it needs no
            # gate and must not consume the one half-open probe).
            if breaker_key is not None and not self.breakers.allow(
                breaker_key
            ):
                job = Job(
                    signature, run, priority=priority, timeout=timeout,
                    label=label,
                )
                job.breaker_key = breaker_key
                job.fail(BreakerOpenError(self.breakers.detail_for(
                    breaker_key
                )))
                self.metrics.counter(
                    "service.breaker_fast_answers"
                ).labels().inc()
                self._emit_job_event(job)
                return job
            job = Job(
                signature, run, priority=priority, timeout=timeout,
                label=label,
            )
            job.cacheable = cacheable
            job.spec = spec
            job.breaker_key = breaker_key
            if spec is not None and self.journal is not None:
                # Write-ahead: the submit record is durable before the
                # job can run — a crash after this line owes the caller
                # a replay, a crash before it never accepted the job.
                key, deliveries = self.journal.record_submit(
                    spec,
                    priority=priority.name.lower(),
                    timeout=timeout,
                )
                job.journal_key = key
                job.deliveries = deliveries
            accepted, shed = self.queue.submit(job, force=force)
            if shed is not None:
                self._inflight.pop(shed.signature, None)
                self._count("jobs_rejected")
                self.metrics.counter("service.shed").inc(reason="displaced")
                if shed.journal_key and self.journal is not None:
                    self.journal.record_settle(shed.journal_key, "rejected")
                self.breakers.release(shed.breaker_key)
                self._emit_job_event(shed)
            if not accepted:
                self._count("jobs_rejected")
                self.metrics.counter("service.shed").inc(reason="rejected")
                if job.journal_key and self.journal is not None:
                    self.journal.record_settle(job.journal_key, "rejected")
                self.breakers.release(breaker_key)
                self._emit_job_event(job)
                return job
            self._inflight[signature] = job
            self._count("jobs_submitted")
            self._emit_job_event(job)  # state=queued: the waterfall's start
        self.metrics.gauge("service.queue_depth").set(self.queue.depth)
        if not self.pool.running:
            logger.warning(
                "job %s submitted to a stopped service; call start()", job.id
            )
        return job

    def _job_retried(self, job: Job, exc: BaseException) -> None:
        del exc
        self._count("retries")
        self.metrics.counter(
            "service.job_retries",
            "Retries after a lost deployment, by priority class",
            ("priority",),
        ).inc(priority=job.priority.name.lower())
        if job.journal_key and self.journal is not None:
            self.journal.record_retry(job.journal_key, job.attempts)

    def _job_started(self, job: Job) -> None:
        """Worker-pool start hook: the waterfall's queued->running edge."""
        if job.journal_key and self.journal is not None:
            self.journal.record_start(job.journal_key)
        self._emit_job_event(job)

    def _job_degraded(self, job: Job) -> None:
        """Process-pool hook: the answer ran over a partial snapshot."""
        self._count("degraded_answers")
        job.degraded_answer = True

    def _job_redelivered(self, job: Job, reason: str) -> bool:
        """Supervisor hook: a dead/hung worker's in-flight job wants
        back into the queue. Returns False once redelivery is exhausted
        — the supervisor then settles the job with ``JobLostError`` and
        the service dead-letters the journaled obligation."""
        if job.journal_key and self.journal is not None:
            job.deliveries = self.journal.record_redelivery(job.journal_key)
        else:
            job.deliveries += 1
        self.metrics.counter("service.redeliveries").labels().inc()
        # `redelivery_limit` bounds *redeliveries*, so total deliveries
        # may reach limit + 1 (the first delivery is not a redelivery).
        if job.deliveries > self.redelivery_limit + 1:
            self._dead_letter(
                key=job.journal_key or f"job-{job.id}",
                reason=reason,
                deliveries=job.deliveries,
                question=(job.spec.question if job.spec is not None
                          else job.label),
                snapshot=(job.spec.snapshot if job.spec is not None
                          else None),
            )
            return False
        logger.warning(
            "redelivering job %s (%s): %s [delivery %d/%d]",
            job.id, job.label, reason, job.deliveries,
            self.redelivery_limit + 1,
        )
        return True

    def _dead_letter(
        self,
        *,
        key: str,
        reason: str,
        deliveries: int,
        question: str = "",
        snapshot: Optional[str] = None,
    ) -> DeadLetter:
        letter = DeadLetter(
            key=key, reason=reason, deliveries=deliveries,
            question=question, snapshot=snapshot,
        )
        with self._lock:
            self.dead_letters.append(letter)
        if self.journal is not None:
            self.journal.record_dead_letter(key, reason, deliveries)
        self.metrics.counter("service.dead_letters").labels().inc()
        logger.error(
            "dead-lettered job %s (%s) after %d deliveries: %s",
            key, question, deliveries, reason,
        )
        collector = bus.ACTIVE
        if collector.enabled:
            payload = letter.to_dict()
            payload.pop("t", None)
            collector.emit("service.dead_letter", self._now(), **payload)
        return letter

    def _breaker_transition(self, key, before, after, failures) -> None:
        self.metrics.counter(
            "service.breaker_transitions", labelnames=("state",)
        ).inc(state=after.value)
        key_text = f"{key:#x}" if isinstance(key, int) else str(key)
        logger.warning(
            "breaker %s: %s -> %s (%d consecutive failures)",
            key_text, before.value, after.value, failures,
        )
        collector = bus.ACTIVE
        if collector.enabled:
            collector.emit(
                "service.breaker",
                self._now(),
                key=key_text,
                before=before.value,
                state=after.value,
                failures=failures,
            )

    def _drain_completed(self, counts: dict) -> None:
        """Pool drain hook: journal the drain, emit the obs event."""
        if self.journal is not None:
            try:
                self.journal.record_drain(counts)
            except ValueError:  # journal already closed
                pass
        drained = self.metrics.counter(
            "service.drained", labelnames=("outcome",)
        )
        for outcome in ("settled", "rejected"):
            if counts.get(outcome):
                drained.labels(outcome=outcome).inc(counts[outcome])
        collector = bus.ACTIVE
        if collector.enabled:
            collector.emit("service.drain", self._now(), **counts)

    def _job_settled(self, job: Job) -> None:
        """Worker-pool completion hook: cache, uncoalesce, instrument."""
        with self._lock:
            if self._inflight.get(job.signature) is job:
                del self._inflight[job.signature]
            inflight = len(self._inflight)
            if job.state is JobState.DONE:
                self._count("jobs_completed")
                if getattr(job, "cacheable", True):
                    self.results.put(
                        job.signature,
                        job.result(timeout=0),
                    )
            elif job.state is JobState.FAILED:
                self._count("jobs_failed")
        if job.journal_key and self.journal is not None:
            try:
                self.journal.record_settle(job.journal_key, job.state.value)
            except ValueError:  # journal closed by a racing shutdown
                pass
        if job.breaker_key is not None:
            # Breaker feedback: a completed answer over healthy content
            # heals the breaker; a failure or a degraded answer is a
            # strike. Jobs that never ran (rejected/shed/drained) only
            # give back any half-open probe they may hold.
            if job.state is JobState.DONE:
                self.breakers.record(
                    job.breaker_key, ok=not job.degraded_answer
                )
            elif job.state is JobState.FAILED and not isinstance(
                job.error, BreakerOpenError
            ):
                self.breakers.record(job.breaker_key, ok=False)
            else:
                self.breakers.release(job.breaker_key)
        m = self.metrics
        priority = job.priority.name.lower()
        m.histogram("service.job_queue_seconds", labelnames=("priority",)).observe(
            job.queue_seconds, priority=priority
        )
        if job.state in (JobState.DONE, JobState.FAILED):
            m.histogram(
                "service.job_run_seconds", labelnames=("priority",)
            ).observe(job.run_seconds, priority=priority)
        m.gauge("service.inflight").set(inflight)
        m.gauge("service.result_cache_entries").set(len(self.results))
        counters = self.counters
        completed = counters["jobs_completed"]
        if completed:
            m.gauge("service.degraded_answer_fraction").set(
                counters["degraded_answers"] / completed
            )
        self._emit_job_event(job)

    def _emit_job_event(self, job: Job) -> None:
        collector = bus.ACTIVE
        if not collector.enabled:
            return
        collector.emit(
            "service.job",
            self._now(),
            job=job.id,
            label=job.label,
            priority=job.priority.name.lower(),
            state=job.state.value,
            queue_seconds=round(job.queue_seconds, 6),
            run_seconds=round(job.run_seconds, 6),
            attempts=job.attempts,
            coalesced=job.coalesced,
        )
