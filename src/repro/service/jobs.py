"""Jobs, the priority queue, and the bounded result cache.

A :class:`Job` is one unit of verification work: a question against
resident snapshots (or a batch callable, e.g. a what-if campaign) with
a *signature* — the content key that makes two requests "the same
work". Signatures fold in the snapshot fingerprints, so two different
session names over identical forwarding state still coalesce.

The :class:`JobQueue` orders strictly by priority class (interactive
query > differential > campaign) and FIFO within a class. It never
grows without bound: past the ``max_depth`` watermark an arriving job
either sheds the newest lowest-priority queued job (when it outranks
one) or is itself rejected — in both cases the loser carries a
structured ``overloaded`` rejection (:class:`OverloadedError`), never a
silent drop or an unbounded backlog.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum, IntEnum
from typing import Any, Callable, Optional


class JobPriority(IntEnum):
    """Priority classes, best first. Lower value wins the queue."""

    INTERACTIVE = 0
    DIFFERENTIAL = 1
    CAMPAIGN = 2

    @classmethod
    def parse(cls, value) -> "JobPriority":
        if isinstance(value, cls):
            return value
        if isinstance(value, int):
            return cls(value)
        return cls[str(value).upper()]


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    REJECTED = "rejected"


class OverloadedError(RuntimeError):
    """Structured admission-control rejection (never silent shedding)."""

    def __init__(self, detail: dict) -> None:
        self.detail = dict(detail)
        super().__init__(
            "service overloaded: queue depth "
            f"{detail.get('queue_depth')} at watermark "
            f"{detail.get('watermark')}"
        )


class JobFailedError(RuntimeError):
    """The job's execution raised; the original error is ``__cause__``."""


class JobTimeoutError(JobFailedError):
    """The job exceeded its per-job timeout before completing."""


class JobLostError(JobFailedError):
    """The worker executing the job died and redelivery is exhausted.

    Raised out of ``Job.result()`` instead of blocking forever: the
    supervisor declared the executing worker dead (crash or missed
    heartbeats), requeued the job up to the redelivery limit, and the
    job still never settled. ``detail`` carries the structured story
    (deliveries, the declaring supervisor's reason).
    """

    def __init__(self, message: str, detail: Optional[dict] = None) -> None:
        super().__init__(message)
        self.detail = dict(detail or {})


@dataclass
class JobResult:
    """What ``Job.result()`` hands back alongside the answer value."""

    value: Any
    queue_seconds: float
    run_seconds: float
    attempts: int
    coalesced: int
    cached: bool = False


class Job:
    """One execution that any number of identical submissions share."""

    _ids = iter(range(1, 1 << 62))
    _ids_lock = threading.Lock()

    def __init__(
        self,
        signature: tuple,
        run: Callable[[], Any],
        *,
        priority: JobPriority = JobPriority.INTERACTIVE,
        timeout: Optional[float] = None,
        label: str = "",
    ) -> None:
        with Job._ids_lock:
            self.id = next(Job._ids)
        self.signature = signature
        self.run = run
        self.priority = priority
        self.timeout = timeout
        self.label = label or (str(signature[0]) if signature else "")
        self.state = JobState.QUEUED
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.attempts = 0
        # How many submissions ride this execution (1 = just the first).
        self.coalesced = 1
        self.error: Optional[BaseException] = None
        self.rejection: Optional[dict] = None
        self.value: Any = None
        # True when this job was settled from the result cache.
        self.cached = False
        # -- resilience-plane fields (set by the owning service) --------
        #: Picklable execution spec for process workers (question jobs
        #: only; None means the job can only run in-process via `run`).
        self.spec: Any = None
        #: Idempotency key in the durable journal (None: not journaled).
        self.journal_key: Optional[str] = None
        #: How many times this work has been delivered to a worker
        #: (1 = first delivery; each supervisor requeue increments).
        self.deliveries = 1
        #: Circuit-breaker key (snapshot fingerprint for question jobs).
        self.breaker_key: Any = None
        #: True when the answer was computed over a degraded (partial)
        #: snapshot — the breaker counts it as a strike.
        self.degraded_answer = False
        self._done = threading.Event()

    # -- lifecycle (worker side) ----------------------------------------------

    def mark_running(self) -> None:
        self.state = JobState.RUNNING
        self.started_at = time.monotonic()

    def finish(self, value: Any) -> None:
        self.value = value
        self.state = JobState.DONE
        self.finished_at = time.monotonic()
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.state = JobState.FAILED
        self.finished_at = time.monotonic()
        self._done.set()

    def reject(self, detail: dict) -> None:
        self.rejection = dict(detail)
        self.state = JobState.REJECTED
        self.finished_at = time.monotonic()
        self._done.set()

    # -- consumption (caller side) --------------------------------------------

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def queue_seconds(self) -> float:
        start = self.started_at or self.finished_at or time.monotonic()
        return max(0.0, start - self.submitted_at)

    @property
    def run_seconds(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    def result(self, timeout: Optional[float] = None) -> JobResult:
        """Block until the shared execution settles.

        Raises :class:`OverloadedError` for admission-control
        rejections, :class:`JobFailedError` (chaining the original
        exception) for execution failures, and :class:`TimeoutError`
        when the *wait* outlasts ``timeout`` (the job keeps running).
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.id} ({self.label}) still {self.state.value} "
                f"after {timeout}s"
            )
        if self.state is JobState.REJECTED:
            raise OverloadedError(self.rejection or {})
        if self.state is JobState.FAILED:
            if isinstance(self.error, JobFailedError):
                raise self.error
            raise JobFailedError(
                f"job {self.id} ({self.label}) failed"
            ) from self.error
        return JobResult(
            value=self.value,
            queue_seconds=self.queue_seconds,
            run_seconds=self.run_seconds,
            attempts=self.attempts,
            coalesced=self.coalesced,
            cached=self.cached,
        )

    def describe(self) -> dict:
        """The JSON-lines front end's view of this job."""
        return {
            "job": self.id,
            "label": self.label,
            "priority": self.priority.name.lower(),
            "state": self.state.value,
            "attempts": self.attempts,
            "coalesced": self.coalesced,
        }

    def __repr__(self) -> str:
        return (
            f"Job(id={self.id}, label={self.label!r}, "
            f"priority={self.priority.name}, state={self.state.value})"
        )


class JobQueue:
    """Priority classes with FIFO inside each, bounded by a watermark."""

    def __init__(self, max_depth: int = 64) -> None:
        self.max_depth = max(1, max_depth)
        # Heap entries are (priority, seq, job): seq gives FIFO within a
        # class and makes the *newest* lowest-priority entry the shed
        # victim (shed from the tail, serve the head).
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False

    # -- producer side --------------------------------------------------------

    def submit(self, job: Job, force: bool = False) -> tuple[bool, Optional[Job]]:
        """Enqueue ``job``; returns ``(accepted, shed_job)``.

        At the watermark, an arriving job that outranks the newest
        lowest-priority queued job displaces it (the victim is marked
        rejected and returned); otherwise the arrival itself is marked
        rejected and ``(False, None)`` is returned. Either way the
        loser's waiters see a structured :class:`OverloadedError`.

        ``force`` bypasses the watermark entirely — journal recovery
        requeues accepted work, and shedding a job the service already
        promised durability for would turn a crash into data loss.
        """
        with self._lock:
            shed: Optional[Job] = None
            if not force and len(self._heap) >= self.max_depth:
                victim = max(self._heap, key=lambda e: (e[0], e[1]))
                detail = {
                    "error": "overloaded",
                    "queue_depth": len(self._heap),
                    "watermark": self.max_depth,
                }
                if job.priority < victim[2].priority:
                    self._heap.remove(victim)
                    heapq.heapify(self._heap)
                    shed = victim[2]
                    shed.reject(dict(detail, shed_by=job.id))
                else:
                    job.reject(detail)
                    return False, None
            self._seq += 1
            heapq.heappush(self._heap, (int(job.priority), self._seq, job))
            self._available.notify()
            return True, shed

    def promote(self, job: Job, priority: JobPriority) -> bool:
        """Raise a queued job to a better priority class in place.

        Used when a higher-priority submission coalesces onto ``job``:
        the shared execution adopts the best class asked of it rather
        than stranding the new caller at the old rank. A job already
        claimed by a worker (or settled) is left untouched; returns
        True iff the queue entry was re-keyed.
        """
        with self._lock:
            if priority >= job.priority:
                return False
            for index, (_, seq, queued) in enumerate(self._heap):
                if queued is job:
                    job.priority = priority
                    self._heap[index] = (int(priority), seq, job)
                    heapq.heapify(self._heap)
                    return True
            return False

    # -- consumer side --------------------------------------------------------

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """The best queued job, blocking up to ``timeout``.

        Returns None on timeout or when the queue is closed and
        drained. Entries rejected while queued (shed victims) are
        skipped here, not lazily by workers.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._available:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.state is JobState.QUEUED:
                        return job
                if self._closed:
                    return None
                if deadline is None:
                    self._available.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._available.wait(remaining):
                        return None

    def close(self) -> None:
        """Stop accepting blocking waits; drained pops return None."""
        with self._available:
            self._closed = True
            self._available.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def drain_remaining(self) -> list[Job]:
        """Remove and return every still-queued job (drain leftovers).

        Used when a draining shutdown runs out of time: the caller
        settles each leftover with a structured rejection (or leaves it
        journaled for recovery) instead of letting waiters block on work
        no worker will ever pop.
        """
        with self._lock:
            leftovers = [
                j for _, _, j in self._heap if j.state is JobState.QUEUED
            ]
            self._heap.clear()
            return leftovers

    @property
    def depth(self) -> int:
        with self._lock:
            return sum(
                1 for _, _, j in self._heap if j.state is JobState.QUEUED
            )


class ResultCache:
    """Bounded LRU of completed results, keyed by job signature.

    Verification answers are pure functions of (forwarding content,
    question parameters) — exactly the signature — so serving a repeat
    from here is sound, not merely fast.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = max(1, capacity)
        self._results: "OrderedDict[tuple, JobResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, signature: tuple) -> Optional[JobResult]:
        with self._lock:
            result = self._results.get(signature)
            if result is None:
                self.misses += 1
                return None
            self._results.move_to_end(signature)
            self.hits += 1
            return JobResult(
                value=result.value,
                queue_seconds=0.0,
                run_seconds=result.run_seconds,
                attempts=result.attempts,
                coalesced=result.coalesced,
                cached=True,
            )

    def put(self, signature: tuple, result: JobResult) -> None:
        with self._lock:
            self._results[signature] = result
            self._results.move_to_end(signature)
            while len(self._results) > self.capacity:
                self._results.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._results),
                "hits": self.hits,
                "misses": self.misses,
            }
