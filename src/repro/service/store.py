"""The content-addressed snapshot store.

The service's amortization substrate: converged snapshots are keyed by
:meth:`Dataplane.fib_fingerprint() <repro.dataplane.model.Dataplane.fib_fingerprint>`
— pure forwarding *content*, never object identity or snapshot name —
so any two registrations of the same converged state (two seeds that
agreed, a reloaded snapshot file, the same snapshot under two session
names) collapse onto one entry holding one pinned
:class:`~repro.verify.engine.AtomGraphEngine`.

Entries are evicted LRU once ``capacity`` is exceeded; every lookup and
eviction is counted on the obs bus (``service.store_hits`` /
``service.store_misses`` / ``service.store_evictions``), which is how
``BENCH_service.json`` measures the amortization. All operations are
thread-safe: the store is shared by every worker in the service's pool,
and engine builds for *distinct* fingerprints proceed in parallel while
concurrent requests for the *same* fingerprint coalesce onto one build
(the per-entry lock here plus :func:`engine_for`'s own build locks).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Optional

from repro.core.snapshot import Snapshot
from repro.obs import bus
from repro.verify.engine import AtomGraphEngine, engine_for

#: Default resident-snapshot capacity (override: ``MFV_SERVICE_STORE``).
DEFAULT_CAPACITY = 8

#: How many lineage hops a delta-base search walks before giving up
#: (override: ``MFV_DELTA_LINEAGE_DEPTH``; 0 disables delta derivation).
DEFAULT_LINEAGE_DEPTH = 4


def env_int(name: str, default: int, minimum: int = 1) -> int:
    """An integer knob from the environment, clamped and fail-safe."""
    raw = os.environ.get(name)
    if raw:
        try:
            return max(minimum, int(raw))
        except ValueError:
            pass
    return default


def env_float(name: str, default: float, minimum: float = 0.0) -> float:
    """A float knob from the environment, clamped and fail-safe."""
    raw = os.environ.get(name)
    if raw:
        try:
            return max(minimum, float(raw))
        except ValueError:
            pass
    return default


class DeploymentLostError(RuntimeError):
    """A job's backing state vanished mid-flight (evicted, deleted).

    Transient by definition — re-registration rebuilds the entry — so
    the worker pool retries jobs that raise it (with backoff) before
    declaring them failed.
    """


class StoreEntry:
    """One resident converged state: snapshot + lazily pinned engine."""

    __slots__ = (
        "snapshot",
        "fingerprint",
        "base_supplier",
        "_engine",
        "_lock",
    )

    def __init__(self, snapshot: Snapshot) -> None:
        self.snapshot = snapshot
        self.fingerprint = snapshot.dataplane.fib_fingerprint()
        #: Store-installed callable returning a resident ancestor's
        #: built engine (or None) — the delta base for this build.
        self.base_supplier: Optional[
            Callable[[], Optional[AtomGraphEngine]]
        ] = None
        self._engine: Optional[AtomGraphEngine] = None
        self._lock = threading.Lock()

    def engine(self) -> AtomGraphEngine:
        """The pinned atom-graph engine (built once, on first demand).

        When the store recorded a lineage parent for this content, the
        build derives incrementally from the parent's resident engine
        via :func:`engine_for`'s delta path (falling back to a cold
        build whenever the delta is unapplicable). Lock order is
        entry._lock -> store._lock (the supplier); the store never takes
        an entry lock while holding its own.
        """
        if self._engine is None:
            with self._lock:
                if self._engine is None:
                    base = (
                        self.base_supplier()
                        if self.base_supplier is not None
                        else None
                    )
                    self._engine = engine_for(
                        self.snapshot.dataplane, base=base
                    )
        return self._engine

    @property
    def engine_built(self) -> bool:
        return self._engine is not None


class SnapshotStore:
    """LRU-bounded, fingerprint-keyed residence for converged snapshots."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is None:
            capacity = env_int("MFV_SERVICE_STORE", DEFAULT_CAPACITY)
        self.capacity = max(1, capacity)
        self.lineage_depth = env_int(
            "MFV_DELTA_LINEAGE_DEPTH", DEFAULT_LINEAGE_DEPTH, minimum=0
        )
        self._entries: "OrderedDict[int, StoreEntry]" = OrderedDict()
        #: child fingerprint -> parent fingerprint; survives eviction of
        #: either side (it is metadata, not residence).
        self._lineage: dict[int, int] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- registration / lookup ------------------------------------------------

    def register(
        self, snapshot: Snapshot, parent: Optional[int] = None
    ) -> int:
        """Make ``snapshot`` resident; returns its fingerprint.

        Re-registering existing content is a hit (the entry is
        refreshed in LRU order, its pinned engine survives). ``parent``
        optionally records which resident content this snapshot churned
        from, letting the entry's engine derive incrementally instead
        of building cold.
        """
        fingerprint = self._entry_for(snapshot).fingerprint
        if parent is not None:
            self.record_lineage(fingerprint, parent)
        return fingerprint

    def record_lineage(self, child: int, parent: int) -> None:
        """Note that ``child`` content churned from ``parent`` content.

        Called on registration with an explicit parent and by the
        service whenever a differential question declares its pair —
        the diff *is* the lineage claim. Self-loops are ignored.
        """
        if child == parent:
            return
        with self._lock:
            self._lineage[child] = parent

    def get(self, fingerprint: int) -> StoreEntry:
        """The resident entry for ``fingerprint``.

        Raises :class:`DeploymentLostError` when the state is no longer
        resident — callers holding only a fingerprint cannot rebuild it.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                self._record_lookup("miss")
                raise DeploymentLostError(
                    f"snapshot {fingerprint:#x} is no longer resident"
                )
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            self._record_lookup("hit")
            return entry

    def engine(self, snapshot: Snapshot) -> AtomGraphEngine:
        """The pinned engine for ``snapshot``, registering it if needed.

        This is the path :class:`~repro.pybf.session.Session` routes
        questions through when backed by a store: an eviction between
        two questions costs one rebuild, never a wrong answer.
        """
        return self._entry_for(snapshot).engine()

    def _entry_for(self, snapshot: Snapshot) -> StoreEntry:
        fingerprint = snapshot.dataplane.fib_fingerprint()
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                self.hits += 1
                self._record_lookup("hit")
                return entry
            self.misses += 1
            self._record_lookup("miss")
            entry = StoreEntry(snapshot)
            entry.base_supplier = (
                lambda fp=fingerprint: self._delta_base(fp)
            )
            self._entries[fingerprint] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                if bus.ACTIVE.enabled:
                    bus.ACTIVE.count("service.store_evictions")
            resident = len(self._entries)
        registry = bus.metrics_registry()
        if registry.enabled:
            registry.gauge(
                "service.store_resident",
                "Converged snapshots (and pinned engines) held resident",
            ).set(resident)
        return entry

    def _delta_base(self, fingerprint: int) -> Optional[AtomGraphEngine]:
        """The nearest lineage ancestor with a resident *built* engine.

        Walks child -> parent links up to ``lineage_depth`` hops —
        non-resident intermediates are skipped over, so a grandparent
        can still serve after its child was evicted. Returns None when
        nothing usable is found (the caller builds cold).
        """
        with self._lock:
            seen = {fingerprint}
            current = fingerprint
            for _ in range(self.lineage_depth):
                parent = self._lineage.get(current)
                if parent is None or parent in seen:
                    return None
                entry = self._entries.get(parent)
                if entry is not None and entry.engine_built:
                    return entry._engine
                seen.add(parent)
                current = parent
        return None

    def _record_lookup(self, result: str) -> None:
        """One store lookup on both planes: the historical flat obs
        counters and the labeled registry series."""
        if bus.ACTIVE.enabled:
            bus.ACTIVE.count(
                "service.store_hits" if result == "hit"
                else "service.store_misses"
            )
        registry = bus.metrics_registry()
        if registry.enabled:
            registry.counter(
                "service.store_lookups",
                "SnapshotStore lookups by outcome",
                ("result",),
            ).inc(result=result)

    def evict(self, count: int = 1) -> int:
        """Forcibly evict up to ``count`` LRU entries; returns how many.

        Normal operation never needs this — capacity bounds residence on
        its own. It exists for the service-level chaos plane
        (:class:`~repro.chaos.service_plan.EvictionStorm`): a seeded
        storm forces warm engines out from under in-flight jobs, and
        resilience is proven when answers stay correct (rebuilt cold)
        rather than fast.
        """
        evicted = 0
        with self._lock:
            for _ in range(max(0, count)):
                if not self._entries:
                    break
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
                if bus.ACTIVE.enabled:
                    bus.ACTIVE.count("service.store_evictions")
        return evicted

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: int) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def fingerprints(self) -> list[int]:
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "resident": len(self._entries),
                "engines_built": sum(
                    1 for e in self._entries.values() if e.engine_built
                ),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "lineage_edges": len(self._lineage),
            }

    def __repr__(self) -> str:
        return (
            f"SnapshotStore(resident={len(self)}, capacity={self.capacity})"
        )
