"""The JSON-lines front end behind ``mfv serve`` / ``mfv submit``.

One request per line on stdin, one JSON response per line on stdout —
the lowest-dependency remote surface that still exercises the whole
service (admission control included). Ops:

``{"op": "load", "path": ..., "name": ...}``
    Load a saved snapshot into the service's store.
``{"op": "submit", "question": ..., "params": {...}, ...}``
    Submit a question. ``wait`` (default true) blocks for the result;
    ``wait: false`` returns the job id immediately for a later
    ``result`` call.
``{"op": "ensemble", "snapshots": [...], "waypoint": ...}``
    Fold ensemble verdicts (holds-always / holds-sometimes / never)
    over the named resident snapshots — default: everything resident —
    deduped by forwarding fingerprint through the store. ``waypoint``
    ("DST_IP:VIA_NODE") appends a waypoint invariant. Honors ``wait``
    like ``submit``.
``{"op": "result", "job": <id>, "timeout": ...}``
    Await a previously submitted job.
``{"op": "stats"}``
    Service statistics (queue, store, caches, counters).
``{"op": "health"}``
    Liveness/readiness: ``live`` (the process answers), ``ready`` (the
    pool runs, the queue admits, not draining), breaker states, worker
    liveness in process mode, journal stats.
``{"op": "dead-letters"}``
    The structured dead-letter list — jobs abandoned after redelivery
    exhaustion.
``{"op": "metrics", "format": "prometheus"|"records"}``
    The service's metrics plane. ``prometheus`` (the default, or set
    ``MFV_METRICS_FORMAT=records``) returns text exposition in a
    ``"text"`` field; ``records`` returns the JSONL-shaped record list
    in a ``"records"`` field.
``{"op": "shutdown"}``
    Stop the loop (the caller owns worker shutdown).

Responses are ``{"ok": true, ...}`` or ``{"ok": false, "error": ...}``;
admission-control rejections come back with the structured
``overloaded`` detail rather than a bare failure.
"""

from __future__ import annotations

import json
import sys
from collections import OrderedDict
from typing import Any, Optional, TextIO

from repro.obs.metrics import exposition_format, render_prometheus
from repro.service.jobs import (
    Job,
    JobFailedError,
    JobResult,
    JobState,
    OverloadedError,
)
from repro.service.service import VerificationService


def _serialize_value(value: Any) -> dict:
    """JSON-safe view of a job's answer payload."""
    frame = getattr(value, "frame", None)
    if callable(frame):  # TableAnswer
        table = frame()
        return {
            "columns": list(table.columns),
            "rows": [dict(row) for row in table.rows],
            "summary": getattr(value, "summary", ""),
        }
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):  # e.g. CampaignReport
        return {"report": to_dict()}
    return {"value": value}


def _serialize_result(job: Job, result: JobResult) -> dict:
    response = {"ok": True, **job.describe()}
    response.update(_serialize_value(result.value))
    response["cached"] = result.cached
    response["queue_seconds"] = round(result.queue_seconds, 6)
    response["run_seconds"] = round(result.run_seconds, 6)
    return response


def _await_job(job: Job, timeout: Optional[float]) -> dict:
    try:
        return _serialize_result(job, job.result(timeout))
    except OverloadedError as exc:
        return {"ok": False, **exc.detail, **job.describe()}
    except TimeoutError as exc:
        return {"ok": False, "error": "timeout", "detail": str(exc),
                **job.describe()}
    except JobFailedError as exc:
        cause = exc.__cause__
        return {
            "ok": False,
            "error": "failed",
            "detail": str(cause) if cause is not None else str(exc),
            **job.describe(),
        }


#: Default bound on retained async (``wait: false``) jobs.
DEFAULT_PENDING_JOBS = 256


class ServiceFrontend:
    """Dispatches decoded requests against one service instance.

    Only async submissions (``wait: false``) are retained, in a bounded
    LRU awaiting their ``result`` call; delivered jobs are dropped
    immediately, so a long-lived serve session never accumulates
    settled jobs.
    """

    def __init__(
        self,
        service: VerificationService,
        max_pending: int = DEFAULT_PENDING_JOBS,
    ) -> None:
        self.service = service
        self.max_pending = max(1, max_pending)
        self._jobs: "OrderedDict[int, Job]" = OrderedDict()

    def _retain(self, job: Job) -> None:
        self._jobs[job.id] = job
        while len(self._jobs) > self.max_pending:
            self._jobs.popitem(last=False)

    def handle(self, request: dict) -> tuple[dict, bool]:
        """Returns (response, keep_running)."""
        op = request.get("op")
        try:
            if op == "load":
                name, fingerprint = self.service.load_snapshot(
                    request["path"], name=request.get("name")
                )
                return {
                    "ok": True,
                    "snapshot": name,
                    "fingerprint": f"{fingerprint:#x}",
                }, True
            if op == "submit":
                job = self.service.submit(
                    request["question"],
                    request.get("params"),
                    snapshot=request.get("snapshot"),
                    reference_snapshot=request.get("reference_snapshot"),
                    priority=request.get("priority"),
                    timeout=request.get("timeout"),
                )
                if job.state is JobState.REJECTED:
                    # Surface admission control immediately — a client
                    # that said wait=false must still see the rejection.
                    return {
                        "ok": False,
                        **(job.rejection or {}),
                        **job.describe(),
                    }, True
                if request.get("wait", True):
                    return _await_job(job, request.get("timeout")), True
                self._retain(job)
                return {"ok": True, **job.describe()}, True
            if op == "ensemble":
                job = self.service.submit_ensemble(
                    request.get("snapshots"),
                    waypoint=request.get("waypoint"),
                    priority=request.get("priority")
                    if request.get("priority") is not None
                    else "campaign",
                    timeout=request.get("timeout"),
                )
                if job.state is JobState.REJECTED:
                    return {
                        "ok": False,
                        **(job.rejection or {}),
                        **job.describe(),
                    }, True
                if request.get("wait", True):
                    return _await_job(job, request.get("timeout")), True
                self._retain(job)
                return {"ok": True, **job.describe()}, True
            if op == "result":
                job_id = request.get("job")
                job = self._jobs.get(job_id)
                if job is None:
                    return {
                        "ok": False,
                        "error": f"unknown job: {job_id!r}",
                    }, True
                response = _await_job(job, request.get("timeout"))
                if job.done:
                    # Delivered terminally: drop the reference. A wait
                    # that merely timed out keeps the job for a retry.
                    self._jobs.pop(job_id, None)
                return response, True
            if op == "stats":
                return {"ok": True, "stats": self.service.stats()}, True
            if op == "health":
                health = self.service.health()
                return {"ok": True, **health}, True
            if op == "dead-letters":
                return {
                    "ok": True,
                    "dead_letters": [
                        letter.to_dict()
                        for letter in self.service.dead_letters
                    ],
                }, True
            if op == "metrics":
                fmt = request.get("format") or exposition_format()
                if fmt == "records":
                    return {
                        "ok": True,
                        "format": "records",
                        "records": self.service.metrics.collect(),
                    }, True
                if fmt != "prometheus":
                    return {
                        "ok": False,
                        "error": f"unknown metrics format: {fmt!r}",
                    }, True
                return {
                    "ok": True,
                    "format": "prometheus",
                    "text": render_prometheus(self.service.metrics),
                }, True
            if op == "shutdown":
                return {"ok": True, "stopped": True}, False
            return {"ok": False, "error": f"unknown op: {op!r}"}, True
        except OverloadedError as exc:
            return {"ok": False, **exc.detail}, True
        except KeyError as exc:
            return {"ok": False, "error": f"missing field: {exc}"}, True
        except Exception as exc:
            return {"ok": False, "error": str(exc)}, True


def serve_loop(
    service: VerificationService,
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
) -> int:
    """Run the JSON-lines loop until EOF or a ``shutdown`` op.

    Returns the number of requests handled. Blank lines are skipped;
    undecodable lines produce an error response rather than killing the
    loop (a serve session should outlive one bad client line).
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    frontend = ServiceFrontend(service)
    handled = 0
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            response, keep = {"ok": False, "error": f"bad json: {exc}"}, True
        else:
            response, keep = frontend.handle(request)
        handled += 1
        stdout.write(json.dumps(response) + "\n")
        stdout.flush()
        if not keep:
            break
    return handled
